"""Structure drift: when Algorithm-1 updates are not enough (Section 5.2).

Algorithm 1 adjusts weights and leaf histograms but never changes the
tree *structure*.  If inserts create a dependency between columns the
learner once split as independent, the model silently misestimates --
the paper's remedy is a cyclic background check of the product-node
column splits (pairwise RDC) and regeneration of affected RSPNs.

This example walks the full lifecycle:

1. learn a model on data where region and salary are independent,
2. absorb a flood of *correlated* inserts through Algorithm 1,
3. show the estimate for a correlated predicate has gone stale,
4. run the drift check (it names the broken column split),
5. refresh the ensemble and show the estimate recover.

Run with: ``python examples/drift_maintenance.py``
"""

import numpy as np

from repro.core.compilation import ProbabilisticQueryCompiler
from repro.core.ensemble import EnsembleConfig, learn_ensemble
from repro.core.maintenance import (
    absorb_inserts,
    check_structure_drift,
    refresh_ensemble,
)
from repro.engine.executor import Executor
from repro.engine.join import compute_tuple_factors
from repro.engine.query import Predicate, Query
from repro.engine.table import Database, Table
from repro.evaluation.metrics import q_error
from repro.schema.schema import Attribute, SchemaGraph, TableSchema


def build_database(n=5_000, seed=0):
    rng = np.random.default_rng(seed)
    schema = SchemaGraph()
    schema.add_table(
        TableSchema(
            "employees",
            [
                Attribute("e_id", "key"),
                Attribute("region", "categorical"),
                Attribute("salary", "numeric"),
            ],
            primary_key="e_id",
        )
    )
    database = Database(schema)
    database.add_table(
        Table.from_columns(
            schema.table("employees"),
            {
                "e_id": np.arange(n, dtype=float),
                "region": list(rng.choice(["NORTH", "SOUTH"], n)),
                "salary": rng.normal(60_000, 12_000, n).round(),
            },
        )
    )
    compute_tuple_factors(database)
    return database


def main():
    config = EnsembleConfig(sample_size=20_000, correlation_sample=1_000)
    database = build_database()
    ensemble = learn_ensemble(database, config)
    compiler = ProbabilisticQueryCompiler(ensemble)

    query = Query(
        ("employees",),
        predicates=(
            Predicate("employees", "region", "=", "NORTH"),
            Predicate("employees", "salary", ">", 80_000),
        ),
    )

    def report(stage):
        truth = Executor(database).cardinality(query)
        estimate = ProbabilisticQueryCompiler(ensemble).cardinality(query)
        print(f"   {stage:<28s} true {truth:>8,.0f}   est {estimate:>9,.0f}   "
              f"q-error {q_error(truth, estimate):6.2f}")

    print("1. Model learned on independent region/salary data")
    report("initial")

    print("\n2. Absorbing correlated inserts (NORTH -> high salary) via "
          "Algorithm 1...")
    rng = np.random.default_rng(7)
    extra = 15_000
    region = rng.choice(["NORTH", "SOUTH"], extra)
    salary = np.where(
        region == "NORTH",
        rng.normal(95_000, 5_000, extra),
        rng.normal(40_000, 5_000, extra),
    ).round()
    table = database.table("employees")
    table.append_rows(
        {
            "e_id": np.arange(100_000, 100_000 + extra, dtype=float),
            "region": list(region),
            "salary": salary,
        }
    )
    mask = np.zeros(table.n_rows, dtype=bool)
    mask[-extra:] = True
    absorbed, seconds = absorb_inserts(ensemble, database, {"employees": mask})
    print(f"   absorbed {absorbed} tuples in {seconds:.2f}s")
    report("after Algorithm 1 only")

    print("\n3. Background drift check (pairwise RDC on product splits):")
    for drift_report in check_structure_drift(ensemble, database, seed=1):
        print(f"   {drift_report.describe()}")

    print("\n4. Refreshing drifted RSPNs...")
    _reports, rebuilt, seconds = refresh_ensemble(
        ensemble, database, config, seed=2
    )
    print(f"   regenerated {rebuilt} RSPN(s) in {seconds:.2f}s "
          "(in the background, like an index rebuild)")
    report("after refresh")


if __name__ == "__main__":
    main()
