"""ML tasks without additional training (Section 4.3 / 6.3 scenario).

The same RSPN learned for AQP answers regression (conditional
expectation) and classification (most probable explanation) for any
feature/target combination.  This example predicts flight arrival
delays and classifies the carrier, comparing against a freshly trained
regression tree.

Run with: ``python examples/machine_learning.py``
"""

import numpy as np

from repro import DeepDB
from repro.baselines.regression_tree import RegressionTree
from repro.core.ensemble import EnsembleConfig
from repro.datasets import flights
from repro.evaluation.metrics import rmse
from repro.evaluation.report import Report


def main():
    database = flights.generate(scale=0.1, seed=0)
    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=25_000))

    target = "arr_delay"
    train_rows, train_y, names = flights.feature_matrix(
        database, target, n_rows=20_000, seed=1
    )
    test_rows, test_y, _ = flights.feature_matrix(database, target, n_rows=150, seed=2)

    # DeepDB: zero additional training.
    regressor = deepdb.regressor("flights", target)
    deepdb_rmse = rmse(test_y, regressor.predict(test_rows))

    # Regression tree: needs a feature matrix and a training pass.
    train_x = np.array([[row[n] for n in names] for row in train_rows])
    test_x = np.array([[row[n] for n in names] for row in test_rows])
    tree = RegressionTree(max_depth=10).fit(train_x, train_y)
    tree_rmse = rmse(test_y, tree.predict(test_x))

    report = Report(
        "Regression: predict arr_delay (cf. Figure 13)",
        ["model", "RMSE", "additional training"],
    )
    report.add("Regression Tree", tree_rmse, "full training pass")
    report.add("DeepDB (ours)", deepdb_rmse, "none")
    report.print()

    # Classification: which carrier operated a flight with these stats?
    classifier = deepdb.classifier(
        "flights", "unique_carrier", ["dep_delay", "taxi_out", "distance"]
    )
    table = database.table("flights")
    sample = {
        "flights.dep_delay": 45.0,
        "flights.taxi_out": 25.0,
        "flights.distance": 900.0,
    }
    probabilities = classifier.class_probabilities(sample)
    top = sorted(probabilities.items(), key=lambda kv: -kv[1])[:3]
    print("\nClassification: P(carrier | dep_delay=45, taxi_out=25, distance=900)")
    for code, probability in top:
        print(f"  {table.decode_value('unique_carrier', code)}: {probability:.1%}")


if __name__ == "__main__":
    main()
