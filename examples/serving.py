"""Serving: coalesce concurrent clients into batched model calls.

Starts the in-process async front-end over a learned model, fires
concurrent closed-loop clients at it, and shows that

- temporally-close requests are micro-batched into single
  ``cardinality_batch`` calls (batch occupancy stats),
- coalesced answers are identical to serial ``DeepDB.cardinality``
  calls,
- the LRU result cache serves repeated query texts and is invalidated
  through the model's generation counter when an ``insert`` arrives,
- the same model is reachable over HTTP (``repro serve`` wraps this).

Run with: ``PYTHONPATH=src python examples/serving.py``
"""

import asyncio
import json
import urllib.request

from repro import DeepDB
from repro.core.ensemble import EnsembleConfig
from repro.datasets import flights
from repro.serving import AsyncDeepDB, ModelRegistry, start_server

N_CLIENTS = 16
ROUNDS = 4


def build_queries():
    """A distinct query per (client, round): no cache hits, pure coalescing."""
    return {
        (client, round_): (
            "SELECT COUNT(*) FROM flights "
            f"WHERE flights.distance > {200 + 37 * client} "
            f"AND flights.dep_delay <= {5 * (round_ + 1)}"
        )
        for client in range(N_CLIENTS)
        for round_ in range(ROUNDS)
    }


async def closed_loop_client(async_db, client, queries, answers):
    """One client: send a query, await the answer, send the next."""
    for round_ in range(ROUNDS):
        answers[client, round_] = await async_db.cardinality(
            queries[client, round_]
        )


async def serve_concurrent_clients(deepdb, queries):
    async_db = AsyncDeepDB(deepdb, max_batch_size=N_CLIENTS, max_wait_ms=2.0)
    answers = {}
    await asyncio.gather(
        *(closed_loop_client(async_db, c, queries, answers)
          for c in range(N_CLIENTS))
    )
    return async_db, answers


def main():
    print("Learning a flights model (offline phase)...")
    database = flights.generate(scale=0.05, seed=0)
    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=10_000))
    print(f"  {database}")

    queries = build_queries()
    print(f"\n{N_CLIENTS} concurrent closed-loop clients x {ROUNDS} rounds...")
    async_db, answers = asyncio.run(serve_concurrent_clients(deepdb, queries))

    serial = {key: deepdb.cardinality(sql) for key, sql in queries.items()}
    agree = all(serial[key] == answers[key] for key in queries)
    print(f"  coalesced answers identical to serial calls: {agree}")

    stats = async_db.stats()
    coalescer = stats["coalescers"]["default"]
    print("  batch occupancy: "
          f"{coalescer['requests']} requests in {coalescer['flushes']} "
          f"flushes (mean {coalescer['mean_occupancy']:.1f}, "
          f"max {coalescer['max_occupancy']})")

    print("\nResult cache + generation-counter invalidation...")
    session = async_db.registry.session()
    sql = queries[0, 0]
    before = session.snapshot()["cache"]["hits"]
    asyncio.run(async_db.cardinality(sql))  # same text again -> cache hit
    print(f"  repeated query text served from cache: "
          f"{session.snapshot()['cache']['hits'] == before + 1}")
    generation = deepdb.generation
    session.insert("flights", {"f_id": 10**6, "distance": 5000.0})
    print(f"  insert moved the generation counter: "
          f"{deepdb.generation != generation}")
    asyncio.run(async_db.cardinality(sql))  # recomputed on the new model
    print(f"  cache invalidated through the counter: "
          f"{session.snapshot()['cache']['invalidations'] >= 1}")

    print("\nThe same model over HTTP (what `repro serve` runs)...")
    registry = ModelRegistry()
    registry.register("flights", deepdb)
    with start_server(registry) as server:
        body = json.dumps({"sql": sql, "database": "flights"}).encode()
        request = urllib.request.Request(
            server.url + "/query", body, {"Content-Type": "application/json"}
        )
        payload = json.loads(urllib.request.urlopen(request).read())
        print(f"  POST /query -> {payload['value']:,.0f} "
              f"({payload['latency_ms']:.1f} ms)")
        served = json.loads(urllib.request.urlopen(server.url + "/stats").read())
        print(f"  GET /stats -> endpoints {sorted(served['endpoints'])}")


if __name__ == "__main__":
    main()
