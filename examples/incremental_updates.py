"""Direct updates: the model stays fresh without retraining (Section 5.2).

Learns an ensemble on 80% of the IMDb titles, absorbs the remaining 20%
through Algorithm 1 (routing tuples through sum nodes to the nearest
cluster) and shows that cardinality estimates track the full data --
the Table 2 experiment in miniature.

Run with: ``python examples/incremental_updates.py``
"""

import time

from repro.core.compilation import ProbabilisticQueryCompiler
from repro.core.ensemble import EnsembleConfig, learn_ensemble
from repro.core.maintenance import absorb_inserts
from repro.datasets import imdb, workloads
from repro.engine.executor import Executor
from repro.evaluation.metrics import percentiles, q_error
from repro.evaluation.report import Report


def main():
    database = imdb.generate(scale=0.05, seed=0)
    executor = Executor(database)
    queries = workloads.job_light(database)[:25]
    truths = [executor.cardinality(q.query) for q in queries]

    initial, held_out = imdb.split_database(database, 0.2, mode="temporal")
    print(
        f"Learning on {initial.table('title').n_rows:,} of "
        f"{database.table('title').n_rows:,} titles "
        "(the newest 20% arrive later)..."
    )
    ensemble = learn_ensemble(
        initial, EnsembleConfig(sample_size=20_000, budget_factor=0.0)
    )

    stale = ProbabilisticQueryCompiler(ensemble)
    stale_errors = [
        q_error(truth, stale.cardinality(named.query))
        for named, truth in zip(queries, truths)
    ]

    start = time.perf_counter()
    inserted, seconds = absorb_inserts(ensemble, database, held_out)
    ensemble.database = database
    print(
        f"Absorbed {inserted:,} tuples in {seconds:.2f}s "
        f"({inserted / max(seconds, 1e-9):,.0f} updates/s)"
    )

    fresh = ProbabilisticQueryCompiler(ensemble)
    fresh_errors = [
        q_error(truth, fresh.cardinality(named.query))
        for named, truth in zip(queries, truths)
    ]

    report = Report(
        "Q-errors vs the full data (cf. Table 2)",
        ["model state", "median", "95th"],
    )
    stale_stats = percentiles(stale_errors)
    fresh_stats = percentiles(fresh_errors)
    report.add("before updates (stale)", stale_stats["median"], stale_stats["95th"])
    report.add("after updates", fresh_stats["median"], fresh_stats["95th"])
    report.print()


if __name__ == "__main__":
    main()
