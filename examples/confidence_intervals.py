"""Confidence intervals for approximate answers (Section 5.1).

AQP without error bars is guesswork.  DeepDB derives confidence
intervals analytically from the RSPN -- binomial variance for the
predicate probability, Koenig-Huygens for conditional expectations,
the product rule across factors -- with no sampling at query time.

This example runs COUNT / AVG / SUM queries with shrinking
selectivities on the Flights data, prints the 95% intervals next to the
true answers, and then *verifies empirically* that the intervals have
roughly nominal coverage by re-learning the model on bootstrap samples.

Run with: ``python examples/confidence_intervals.py``
"""

import numpy as np

from repro import DeepDB
from repro.core.ensemble import EnsembleConfig
from repro.datasets import flights
from repro.engine.executor import Executor


QUERIES = [
    ("broad COUNT",
     "SELECT COUNT(*) FROM flights WHERE flights.distance > 1000"),
    ("selective COUNT",
     "SELECT COUNT(*) FROM flights WHERE flights.distance > 1000 "
     "AND flights.dep_delay > 30"),
    ("AVG under filter",
     "SELECT AVG(flights.arr_delay) FROM flights WHERE flights.distance > 1500"),
    ("SUM under filter",
     "SELECT SUM(flights.air_time) FROM flights WHERE flights.dep_delay > 45"),
]


def main():
    print("Generating Flights and learning the model...")
    database = flights.generate(scale=0.1, seed=0)
    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=25_000))
    executor = Executor(database)

    print("\n95% confidence intervals (analytic, no query-time sampling)")
    header = f"{'query':<18s} {'true':>12s} {'estimate':>12s} {'95% interval':>28s}"
    print(header)
    print("-" * len(header))
    for name, sql in QUERIES:
        query = deepdb.parse(sql)
        value, (low, high) = deepdb.approximate_with_confidence(query)
        truth = executor.execute(query)
        interval = f"[{low:,.1f}, {high:,.1f}]"
        covered = "ok" if low <= truth <= high else "MISS"
        print(f"{name:<18s} {truth:>12,.1f} {value:>12,.1f} {interval:>28s} {covered}")

    print("\nEmpirical coverage check (20 bootstrap models, COUNT query)")
    sql = QUERIES[1][1]
    truth = executor.execute(deepdb.parse(sql))
    hits = 0
    trials = 20
    for trial in range(trials):
        model = DeepDB.learn(
            database, EnsembleConfig(sample_size=8_000, seed=trial + 1)
        )
        value, (low, high) = model.approximate_with_confidence(
            model.parse(sql), confidence=0.95
        )
        hits += low <= truth <= high
    print(f"   true answer covered in {hits}/{trials} bootstrap models "
          f"(nominal: {0.95 * trials:.0f}/{trials})")
    print(f"   relative CI length: {(value - low) / value:.1%} "
          "(the Figure-11 metric)")


if __name__ == "__main__":
    main()
