"""Data exploration with a generative RSPN: sampling, clusters, MPE.

The paper's conclusion sketches this use: "SPNs naturally provide a
notion of correlated clusters that can also be used for suggesting
interesting patterns in data exploration".  This example exercises the
generative side of the model on the Flights data:

1. draw synthetic flights from the learned joint distribution and
   compare their marginals to the real data,
2. draw *conditional* samples ("what do long-haul flights look like?"),
3. ask for the most probable explanation (MPE) of partial evidence --
   the model's archetype of a severely delayed flight,
4. persist the model and reload it, showing the saved ensemble answers
   identically.

Run with: ``python examples/data_exploration.py``
"""

import numpy as np

from repro import DeepDB
from repro.core.ensemble import EnsembleConfig
from repro.core.ranges import Range
from repro.core.sampling import draw, most_probable_explanation
from repro.datasets import flights


def _decode(table, column, code):
    if code is None or (isinstance(code, float) and np.isnan(code)):
        return "NULL"
    return table.decode_value(column, code)


def main():
    print("Generating the Flights data set and learning the model...")
    database = flights.generate(scale=0.1, seed=0)
    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=25_000))
    rspn = deepdb.ensemble.rspns[0]
    table = database.table("flights")

    print("\n1. Unconditional synthetic flights vs the real data")
    synthetic = draw(rspn, 2_000, seed=1)
    column = rspn.column_index["flights.distance"]
    real = table.columns["distance"]
    print(f"   mean distance   real {np.nanmean(real):8.1f}   "
          f"synthetic {np.nanmean(synthetic[:, column]):8.1f}")
    column = rspn.column_index["flights.arr_delay"]
    real = table.columns["arr_delay"]
    print(f"   mean arr. delay real {np.nanmean(real):8.1f}   "
          f"synthetic {np.nanmean(synthetic[:, column]):8.1f}")

    print("\n2. Conditional samples: flights with distance > 2000")
    long_haul = draw(
        rspn, 1_000,
        conditions={"flights.distance": Range.from_operator(">", 2000.0)},
        seed=2,
    )
    air_time = long_haul[:, rspn.column_index["flights.air_time"]]
    all_air_time = synthetic[:, rspn.column_index["flights.air_time"]]
    print(f"   mean air time overall   : {np.nanmean(all_air_time):6.1f}")
    print(f"   mean air time long-haul : {np.nanmean(air_time):6.1f} "
          "(correlation learned from data, no query feedback)")

    print("\n3. MPE: the archetype of a badly delayed flight")
    assignment, _score = most_probable_explanation(
        rspn, {"flights.arr_delay": Range.from_operator(">", 60.0)}
    )
    for name in ("flights.unique_carrier", "flights.origin",
                 "flights.month", "flights.dep_delay"):
        raw = assignment.get(name)
        column = name.split(".", 1)[1]
        print(f"   {column:<16s}: {_decode(table, column, raw)}")

    print("\n4. Persistence round-trip")
    deepdb.save("/tmp/flights_ensemble.json")
    reloaded = DeepDB.load("/tmp/flights_ensemble.json", database)
    sql = "SELECT COUNT(*) FROM flights WHERE flights.arr_delay > 60"
    original = deepdb.cardinality(sql)
    restored = reloaded.cardinality(sql)
    print(f"   estimate before save : {original:,.0f}")
    print(f"   estimate after load  : {restored:,.0f}")
    assert original == restored


if __name__ == "__main__":
    main()
