"""Quickstart: learn a DeepDB model and run every task on it.

Builds the synthetic IMDb database, learns an RSPN ensemble (the offline
phase of Figure 2 of the paper), then uses the same model for:

- cardinality estimation of a join query,
- an approximate aggregate query with a confidence interval,
- a direct update (insert) absorbed without retraining.

Run with: ``python examples/quickstart.py``
"""

from repro import DeepDB
from repro.core.ensemble import EnsembleConfig
from repro.datasets import imdb
from repro.engine.executor import Executor


def main():
    print("Generating synthetic IMDb (this is the paper's JOB-light schema)...")
    database = imdb.generate(scale=0.05, seed=0)
    print(f"  {database}")

    print("\nLearning the RSPN ensemble (offline phase)...")
    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=20_000))
    print(deepdb.describe())

    executor = Executor(database)

    sql = (
        "SELECT COUNT(*) FROM title t, cast_info ci "
        "WHERE t.id = ci.movie_id AND t.production_year > 2005 "
        "AND ci.role_id = 4"
    )
    query = deepdb.parse(sql)
    estimate = deepdb.cardinality(query)
    truth = executor.cardinality(query)
    print("\nCardinality estimation")
    print(f"  query     : {sql}")
    print(f"  true      : {truth:,.0f}")
    print(f"  estimated : {estimate:,.0f}  "
          f"(q-error {max(truth, 1) / estimate if estimate < truth else estimate / max(truth, 1):.2f})")

    sql = (
        "SELECT AVG(t.production_year) FROM title t "
        "WHERE t.kind_id = 0"
    )
    query = deepdb.parse(sql)
    value, (low, high) = deepdb.approximate_with_confidence(query, confidence=0.95)
    truth = executor.execute(query)
    print("\nApproximate query processing")
    print(f"  query     : {sql}")
    print(f"  true      : {truth:.2f}")
    print(f"  estimated : {value:.2f}  (95% CI [{low:.2f}, {high:.2f}])")

    count_sql = "SELECT COUNT(*) FROM title WHERE title.production_year > 2015"
    before = deepdb.cardinality(count_sql)
    print("\nDirect updates (no retraining)")
    print(f"  recent titles before inserts: {before:,.0f}")
    for i in range(500):
        deepdb.insert(
            "title",
            {"id": -1 - i, "kind_id": 0.0, "production_year": 2019, "season_nr": None},
        )
    after = deepdb.cardinality(count_sql)
    print(f"  after inserting 500 new 2019 titles: {after:,.0f} (delta "
          f"{after - before:+.0f})")


if __name__ == "__main__":
    main()
