"""Interactive-speed AQP on the Flights data set (Section 6.2 scenario).

Answers the paper's Flights queries (group-bys, low selectivities, a
difference of SUM aggregates) with DeepDB and compares against the exact
answers and a TABLESAMPLE baseline, including confidence intervals.

Run with: ``python examples/approximate_query_processing.py``
"""

import time

from repro import DeepDB
from repro.baselines.tablesample import TableSample
from repro.core.ensemble import EnsembleConfig
from repro.datasets import flights, workloads
from repro.engine.executor import Executor
from repro.evaluation.metrics import average_relative_error
from repro.evaluation.report import Report


def main():
    database = flights.generate(scale=0.2, seed=0)
    executor = Executor(database)
    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=25_000))
    tablesample = TableSample(database, sample_rate=0.01)

    report = Report(
        "Flights AQP (cf. Figure 9)",
        ["query", "TABLESAMPLE err %", "DeepDB err %", "DeepDB latency (ms)"],
    )
    for named in workloads.flights_queries(database):
        if named.is_difference:
            continue
        truth = executor.execute(named.query)
        ts_answer = tablesample.answer(named.query)
        start = time.perf_counter()
        deepdb_answer = deepdb.approximate(named.query)
        latency = (time.perf_counter() - start) * 1_000
        report.add(
            named.name,
            average_relative_error(truth, ts_answer) * 100,
            average_relative_error(truth, deepdb_answer) * 100,
            latency,
        )
    report.print()

    sql = (
        "SELECT AVG(arr_delay) FROM flights "
        "WHERE flights.unique_carrier = 'CARRIER_02'"
    )
    value, (low, high) = deepdb.approximate_with_confidence(sql)
    truth = executor.execute(deepdb.parse(sql))
    print(f"\n{sql}")
    print(f"  true {truth:.2f}; estimate {value:.2f}, 95% CI [{low:.2f}, {high:.2f}]")


if __name__ == "__main__":
    main()
