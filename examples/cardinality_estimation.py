"""Cardinality estimation for a query optimizer (Section 6.1 scenario).

Compares DeepDB against the Postgres-style estimator and naive random
sampling on a JOB-light style workload, printing per-query q-errors and
the percentile summary of Table 1.

Run with: ``python examples/cardinality_estimation.py``
"""

from repro import DeepDB
from repro.baselines.postgres_estimator import PostgresEstimator
from repro.baselines.sampling import RandomSamplingEstimator
from repro.core.ensemble import EnsembleConfig
from repro.datasets import imdb, workloads
from repro.engine.executor import Executor
from repro.evaluation.metrics import percentiles, q_error
from repro.evaluation.report import Report


def main():
    database = imdb.generate(scale=0.05, seed=0)
    executor = Executor(database)
    queries = workloads.job_light(database)[:30]
    truths = [executor.cardinality(q.query) for q in queries]

    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=20_000))
    postgres = PostgresEstimator(database)
    sampling = RandomSamplingEstimator(database, sample_rows=1_000)

    systems = {
        "DeepDB (ours)": lambda q: deepdb.cardinality(q),
        "Postgres": postgres.cardinality,
        "Random Sampling": sampling.cardinality,
    }

    detail = Report(
        "Per-query q-errors (first 10 queries)",
        ["query", "true", *systems],
    )
    for named, truth in list(zip(queries, truths))[:10]:
        row = [named.name, truth]
        for estimate in systems.values():
            row.append(q_error(truth, estimate(named.query)))
        detail.add(*row)
    detail.print()

    summary = Report(
        "Workload summary (cf. Table 1)", ["system", "median", "95th", "max"]
    )
    for name, estimate in systems.items():
        errors = [
            q_error(truth, estimate(named.query))
            for named, truth in zip(queries, truths)
        ]
        stats = percentiles(errors)
        summary.add(name, stats["median"], stats["95th"], stats["max"])
    summary.print()


if __name__ == "__main__":
    main()
