"""Join ordering: feed DeepDB's cardinalities to a cost-based optimizer.

The paper motivates cardinality estimation as the input a query
optimizer needs "to find the correct join order" (Section 2).  This
example closes that loop with the bundled System-R style enumerator:

1. build the synthetic IMDb database and learn a DeepDB ensemble,
2. optimise a 5-way join once with DeepDB estimates, once with a
   Postgres-style independence-assumption estimator, and once with true
   cardinalities,
3. re-cost every chosen plan with *true* cardinalities (the C_out cost
   model) and compare.

Run with: ``python examples/join_ordering.py``
"""

from repro import DeepDB
from repro.baselines.postgres_estimator import PostgresEstimator
from repro.core.ensemble import EnsembleConfig
from repro.datasets import imdb
from repro.engine.executor import Executor
from repro.optimizer import (
    SubqueryCardinalities,
    cout_cost,
    optimal_plan,
)
from repro.optimizer.cost import intermediate_sizes


def main():
    print("Generating synthetic IMDb and learning the ensemble...")
    database = imdb.generate(scale=0.05, seed=0)
    deepdb = DeepDB.learn(database, EnsembleConfig(sample_size=20_000))
    executor = Executor(database)
    postgres = PostgresEstimator(database)

    sql = (
        "SELECT COUNT(*) FROM title t, cast_info ci, movie_companies mc, "
        "movie_info mi, movie_keyword mk "
        "WHERE t.id = ci.movie_id AND t.id = mc.movie_id "
        "AND t.id = mi.movie_id AND t.id = mk.movie_id "
        "AND t.production_year > 2005 AND ci.role_id = 4 "
        "AND mc.company_type_id = 1"
    )
    query = deepdb.parse(sql)
    print(f"\nQuery: {sql}")

    true_cards = SubqueryCardinalities(executor, query)
    optimal, optimal_cost = optimal_plan(query, database.schema, true_cards)
    print("\nOptimal plan (true cardinalities):")
    print(f"  {optimal.describe()}   C_out = {optimal_cost:,.0f}")

    for name, estimator in (
        ("DeepDB", deepdb.compiler),
        ("Postgres-style", postgres),
    ):
        estimated = SubqueryCardinalities(estimator, query)
        plan, believed_cost = optimal_plan(query, database.schema, estimated)
        actual_cost = cout_cost(plan, true_cards)
        print(f"\nPlan chosen with {name} estimates:")
        print(f"  {plan.describe()}")
        print(f"  believed C_out : {believed_cost:,.0f}")
        print(f"  actual C_out   : {actual_cost:,.0f}  "
              f"({actual_cost / optimal_cost:.2f}x optimal)")
        print("  intermediates (true sizes):")
        for tables, size in intermediate_sizes(plan, true_cards):
            print(f"    {' ⨝ '.join(tables):<55s} {size:>12,.0f}")


if __name__ == "__main__":
    main()
