"""The batched estimator protocol shared by every consumer layer.

The paper's central claim is that *one* set of learned RSPNs serves
cardinality estimation, AQP and ML tasks alike.  On the systems side the
equivalent claim is that one **estimator surface** serves every consumer
-- the join-order enumerator, the plan-quality harness, the benchmark
suite and the CLI -- regardless of whether the estimator underneath is
the compiled DeepDB ensemble, a baseline, or the exact executor.

The protocol is two methods:

- ``cardinality(query) -> float`` -- one estimate, clamped semantics up
  to the implementation;
- ``cardinality_batch(queries) -> list[float]`` -- many estimates in one
  call, positionally aligned with ``queries``.

:class:`CardinalityEstimator` supplies ``cardinality_batch`` as a plain
loop over ``cardinality``, so every scalar estimator conforms for free;
implementations with a real batch kernel (the probabilistic query
compiler's one-compiled-sweep-per-RSPN path) override it.  Callers that
cannot assume conformance (duck-typed third-party estimators) go through
the module-level :func:`cardinality_batch`, which falls back to the same
serial loop when the estimator exposes no batch entry point.
"""

from __future__ import annotations


class CardinalityEstimator:
    """Base class / mixin of the batched cardinality-estimator protocol.

    Subclasses implement ``cardinality(query)``; the batched entry point
    defaults to a serial loop so that conformance costs nothing.  The
    contract for overrides: ``cardinality_batch(queries)`` returns one
    float per query, positionally, and agrees with the scalar path.
    """

    def cardinality(self, query) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def cardinality_batch(self, queries) -> list:
        """Estimates for many queries; default is the serial loop."""
        return [float(self.cardinality(query)) for query in queries]


def cardinality_batch(estimator, queries) -> list:
    """Batched estimates from any estimator, conformant or not.

    Uses the estimator's own ``cardinality_batch`` when present (one
    call -- the whole point of the protocol) and falls back to a serial
    ``cardinality`` loop for duck-typed estimators without one.
    """
    queries = list(queries)
    batch = getattr(estimator, "cardinality_batch", None)
    if batch is None:
        return [float(estimator.cardinality(query)) for query in queries]
    return [float(value) for value in batch(queries)]


def supports_batch(estimator) -> bool:
    """Whether the estimator exposes a batched entry point at all."""
    return callable(getattr(estimator, "cardinality_batch", None))
