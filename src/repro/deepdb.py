"""The user-facing DeepDB facade (Figure 2 of the paper).

``DeepDB.learn(database)`` runs the offline phase: tuple factors are
computed, table correlations measured, and the RSPN ensemble learned.
The resulting object serves the runtime tasks:

- :meth:`DeepDB.cardinality` -- cardinality estimation for an optimizer,
- :meth:`DeepDB.plan` / :meth:`DeepDB.optimize_and_execute` -- join-order
  optimization driven by the batched estimator protocol,
- :meth:`DeepDB.approximate` / :meth:`DeepDB.approximate_with_confidence`
  -- approximate query processing with optional confidence intervals,
- :meth:`DeepDB.regressor` / :meth:`DeepDB.classifier` -- ML tasks,
- :meth:`DeepDB.insert` / :meth:`DeepDB.delete` -- direct updates.
"""

from __future__ import annotations

from repro.core.compilation import ProbabilisticQueryCompiler
from repro.core.ensemble import EnsembleConfig, learn_ensemble
from repro.core.ml import RspnClassifier, RspnRegressor
from repro.engine.join import qualify
from repro.engine.parser import parse_query


class DeepDB:
    """An RSPN ensemble plus probabilistic query compilation.

    ``shards=N`` fans every batched compiled sweep out across ``N``
    worker processes (:class:`~repro.core.sharding.ShardedEvaluator`):
    large ``cardinality_batch``/``approximate_batch`` calls, the plan
    prefetch, the ML heads and each coalesced serving flush all ride
    the same shared pool.  Sharded answers are bit-identical to the
    in-process sweep, and any pool failure falls back to it, so
    ``shards`` is purely a throughput knob.  ``transport`` picks how
    specs and the model cross the process boundary: ``"shm"`` (the
    default where shared memory works) publishes the model's flat
    arrays once per generation and each spec batch once per flush into
    named shared-memory segments that workers slice zero-copy;
    ``"pickle"`` is the portability fallback.  Pass a prebuilt
    ``evaluator`` instead to share one pool across several models;
    call :meth:`close` to shut the pool down.

    ``kernel`` selects the compiled-sweep execution kernel
    (:mod:`repro.core.kernels`): ``"auto"`` (default), ``"numpy"``
    (fused NumPy), ``"numba"`` (JIT-lowered sweep; silently equivalent
    to ``"numpy"`` when numba is not installed) or ``"legacy"`` (the
    pre-fusion full-matrix sweep).  All kernels return bit-identical
    answers -- the knob only moves speed and memory.

    ``corrector`` turns on the workload feedback loop
    (:mod:`repro.feedback`): ``"observe"`` logs every estimate and the
    realized cardinalities ``optimize_and_execute`` sees without
    changing any answer (bit-identical to ``corrector=None``);
    ``"apply"`` additionally multiplies estimates by the learned
    residual correction once the corrector has trained, falling back to
    the raw estimate for queries it cannot featurize.  A prebuilt
    :class:`~repro.feedback.CorrectedEstimator` may be passed instead to
    share a log/corrector or tune hyper-parameters.

    ``plan_cache`` (default ``True``) memoises join-order planning per
    normalized query shape (:mod:`repro.optimizer.plancache`):
    :meth:`plan` and :meth:`optimize_and_execute` skip the estimator
    prefetch and the DP enumeration on repeated shapes, invalidating
    whenever :attr:`generation` or the corrector's committed-training
    count moves.  Pass a prebuilt
    :class:`~repro.optimizer.PlanCache` to share or tune one, or a
    falsy value to disable caching.
    """

    def __init__(self, database, ensemble, shards=None, evaluator=None,
                 transport=None, kernel=None, store=None, corrector=None,
                 plan_cache=True):
        if kernel is not None:
            from repro.core import kernels

            kernels.set_kernel(kernel)
        self.database = database
        self.ensemble = ensemble
        self.compiler = ProbabilisticQueryCompiler(ensemble)
        # Workload feedback (repro.feedback): "off"/None is a hard zero
        # -- no log, no wrapper, estimates flow exactly as before.
        self.feedback = None
        self._corrector_document = None
        if corrector is not None and corrector != "off":
            from repro.feedback import make_feedback

            self.feedback = make_feedback(
                self.compiler, corrector, database=database
            )
        # The mmapped ModelStore backing this ensemble, when it was
        # loaded from a store file; None for learned / JSON-loaded
        # models.  close() releases it deterministically.
        self._store = store
        self._owns_evaluator = False
        if evaluator is None and shards:
            from repro.core.sharding import ShardedEvaluator

            evaluator = ShardedEvaluator(
                n_workers=int(shards), transport=transport
            )
            self._owns_evaluator = True
        self.evaluator = evaluator
        if evaluator is not None:
            ensemble.set_evaluator(evaluator)
        # Plan cache (repro.optimizer.plancache): True builds one keyed
        # on this database's featurized query shapes; a prebuilt
        # PlanCache may be shared; falsy disables caching entirely.
        if plan_cache is True:
            from repro.optimizer.plancache import PlanCache

            self.plan_cache = PlanCache(self._plan_featurizer())
        else:
            self.plan_cache = plan_cache or None

    def _plan_featurizer(self):
        """The featurizer keying the plan cache (shared with feedback)."""
        if self.feedback is not None:
            corrector = getattr(self.feedback, "corrector", None)
            featurizer = getattr(corrector, "featurizer", None)
            if featurizer is not None:
                return featurizer
        from repro.feedback.featurize import QueryFeaturizer

        try:
            return QueryFeaturizer(self.database)
        except Exception:
            return None  # text keys still catch verbatim repeats

    @classmethod
    def learn(cls, database, config: EnsembleConfig | None = None, shards=None,
              transport=None, kernel=None, corrector=None, plan_cache=True):
        """Offline learning phase: build the RSPN ensemble for a database."""
        ensemble = learn_ensemble(database, config)
        return cls(database, ensemble, shards=shards, transport=transport,
                   kernel=kernel, corrector=corrector, plan_cache=plan_cache)

    def close(self):
        """Detach this model from its evaluator; afterwards its batches
        evaluate in-process (answers are unchanged).  The worker pool
        itself is only shut down when this instance created it
        (``shards=N``) -- a caller-supplied shared evaluator keeps
        serving its other models and is the caller's to close.

        When the model was loaded from a store file this also drops the
        ensemble and unmaps the store **deterministically**: the tree
        views die with the ensemble reference (trees are acyclic, so a
        refcount cascade frees them synchronously), after which the
        mapping can close without waiting for the garbage collector.
        The instance is unusable afterwards in that case.
        """
        if self.evaluator is not None:
            self.ensemble.set_evaluator(None)
            if self._owns_evaluator:
                self.evaluator.close()
            self.evaluator = None
            self._owns_evaluator = False
        if self._store is not None:
            store, self._store = self._store, None
            # Order matters: release every reference into the mapping
            # (ensemble tree + compiled forms cached off its root)
            # before asking the store to unmap.
            if self.feedback is not None:
                self.feedback.detach()
            self.ensemble = None
            self.compiler = None
            store.close()
            from repro.core import modelstore

            modelstore.sweep_pending()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The backing :class:`~repro.core.modelstore.ModelStore`, if any."""
        return self._store

    def save(self, path, format="store"):
        """Persist the learned ensemble (not the data) to ``path``.

        ``format="store"`` (default) writes the mmap-able model store
        (:mod:`repro.core.modelstore`): flat specpack blobs, checksummed,
        millisecond cold start.  ``format="json"`` writes the legacy
        JSON document -- inspectable and diff-able, but O(model) to
        load; keep it for debugging and portability.
        """
        if format == "store":
            from repro.core.modelstore import write_store

            write_store(self.ensemble, path,
                        corrector=self._corrector_state())
        elif format == "json":
            from repro.core.serialization import save_ensemble

            save_ensemble(self.ensemble, path)
        else:
            raise ValueError(f"unknown save format {format!r}")

    def _corrector_state(self):
        """The corrector document to persist alongside the ensemble.

        A live fitted corrector wins; otherwise the document this model
        was loaded with is carried forward, so converting or re-saving a
        store never silently drops trained corrector state.
        """
        if self.feedback is not None and self.feedback.corrector is not None \
                and self.feedback.corrector.fitted:
            return self.feedback.corrector.to_document()
        return self._corrector_document

    @classmethod
    def load(cls, path, database, shards=None, transport=None, kernel=None,
             corrector=None, plan_cache=True):
        """Re-open a persisted ensemble against its database.

        The file's magic bytes decide the decode path: model-store files
        are mmapped (O(metadata) cold start, histograms stay on disk
        until touched); anything else goes through the legacy JSON
        loader with a one-line slow-path warning.

        With ``corrector`` set, a corrector section persisted in the
        store (``DeepDB.save`` after training) is restored, so a
        restarted server keeps correcting exactly as it did before.
        """
        from repro.core.modelstore import is_store_file, open_store

        if is_store_file(path):
            store = open_store(path)
            try:
                ensemble = store.load_ensemble(database)
                document = store.corrector_document()
            except BaseException:
                store.close()
                raise
            instance = cls(database, ensemble, shards=shards,
                           transport=transport, kernel=kernel, store=store,
                           corrector=corrector, plan_cache=plan_cache)
            instance._corrector_document = document
            if document is not None and instance.feedback is not None:
                from repro.feedback import ResidualCorrector

                instance.feedback.adopt_corrector(
                    ResidualCorrector.from_document(document, database=database)
                )
            return instance
        import logging

        logging.getLogger(__name__).warning(
            "%s is not a model store file; falling back to the legacy JSON "
            "loader (slow path -- re-save with format='store' for "
            "millisecond cold start)", path,
        )
        from repro.core.serialization import load_ensemble

        return cls(database, load_ensemble(path, database), shards=shards,
                   transport=transport, kernel=kernel, corrector=corrector,
                   plan_cache=plan_cache)

    # ------------------------------------------------------------------
    # Runtime tasks
    # ------------------------------------------------------------------
    def parse(self, sql):
        """Parse a SQL string of the supported subset into a Query."""
        return parse_query(sql, self.database.schema)

    @property
    def _estimator(self):
        """The estimator consumers see: feedback-wrapped when enabled."""
        return self.compiler if self.feedback is None else self.feedback

    def cardinality(self, query):
        """Cardinality estimate (>= 1) for the query optimizer."""
        if isinstance(query, str):
            query = self.parse(query)
        return self._estimator.cardinality(query)

    def cardinality_batch(self, queries):
        """Cardinality estimates for many queries in one batched pass.

        Accepts SQL strings and/or parsed queries; all expectation
        sub-queries are grouped per RSPN and answered with one compiled
        bottom-up sweep each, which is substantially faster than calling
        :meth:`cardinality` in a loop.
        """
        parsed = [self.parse(q) if isinstance(q, str) else q for q in queries]
        return self._estimator.cardinality_batch(parsed)

    def plan(self, query, linear=False):
        """Join order for ``query`` under batched DeepDB cardinalities.

        Every sub-plan estimate of the System-R enumeration is answered
        from one :meth:`cardinality_batch`-style prefetch (a single
        compiled sweep per RSPN).  Returns ``(plan, estimated C_out,
        oracle)`` -- the oracle exposes the per-subset estimates and the
        ``batch_calls`` / ``estimator_calls`` counters.

        With the plan cache enabled (the default), repeated query
        shapes skip both the prefetch and the enumeration: the cached
        plan, cost and fully-prefetched oracle are returned as long as
        the model generation and corrector generation are unchanged.
        """
        from repro.optimizer import SubqueryCardinalities, optimal_plan

        if isinstance(query, str):
            query = self.parse(query)
        epoch = None
        if self.plan_cache is not None:
            from repro.optimizer import cache_epoch

            epoch = cache_epoch(self._estimator, self.feedback)
            entry = self.plan_cache.lookup(query, epoch, linear=linear)
            if entry is not None:
                return entry
        oracle = SubqueryCardinalities(self._estimator, query)
        plan, cost = optimal_plan(
            query, self.database.schema, oracle, linear=linear
        )
        if self.plan_cache is not None:
            self.plan_cache.store(
                query, (plan, cost, oracle), epoch, linear=linear
            )
        return plan, cost, oracle

    def optimize_and_execute(self, query, linear=False,
                             replan_threshold=16.0):
        """Optimise ``query`` with batched estimates, then run the plan
        with real hash joins.  Returns an
        :class:`~repro.optimizer.execution.OptimizedExecution`.

        The adaptive loop is on by default: repeated query shapes are
        planned from the plan cache, and a join that materialises more
        than ``replan_threshold`` times its estimate triggers
        mid-execution re-optimisation of the remaining join order
        (``math.inf`` disables it).  With feedback enabled the realized
        result *and every realized intermediate* are recorded as
        labeled observations, so executed plans train the corrector on
        exactly the joins the optimizer got wrong."""
        from repro.optimizer import optimize_and_execute

        if isinstance(query, str):
            query = self.parse(query)
        return optimize_and_execute(
            query, self.database, self._estimator, linear=linear,
            feedback=self.feedback, replan_threshold=replan_threshold,
            plan_cache=self.plan_cache,
        )

    def approximate(self, query):
        """Approximate answer: scalar or ``{group: value}``."""
        if isinstance(query, str):
            query = self.parse(query)
        return self.compiler.answer(query)

    def approximate_batch(self, queries):
        """Approximate answers for many queries in one batched pass."""
        parsed = [self.parse(q) if isinstance(q, str) else q for q in queries]
        return self.compiler.answer_batch(parsed)

    def approximate_with_confidence(self, query, confidence=0.95):
        """Approximate answer plus confidence interval(s)."""
        if isinstance(query, str):
            query = self.parse(query)
        return self.compiler.answer_with_confidence(query, confidence)

    def regressor(self, table, target_column, feature_columns=None):
        """Regression model for ``table.target_column`` (Section 4.3)."""
        rspn = self._model_for_column(table, target_column)
        features = None
        if feature_columns is not None:
            features = [qualify(table, c) for c in feature_columns]
        return RspnRegressor(rspn, qualify(table, target_column), features)

    def classifier(self, table, target_column, feature_columns=None):
        """Classification model for ``table.target_column``."""
        rspn = self._model_for_column(table, target_column)
        features = None
        if feature_columns is not None:
            features = [qualify(table, c) for c in feature_columns]
        return RspnClassifier(rspn, qualify(table, target_column), features)

    def _model_for_column(self, table, column):
        qualified = qualify(table, column)
        candidates = [
            r for r in self.ensemble.rspns if r.has_column(qualified)
        ]
        if not candidates:
            raise KeyError(f"no RSPN models column {qualified!r}")
        # Deterministic tie-break: prefer the smallest table set, then the
        # lexicographically first, so regressor/classifier results never
        # depend on ensemble insertion order.
        return min(candidates, key=lambda r: (len(r.tables), sorted(r.tables)))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    @property
    def generation(self):
        """Monotonic change counter of the underlying ensemble.

        This is the **single invalidation hook** for anything caching
        results computed from this model: record the generation a result
        was computed under, and treat the result as stale once
        ``deepdb.generation`` differs.  Every :meth:`insert` /
        :meth:`delete` moves it (as does out-of-band tree maintenance),
        which is how the serving layer's LRU result cache and the
        compiled flat-array cache stay correct without knowing about
        individual update paths.
        """
        return self.ensemble.generation

    def insert(self, table, row: dict):
        """Insert one tuple into every RSPN covering ``table``.

        ``row`` maps column names to *raw* values; they are encoded with
        the table's vocabularies.  Unknown column names raise
        ``KeyError``; schema columns absent from ``row`` are NULL-filled
        explicitly.  Join RSPNs receive the tuple with the join-partner
        columns NULL-extended, matching how a fresh tuple without
        partners enters the full outer join.  Bumps :attr:`generation`,
        invalidating dependent caches.
        """
        self._apply_update(table, row, insert=True)

    def delete(self, table, row: dict):
        """Delete one tuple from every RSPN covering ``table``.
        Bumps :attr:`generation`, invalidating dependent caches."""
        self._apply_update(table, row, insert=False)

    def _apply_update(self, table, row, insert):
        op = "insert" if insert else "delete"
        result = self.apply_update_batch([(op, table, row)])[0]
        if isinstance(result, Exception):
            raise result

    # -- batched updates (streaming ingest) ----------------------------
    def stage_update_batch(self, ops):
        """Validate, encode and stage a batch of updates without mutating.

        ``ops`` is a sequence of ``(op, table, row)`` triples with ``op``
        one of ``"insert"``/``"delete"`` and ``row`` a raw-value dict as
        in :meth:`insert`.  Each op is validated independently: a bad
        op (unknown table/column, unknown op name) is recorded as the
        exception for its slot and contributes nothing, while the good
        ops around it proceed -- the per-slot contract the serving
        coalescer relies on.

        All tuples for one RSPN land in a single copy-on-write
        :class:`~repro.core.updates.TreeBatch`, so concurrent readers
        keep sweeping one consistent snapshot during staging and the
        eventual :meth:`commit_update_batch` costs one generation bump
        per *touched RSPN*, not one per tuple.  Staging/committing must
        be serialized against other writers; readers need no
        coordination.
        """
        slots = [None] * len(ops)
        per_rspn = {}
        for i, (op, table, row) in enumerate(ops):
            try:
                if op == "insert":
                    sign = +1
                elif op == "delete":
                    sign = -1
                else:
                    raise ValueError(f"unknown update op {op!r}")
                encoded = self._encode_row(table, row)
                targets = self.ensemble.touching(table)
                if not targets:
                    raise KeyError(f"no RSPN covers table {table!r}")
            except Exception as exc:
                slots[i] = exc
                continue
            for rspn in targets:
                model_row = {
                    name: encoded.get(name)
                    for name in rspn.column_names
                    if name in encoded
                }
                if rspn.is_join_model:
                    model_row[qualify(table, "__present__")] = 1.0
                    for other in rspn.tables - {table}:
                        model_row[qualify(other, "__present__")] = 0.0
                entry = per_rspn.setdefault(id(rspn), (rspn, []))
                entry[1].append((model_row, sign))
        staged = [
            (rspn, rspn.stage_batch(rows))
            for rspn, rows in per_rspn.values()
        ]
        return (staged, slots)

    def commit_update_batch(self, pending):
        """Commit a staged batch: publish every touched RSPN's shadows
        (one generation bump each, compiled form patched in place) and
        hand the touched-node delta to the sharded evaluator so workers
        receive a leaf-delta patch instead of a whole-tree republish.

        Returns per-slot results aligned with the staged ops: the
        post-commit :attr:`generation` for applied slots, the validation
        exception for rejected ones.
        """
        staged, slots = pending
        for rspn, batch in staged:
            before = rspn.generation
            delta = rspn.commit_batch(batch)
            if delta is None or self.evaluator is None:
                continue
            record = getattr(self.evaluator, "record_tree_delta", None)
            if record is not None:
                record(rspn.root, before, delta.generation,
                       delta.sum_rows, delta.leaf_rows)
        generation = self.generation
        return [
            slot if isinstance(slot, Exception) else generation
            for slot in slots
        ]

    def apply_update_batch(self, ops):
        """Stage and immediately commit a batch of updates (see
        :meth:`stage_update_batch`); returns the per-slot results of
        :meth:`commit_update_batch`."""
        return self.commit_update_batch(self.stage_update_batch(ops))

    def _encode_row(self, table_name, row):
        """Qualify and encode a raw row dict against one table.

        Unknown column names raise ``KeyError`` (historically they were
        dropped silently, turning a typo'd column into a NULL update);
        schema columns the caller omitted are NULL-filled explicitly so
        the absorbed tuple's shape never depends on which keys the
        caller happened to pass.
        """
        table = self.database.table(table_name)
        schema = table.schema
        encoded = {}
        for column, value in row.items():
            if not schema.has_attribute(column):
                raise KeyError(
                    f"table {table_name!r} has no column {column!r}"
                )
            encoded[qualify(table_name, column)] = (
                None if value is None else table.encode_value(column, value)
            )
        for attr in schema.non_key_attributes:
            encoded.setdefault(qualify(table_name, attr.name), None)
        return encoded

    def describe(self):
        return self.ensemble.describe()

    def feedback_stats(self):
        """Workload-feedback counters, or ``None`` when disabled.

        Mirrors :meth:`kernel_stats`: surfaced through serving
        ``/stats`` so operators can watch the log fill, trainings
        commit and the applied/gated split without instrumenting
        anything.
        """
        if self.feedback is None:
            return None
        return self.feedback.stats()

    def kernel_stats(self):
        """Aggregate compiled-kernel telemetry across the ensemble.

        Sums sweep counters and peak arena sizes over every RSPN whose
        compiled form is currently cached (models never swept report
        nothing).  Surfaced through serving ``/stats`` so operators can
        see the active kernel, per-sweep latency and the arena-vs-legacy
        memory footprint without instrumenting anything.
        """
        from repro.core import kernels

        totals = {
            "n_models": 0,
            "sweeps": 0,
            "sweep_queries": 0,
            "sweep_ns_total": 0,
            "arena_allocations": 0,
            "arena_bytes_per_column": 0,
            "legacy_bytes_per_column": 0,
        }
        for rspn in self.ensemble.rspns:
            form = rspn.compiled_peek()
            if form is None:
                continue
            stats = form.kernel_stats()
            totals["n_models"] += 1
            totals["sweeps"] += stats["sweeps"]
            totals["sweep_queries"] += stats["sweep_queries"]
            totals["sweep_ns_total"] += stats["sweep_ns_total"]
            totals["arena_allocations"] += stats["arena_allocations"]
            totals["arena_bytes_per_column"] += stats["arena_bytes_per_column"]
            totals["legacy_bytes_per_column"] += (
                stats["legacy_bytes_per_column"]
            )
        queries = totals["sweep_queries"]
        totals["sweep_ns_per_query"] = (
            totals["sweep_ns_total"] / queries if queries else None
        )
        return {**kernels.describe(), **totals}
