"""CART regression tree (variance-reduction splits) in numpy.

The "Regression Tree" baseline of the ML experiment (Figure 13).
Standard binary tree: at each node the (feature, threshold) pair
maximising the reduction in squared error is chosen via a cumulative
sum scan over sorted feature values; leaves predict their mean.
"""

from __future__ import annotations

import numpy as np


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value


class RegressionTree:
    """CART with mean-squared-error criterion."""

    def __init__(self, max_depth=10, min_samples_leaf=20, max_thresholds=64):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self._root = None

    def fit(self, features, targets):
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        features = np.where(np.isnan(features), 0.0, features)
        self._root = self._build(features, targets, depth=0)
        return self

    def _build(self, features, targets, depth):
        node = _Node(float(targets.mean()) if targets.size else 0.0)
        if (
            depth >= self.max_depth
            or targets.shape[0] < 2 * self.min_samples_leaf
            or np.all(targets == targets[0])
        ):
            return node
        best = self._best_split(features, targets)
        if best is None:
            return node
        feature, threshold = best
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], targets[mask], depth + 1)
        node.right = self._build(features[~mask], targets[~mask], depth + 1)
        return node

    def _best_split(self, features, targets):
        n, d = features.shape
        base_error = float(((targets - targets.mean()) ** 2).sum())
        best_gain = 1e-12
        best = None
        for feature in range(d):
            column = features[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_values = column[order]
            sorted_targets = targets[order]
            prefix_sum = np.cumsum(sorted_targets)
            prefix_sq = np.cumsum(sorted_targets**2)
            total_sum = prefix_sum[-1]
            total_sq = prefix_sq[-1]
            # candidate split positions: value boundaries respecting leaf size
            boundaries = np.flatnonzero(sorted_values[1:] != sorted_values[:-1]) + 1
            boundaries = boundaries[
                (boundaries >= self.min_samples_leaf)
                & (boundaries <= n - self.min_samples_leaf)
            ]
            if boundaries.size == 0:
                continue
            if boundaries.size > self.max_thresholds:
                picks = np.linspace(0, boundaries.size - 1, self.max_thresholds)
                boundaries = boundaries[picks.astype(int)]
            left_n = boundaries.astype(float)
            left_sum = prefix_sum[boundaries - 1]
            left_sq = prefix_sq[boundaries - 1]
            right_n = n - left_n
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            left_error = left_sq - left_sum**2 / left_n
            right_error = right_sq - right_sum**2 / right_n
            gains = base_error - (left_error + right_error)
            index = int(np.argmax(gains))
            if gains[index] > best_gain:
                best_gain = float(gains[index])
                split_position = boundaries[index]
                best = (feature, float(sorted_values[split_position - 1]))
        return best

    def predict(self, features):
        features = np.asarray(features, dtype=float)
        features = np.where(np.isnan(features), 0.0, features)
        out = np.empty(features.shape[0])
        for i in range(features.shape[0]):
            node = self._root
            while node.feature is not None:
                node = (
                    node.left
                    if features[i, node.feature] <= node.threshold
                    else node.right
                )
            out[i] = node.value
        return out

    def depth(self):
        def _depth(node):
            if node is None or node.feature is None:
                return 1
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)
