"""Wander Join (Li et al., SIGMOD 2016): online aggregation via random
walks over join indexes.

For AQP over joins, each walk samples one join path with known inclusion
probability; Horvitz-Thompson weighting (the product of the partner
counts along the walk) gives unbiased estimates of COUNT and SUM, and
their ratio estimates AVG.  GROUP BY accumulates walk contributions per
group.  The baseline is time-bounded in the paper (two seconds); here
the budget is a fixed number of walks, converted to latency by the
benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.engine.filters import conjunction_mask
from repro.engine.indexes import JoinIndex
from repro.engine.join import JoinPlan


class WanderJoin:
    """Random-walk AQP over FK join indexes."""

    def __init__(self, database, n_walks=10_000, seed=0):
        self.database = database
        self.index = JoinIndex(database)
        self.n_walks = n_walks
        self.seed = seed
        self._query_counter = 0

    def answer(self, query):
        """Approximate answer (scalar or ``{group: value}``).

        Returns ``None`` (or omits a group) when no successful walk
        satisfies the predicates -- the "no result" outcome the paper
        reports for the most selective SSB queries.
        """
        self._query_counter += 1
        rng = np.random.default_rng(self.seed + self._query_counter)
        plan = JoinPlan(self.database.schema, list(query.tables))
        masks = {
            name: conjunction_mask(
                self.database.table(name), query.predicates_on(name)
            )
            for name in query.tables
        }
        children_of = {}
        for near, far, fk, far_is_fk_child in plan.steps:
            children_of.setdefault(near, []).append((far, fk, far_is_fk_child))
        root_table = self.database.table(plan.root)
        if root_table.n_rows == 0:
            return None if not query.group_by else {}

        aggregate = query.aggregate
        value_column = None
        if aggregate.function in ("SUM", "AVG"):
            value_column = (aggregate.table, aggregate.column)
        group_columns = list(query.group_by)

        weight_sums = {}
        value_sums = {}
        value_weights = {}
        successes = 0
        starts = rng.integers(0, root_table.n_rows, size=self.n_walks)
        for start in starts:
            walk = self._walk(plan.root, int(start), masks, children_of, rng)
            if walk is None:
                continue
            weight, rows = walk
            successes += 1
            key = self._group_key(rows, group_columns)
            weight_sums[key] = weight_sums.get(key, 0.0) + weight
            if value_column is not None:
                table, column = value_column
                value = self.database.table(table).columns[column][rows[table]]
                if not np.isnan(value):
                    value_sums[key] = value_sums.get(key, 0.0) + weight * value
                    value_weights[key] = value_weights.get(key, 0.0) + weight
        if successes == 0:
            return None if not group_columns else {}

        scale = root_table.n_rows / self.n_walks
        results = {}
        for key, weight in weight_sums.items():
            if aggregate.function == "COUNT":
                results[key] = weight * scale
            elif aggregate.function == "SUM":
                results[key] = value_sums.get(key, 0.0) * scale
            else:  # AVG
                denominator = value_weights.get(key, 0.0)
                results[key] = (
                    value_sums.get(key, 0.0) / denominator if denominator else None
                )
        if not group_columns:
            return results.get((), None)
        return {k: v for k, v in results.items() if v is not None}

    def _group_key(self, rows, group_columns):
        key = []
        for table, column in group_columns:
            t = self.database.table(table)
            key.append(t.decode_value(column, t.columns[column][rows[table]]))
        return tuple(key)

    def _walk(self, root, start_row, masks, children_of, rng):
        """One random walk; returns (HT weight, rows per table) or None."""
        if not masks[root][start_row]:
            return None
        rows = {root: start_row}
        weight = 1.0
        frontier = [root]
        while frontier:
            table = frontier.pop()
            for far, fk, far_is_fk_child in children_of.get(table, []):
                if far_is_fk_child:
                    adjacency = self.index.adjacency(fk.parent, fk.child)
                else:
                    adjacency = self.index.adjacency(fk.child, fk.parent)
                partners = adjacency.partners(rows[table])
                if partners.size == 0:
                    return None
                partner = int(partners[rng.integers(0, partners.size)])
                if not masks[far][partner]:
                    return None
                rows[far] = partner
                weight *= partners.size
                frontier.append(far)
        return weight, rows
