"""Postgres ``TABLESAMPLE``-style AQP: per-query Bernoulli sampling.

Unlike VerdictDB's precomputed scramble, ``TABLESAMPLE`` draws a fresh
Bernoulli sample of the fact table *at query time*, so the latency the
paper measures includes the sampling scan.  Estimates are scaled by the
inverse sample rate; selective predicates starve exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.engine.executor import Executor
from repro.engine.table import Database


class TableSample:
    """Per-query Bernoulli sample of the fact table."""

    def __init__(self, database, sample_rate=0.01, fact_table=None, seed=0):
        self.database = database
        self.sample_rate = sample_rate
        if fact_table is None:
            fact_table = max(
                database.table_names(), key=lambda n: database.table(n).n_rows
            )
        self.fact_table = fact_table
        self.seed = seed
        self._query_counter = 0

    def answer(self, query):
        self._query_counter += 1
        rng = np.random.default_rng(self.seed + self._query_counter)
        sampled = Database(self.database.schema)
        for name in self.database.table_names():
            table = self.database.table(name)
            if name == self.fact_table:
                keep = rng.random(table.n_rows) < self.sample_rate
                sampled.add_table(table.select(keep))
            else:
                sampled.add_table(table)
        result = Executor(sampled).execute(query)
        factor = 1.0
        if self.fact_table in query.tables and query.aggregate.function in (
            "COUNT",
            "SUM",
        ):
            factor = 1.0 / self.sample_rate
        if isinstance(result, dict):
            return {k: v * factor for k, v in result.items() if v is not None}
        if result is None:
            return None
        if query.aggregate.function == "COUNT" and result == 0:
            return None
        return result * factor
