"""VerdictDB-style AQP middleware (Park et al., SIGMOD 2018).

VerdictDB builds offline "scrambles" -- uniform (and stratified) samples
of the fact tables -- and rewrites queries to run against them, scaling
the aggregates.  The expensive part the paper measures (10 hours for
Flights, 6 days for SSB) is scramble construction; query answers then
starve on selective predicates because few (or no) sampled tuples
qualify, which produces the large relative errors of Figures 9/10.

This implementation scrambles the largest (fact) table of each schema
uniformly at ``sample_rate``, keeps dimension tables complete, executes
queries exactly on the scramble and scales COUNT/SUM by the inverse
sampling rate (AVG needs no scaling).
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.executor import Executor
from repro.engine.table import Database


class VerdictDBStyle:
    """Uniform scramble over the fact table; built offline."""

    def __init__(self, database, sample_rate=0.01, fact_table=None, seed=0):
        self.database = database
        self.sample_rate = sample_rate
        if fact_table is None:
            fact_table = max(
                database.table_names(), key=lambda n: database.table(n).n_rows
            )
        self.fact_table = fact_table
        start = time.perf_counter()
        rng = np.random.default_rng(seed)
        scramble = Database(database.schema)
        for name in database.table_names():
            table = database.table(name)
            if name == fact_table:
                keep = rng.random(table.n_rows) < sample_rate
                scramble.add_table(table.select(keep))
            else:
                scramble.add_table(table)
        self.scramble = scramble
        self._executor = Executor(scramble)
        self.build_seconds = time.perf_counter() - start

    def answer(self, query):
        """Approximate answer; ``None``/missing groups when starved."""
        result = self._executor.execute(query)
        factor = 1.0
        if self.fact_table in query.tables and query.aggregate.function in (
            "COUNT",
            "SUM",
        ):
            factor = 1.0 / self.sample_rate
        if isinstance(result, dict):
            scaled = {}
            for key, value in result.items():
                if value is None:
                    continue
                scaled[key] = value * factor
            return scaled
        if result is None:
            return None
        if query.aggregate.function == "COUNT" and result == 0:
            return None  # no qualifying sample: VerdictDB reports nothing
        return result * factor
