"""MCSN: the multi-set convolutional network of Kipf et al. (CIDR 2019).

The paper's main *workload-driven* competitor for cardinality
estimation.  A query is featurised as three sets -- tables, joins and
predicates -- each processed by a per-element MLP, mean-pooled,
concatenated and passed through an output MLP predicting the normalised
log-cardinality.  Training requires executing a workload to label the
queries with true cardinalities, which is exactly the cost (and the
generalisation trap: training covers at most three-table joins) that
DeepDB avoids.

Implemented with the numpy layers of :mod:`repro.baselines.nn` and
manual backprop through the mean pooling.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.nn import MLP, Adam
from repro.estimator import CardinalityEstimator

_OPS = ("=", "<>", "<", "<=", ">", ">=", "IN")


class _QueryFeaturizer:
    """Fixed-width one-hot featurisation of queries over one schema."""

    def __init__(self, database):
        self.database = database
        schema = database.schema
        self.table_index = {name: i for i, name in enumerate(schema.tables)}
        self.join_index = {fk.name: i for i, fk in enumerate(schema.foreign_keys)}
        self.column_index = {}
        self.column_bounds = {}
        for name, table in database.tables.items():
            for attr in table.schema.non_key_attributes:
                if attr.name.startswith("F__"):
                    continue
                qualified = f"{name}.{attr.name}"
                self.column_index[qualified] = len(self.column_index)
                values = table.columns[attr.name]
                finite = values[~np.isnan(values)]
                low = float(finite.min()) if finite.size else 0.0
                high = float(finite.max()) if finite.size else 1.0
                self.column_bounds[qualified] = (low, max(high, low + 1.0))
        self.op_index = {op: i for i, op in enumerate(_OPS)}
        self.table_width = len(self.table_index)
        self.join_width = max(len(self.join_index), 1)
        self.predicate_width = len(self.column_index) + len(_OPS) + 1

    def _normalise(self, qualified, encoded):
        low, high = self.column_bounds[qualified]
        return (float(encoded) - low) / (high - low)

    def featurise(self, query):
        """(table set, join set, predicate set) as 2-D arrays."""
        tables = np.zeros((len(query.tables), self.table_width))
        for i, name in enumerate(query.tables):
            tables[i, self.table_index[name]] = 1.0
        edges = self.database.schema.edges_between(query.tables)
        joins = np.zeros((max(len(edges), 1), self.join_width))
        for i, fk in enumerate(edges):
            joins[i, self.join_index[fk.name]] = 1.0
        rows = []
        for predicate in query.predicates:
            rows.extend(self._predicate_rows(predicate))
        if not rows:
            rows = [np.zeros(self.predicate_width)]
        return tables, joins, np.vstack(rows)

    def _predicate_rows(self, predicate):
        qualified = predicate.qualified_column
        table = self.database.table(predicate.table)
        if predicate.op == "BETWEEN":
            low = type(predicate)(predicate.table, predicate.column, ">=", predicate.value[0])
            high = type(predicate)(predicate.table, predicate.column, "<=", predicate.value[1])
            return self._predicate_rows(low) + self._predicate_rows(high)
        if predicate.op in ("IS NULL", "IS NOT NULL"):
            return []
        row = np.zeros(self.predicate_width)
        row[self.column_index[qualified]] = 1.0
        row[len(self.column_index) + self.op_index[predicate.op]] = 1.0
        if predicate.op == "IN":
            encoded = [
                table.encode_value(predicate.column, v)
                for v in predicate.value
            ]
            encoded = [e for e in encoded if e is not None]
            value = float(np.mean(encoded)) if encoded else 0.0
        else:
            encoded = table.encode_value(predicate.column, predicate.value)
            value = float(encoded) if encoded is not None else 0.0
        row[-1] = self._normalise(qualified, value)
        return [row]


class _SetModule:
    """Per-element MLP + mean pooling, with backprop through the pool."""

    def __init__(self, n_in, hidden, rng):
        self.mlp = MLP([n_in, hidden, hidden], rng, final_relu=True)
        self._n_elements = None

    def forward(self, elements):
        self._n_elements = elements.shape[0]
        hidden = self.mlp.forward(elements)
        return hidden.mean(axis=0, keepdims=True)

    def backward(self, grad_pooled):
        grad = np.repeat(grad_pooled, self._n_elements, axis=0) / self._n_elements
        self.mlp.backward(grad)

    @property
    def layers(self):
        return self.mlp.layers


class MCSN(CardinalityEstimator):
    """Multi-set convolutional network cardinality estimator."""

    def __init__(self, database, hidden=64, epochs=40, lr=1e-3, seed=0):
        self.featurizer = _QueryFeaturizer(database)
        rng = np.random.default_rng(seed)
        self.table_module = _SetModule(self.featurizer.table_width, hidden, rng)
        self.join_module = _SetModule(self.featurizer.join_width, hidden, rng)
        self.predicate_module = _SetModule(self.featurizer.predicate_width, hidden, rng)
        self.output = MLP([3 * hidden, hidden, 1], rng)
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._log_min = 0.0
        self._log_max = 1.0
        self.hidden = hidden

    # -- forward/backward over one query ---------------------------------
    def _forward(self, featurised):
        tables, joins, predicates = featurised
        pooled = np.concatenate(
            [
                self.table_module.forward(tables),
                self.join_module.forward(joins),
                self.predicate_module.forward(predicates),
            ],
            axis=1,
        )
        return float(self.output.forward(pooled)[0, 0])

    def _backward(self, grad_scalar):
        grad = self.output.backward(np.array([[grad_scalar]]))
        h = self.hidden
        self.table_module.backward(grad[:, :h])
        self.join_module.backward(grad[:, h : 2 * h])
        self.predicate_module.backward(grad[:, 2 * h :])

    # -- training ----------------------------------------------------------
    def fit(self, queries, cardinalities):
        """Train on (query, true cardinality) pairs.

        Targets are min-max normalised log cardinalities, the scheme of
        the original MCSN; predictions outside the trained range simply
        saturate -- the generalisation failure the paper's Figure 1 shows.
        """
        featurised = [self.featurizer.featurise(q) for q in queries]
        logs = np.log(np.maximum(np.asarray(cardinalities, dtype=float), 1.0))
        self._log_min = float(logs.min())
        self._log_max = float(max(logs.max(), self._log_min + 1e-6))
        targets = (logs - self._log_min) / (self._log_max - self._log_min)
        layers = (
            self.table_module.layers
            + self.join_module.layers
            + self.predicate_module.layers
            + self.output.layers
        )
        optimizer = Adam(layers, lr=self.lr)
        rng = np.random.default_rng(self.seed)
        n = len(featurised)
        for _epoch in range(self.epochs):
            for i in rng.permutation(n):
                prediction = self._forward(featurised[i])
                grad = 2.0 * (prediction - targets[i])
                self._backward(grad)
                optimizer.step()
        return self

    def predict(self, query):
        """Estimated cardinality (clamped to >= 1)."""
        if query.has_disjunctions:
            raise ValueError(
                "MCSN's featurisation cannot represent OR predicates; "
                "expand the query first (repro.core.disjunction)"
            )
        normalised = self._forward(self.featurizer.featurise(query))
        log_card = normalised * (self._log_max - self._log_min) + self._log_min
        return float(max(np.exp(log_card), 1.0))

    def cardinality(self, query):
        """Protocol alias so MCSN can drive the join optimizer too."""
        return self.predict(query)
