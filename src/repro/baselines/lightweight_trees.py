"""Lightweight tree-based selectivity models (Dutt et al., VLDB 2019).

The paper's related work highlights "lightweight tree-based models in
combination with log-transformed labels" as the strongest single-table
*workload-driven* selectivity estimator.  This module reimplements that
recipe:

- **featurisation**: a range query over ``d`` columns becomes a
  ``2d``-vector of normalised ``[low, high]`` bounds per column
  (unconstrained columns span ``[0, 1]``),
- **label**: ``log(selectivity)`` -- the log transform makes the
  q-error-relevant relative differences additive,
- **model**: gradient-boosted regression trees (least-squares boosting
  over the CART learner used elsewhere in this repository).

Being workload-driven, the model shares the paper's criticism of this
family: it needs executed training queries and degrades on predicates
shaped unlike its training distribution (demonstrated in the cardinality
benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.regression_tree import RegressionTree
from repro.estimator import CardinalityEstimator

_MIN_SELECTIVITY = 1e-7


class GradientBoostedTrees:
    """Least-squares gradient boosting over CART trees."""

    def __init__(self, n_trees=100, learning_rate=0.1, max_depth=4,
                 min_samples_leaf=5):
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base = 0.0
        self._trees = []

    def fit(self, features, targets):
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        self._base = float(targets.mean()) if targets.size else 0.0
        self._trees = []
        prediction = np.full(targets.shape[0], self._base)
        for _ in range(self.n_trees):
            residuals = targets - prediction
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(features, residuals)
            step = tree.predict(features)
            if np.allclose(step, 0.0):
                break
            prediction = prediction + self.learning_rate * step
            self._trees.append(tree)
        return self

    def predict(self, features):
        features = np.asarray(features, dtype=float)
        out = np.full(features.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(features)
        return out

    @property
    def n_fitted_trees(self):
        return len(self._trees)


class LightweightSelectivityModel(CardinalityEstimator):
    """Per-table range-selectivity model with log-transformed labels.

    ``fit`` takes training queries (single-table, conjunctive) with their
    true cardinalities -- the workload-driven data collection step the
    paper contrasts with DeepDB's data-driven learning.
    """

    def __init__(self, database, table, n_trees=120, learning_rate=0.1,
                 max_depth=4):
        self.database = database
        self.table_name = table
        table_obj = database.table(table)
        self.columns = [
            a.name for a in table_obj.schema.non_key_attributes
            if not a.name.startswith("F__")
        ]
        self._bounds = {}
        for name in self.columns:
            values = table_obj.columns[name]
            finite = values[~np.isnan(values)]
            low = float(finite.min()) if finite.size else 0.0
            high = float(finite.max()) if finite.size else 1.0
            self._bounds[name] = (low, max(high, low + 1e-9))
        self.model = GradientBoostedTrees(
            n_trees=n_trees, learning_rate=learning_rate, max_depth=max_depth
        )

    # -- featurisation ---------------------------------------------------
    def _normalise(self, name, value):
        low, high = self._bounds[name]
        return float(np.clip((value - low) / (high - low), 0.0, 1.0))

    def featurise(self, query):
        """``[low_1, high_1, ..., low_d, high_d]`` in [0, 1] per column."""
        if tuple(query.tables) != (self.table_name,):
            raise ValueError(
                f"model covers table {self.table_name!r}, query is over "
                f"{query.tables}"
            )
        table = self.database.table(self.table_name)
        bounds = {name: [0.0, 1.0] for name in self.columns}
        for predicate in query.predicates:
            name = predicate.column
            if name not in bounds:
                continue
            low, high = self._predicate_bounds(table, predicate)
            bounds[name][0] = max(bounds[name][0], self._normalise(name, low))
            bounds[name][1] = min(bounds[name][1], self._normalise(name, high))
        features = []
        for name in self.columns:
            features.extend(bounds[name])
        return np.asarray(features)

    def _predicate_bounds(self, table, predicate):
        op, value = predicate.op, predicate.value
        if op in ("IS NULL", "IS NOT NULL"):
            return -np.inf, np.inf  # the featurisation cannot express NULLs
        if op == "IN":
            encoded = [
                table.encode_value(predicate.column, v) for v in value
            ]
            encoded = [e for e in encoded if e is not None]
            if not encoded:
                return np.inf, -np.inf
            return min(encoded), max(encoded)
        if op == "BETWEEN":
            low = table.encode_value(predicate.column, value[0])
            high = table.encode_value(predicate.column, value[1])
            return (np.inf, -np.inf) if low is None else (low, high)
        encoded = table.encode_value(predicate.column, value)
        if encoded is None:
            return (np.inf, -np.inf) if op == "=" else (-np.inf, np.inf)
        if op == "=":
            return encoded, encoded
        if op in ("<", "<="):
            return -np.inf, encoded
        if op in (">", ">="):
            return encoded, np.inf
        return -np.inf, np.inf  # <> keeps the full range

    # -- training and prediction ------------------------------------------
    def fit(self, queries, cardinalities):
        """Train on executed queries (the workload-driven step)."""
        n_rows = max(self.database.table(self.table_name).n_rows, 1)
        features = np.vstack([self.featurise(q) for q in queries])
        labels = np.log(
            np.maximum(np.asarray(cardinalities, dtype=float) / n_rows,
                       _MIN_SELECTIVITY)
        )
        self.model.fit(features, labels)
        return self

    def selectivity(self, query):
        features = self.featurise(query).reshape(1, -1)
        return float(np.exp(self.model.predict(features)[0]))

    def cardinality(self, query):
        """Estimated row count (clamped to >= 1)."""
        n_rows = max(self.database.table(self.table_name).n_rows, 1)
        return max(self.selectivity(query) * n_rows, 1.0)
