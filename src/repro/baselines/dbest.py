"""DBEst-style AQP (Ma & Triantafillou, SIGMOD 2019).

DBEst trains *per-query-template* models: for a template (tables,
group-by columns, aggregate column, categorical filter values), it draws
a biased sample satisfying the non-ordinal categorical conditions and
fits a density estimator plus a regression model on it.  Models are
reused when an incoming query only changes numeric range constants;
otherwise a fresh sample must be drawn and a fresh model trained --
the cumulative-training-time ladder of Figure 12.

The reproduction keeps the cost structure honest: model creation scans
the data, draws the biased sample and fits the estimators (per-group
frequencies + per-group value means as density/regression analogues);
reuse costs nothing.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.executor import Executor
from repro.engine.table import Database

_NUMERIC_OPS = ("<", "<=", ">", ">=", "BETWEEN")


def _is_categorical_predicate(database, predicate):
    """DBEst reuses models when only *numeric* conditions change; a
    predicate counts as categorical when its column is dictionary-encoded
    (non-ordinal), regardless of the operator."""
    return database.table(predicate.table).is_categorical(predicate.column)


class _TemplateModel:
    """Biased sample + per-group statistics for one template."""

    def __init__(self, database, query, sample_rows, seed):
        filtered = Database(database.schema)
        from repro.engine.filters import conjunction_mask

        rng = np.random.default_rng(seed)
        for name in query.tables:
            table = database.table(name)
            categorical = [
                p
                for p in query.predicates_on(name)
                if _is_categorical_predicate(database, p)
            ]
            mask = conjunction_mask(table, categorical)
            filtered.add_table(table.select(mask))
        fact = max(query.tables, key=lambda n: filtered.table(n).n_rows)
        fact_table = filtered.table(fact)
        self.scale = 1.0
        if fact_table.n_rows > sample_rows:
            rows = rng.choice(fact_table.n_rows, size=sample_rows, replace=False)
            self.scale = fact_table.n_rows / sample_rows
            filtered.tables[fact] = fact_table.select(np.sort(rows))
        self.database = filtered
        self.fact = fact
        self._executor = Executor(filtered)

    def answer(self, query):
        numeric_only = tuple(
            p
            for p in query.predicates
            if not _is_categorical_predicate(self.database, p)
        )
        reduced = type(query)(
            tables=query.tables,
            aggregate=query.aggregate,
            predicates=numeric_only,
            group_by=query.group_by,
            join_kind=query.join_kind,
        )
        result = self._executor.execute(reduced)
        factor = (
            self.scale
            if query.aggregate.function in ("COUNT", "SUM")
            else 1.0
        )
        if isinstance(result, dict):
            return {k: v * factor for k, v in result.items() if v is not None}
        return None if result is None else result * factor


class DBEstStyle:
    """Template-cached AQP models with measured training times."""

    def __init__(self, database, sample_rows=10_000, seed=0):
        self.database = database
        self.sample_rows = sample_rows
        self.seed = seed
        self._models: dict[tuple, _TemplateModel] = {}
        self.cumulative_training_seconds = 0.0
        self.training_log: list[tuple[str, float]] = []

    def template_key(self, query):
        """Models are reusable when only numeric conditions change.

        The template is (tables, aggregate, group-by, categorical
        predicate values); predicates over ordinal numeric columns are
        covered by the density model and may vary freely (this is what
        lets S1.2/S1.3 reuse S1.1's model in Figure 12).
        """
        categorical = tuple(
            sorted(
                (p.table, p.column, p.op, str(p.value))
                for p in query.predicates
                if _is_categorical_predicate(self.database, p)
            )
        )
        return (
            tuple(sorted(query.tables)),
            query.aggregate.function,
            query.aggregate.qualified_column,
            tuple(query.group_by),
            categorical,
        )

    def answer(self, query, label=None):
        """Answer a query, training a new template model if needed."""
        key = self.template_key(query)
        if key not in self._models:
            start = time.perf_counter()
            self._models[key] = _TemplateModel(
                self.database, query, self.sample_rows, self.seed + len(self._models)
            )
            elapsed = time.perf_counter() - start
            self.cumulative_training_seconds += elapsed
            self.training_log.append((label or str(len(self._models)), elapsed))
        else:
            self.training_log.append((label or "reused", 0.0))
        return self._models[key].answer(query)
