"""Chow-Liu tree Bayesian network selectivity estimator.

The probabilistic-graphical-model family of selectivity estimators the
paper cites as related work (Getoor et al. [5], Tzoumas et al. [35]):
per table, a tree-shaped Bayesian network is learned by

1. discretising every non-key column (NULL is its own category, numeric
   columns get equi-depth bins),
2. measuring pairwise mutual information on a sample,
3. taking the maximum spanning tree (Chow-Liu, 1968) and fitting
   Laplace-smoothed conditional probability tables along it.

Selectivities of conjunctive predicates are computed *exactly* on the
tree by upward message passing, so correlations between attributes of
the same table are captured -- unlike the Postgres baseline -- while
joins still fall back to the System-R uniformity formulas, the
limitation the paper's cross-table correlations expose.
"""

from __future__ import annotations

import numpy as np

from repro.core.ranges import Range
from repro.estimator import CardinalityEstimator

_SMOOTHING = 0.1


class _DiscretisedColumn:
    """A column mapped to category codes 0..k-1 (NULL = code k-1)."""

    def __init__(self, values, is_categorical, n_bins):
        finite = values[~np.isnan(values)]
        if is_categorical or np.unique(finite).shape[0] <= n_bins:
            self.kind = "exact"
            self.levels = np.unique(finite)
            self.edges = None
            base = np.searchsorted(self.levels, values)
            base = np.clip(base, 0, max(self.levels.shape[0] - 1, 0))
        else:
            self.kind = "binned"
            quantiles = np.linspace(0.0, 1.0, n_bins + 1)
            self.edges = np.unique(np.quantile(finite, quantiles))
            self.levels = None
            base = np.clip(
                np.searchsorted(self.edges, values, side="right") - 1,
                0,
                self.edges.shape[0] - 2,
            )
        self.null_code = (
            self.levels.shape[0] if self.kind == "exact" else self.edges.shape[0] - 1
        )
        self.n_codes = self.null_code + 1
        self.codes = np.where(np.isnan(values), self.null_code, base).astype(int)

    def codes_for_range(self, rng: Range):
        """(codes, weights): categories overlapping the range with the
        covered fraction of each (1.0 except partially-covered bins)."""
        codes, weights = [], []
        if self.kind == "exact":
            for i, level in enumerate(self.levels):
                if any(interval.contains(level) for interval in rng.intervals):
                    codes.append(i)
                    weights.append(1.0)
        else:
            low, high = self.edges[:-1], self.edges[1:]
            for interval in rng.intervals:
                for b in range(low.shape[0]):
                    width = high[b] - low[b]
                    if interval.is_point():
                        if low[b] <= interval.low <= high[b]:
                            codes.append(b)
                            weights.append(0.05 if width > 0 else 1.0)
                        continue
                    left = max(interval.low, low[b])
                    right = min(interval.high, high[b])
                    if right < left:
                        continue
                    fraction = (right - left) / width if width > 0 else 1.0
                    if fraction > 0:
                        codes.append(b)
                        weights.append(min(float(fraction), 1.0))
        if rng.include_null:
            codes.append(self.null_code)
            weights.append(1.0)
        merged = {}
        for code, weight in zip(codes, weights):
            merged[code] = max(merged.get(code, 0.0), weight)
        return merged


def _mutual_information(codes_a, codes_b, n_a, n_b):
    joint = np.zeros((n_a, n_b))
    np.add.at(joint, (codes_a, codes_b), 1.0)
    joint /= max(codes_a.shape[0], 1)
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (pa * pb), 1.0)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(terms.sum())


class _TableNetwork:
    """Chow-Liu tree over one table's non-key attributes."""

    def __init__(self, table, n_bins, sample, rng):
        self.table = table
        names = [a.name for a in table.schema.non_key_attributes
                 if not a.name.startswith("F__")]
        self.columns = {}
        rows = np.arange(table.n_rows)
        if table.n_rows > sample:
            rows = rng.choice(table.n_rows, size=sample, replace=False)
        for name in names:
            attr = table.schema.attribute(name)
            self.columns[name] = _DiscretisedColumn(
                table.columns[name][rows], attr.kind == "categorical", n_bins
            )
        self.parent = {}
        self.cpt = {}
        self.prior = {}
        self._fit(names)

    def _fit(self, names):
        import networkx as nx

        if not names:
            return
        graph = nx.Graph()
        graph.add_nodes_from(names)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                mi = _mutual_information(
                    self.columns[a].codes,
                    self.columns[b].codes,
                    self.columns[a].n_codes,
                    self.columns[b].n_codes,
                )
                graph.add_edge(a, b, weight=-mi)
        tree = nx.minimum_spanning_tree(graph)
        root = names[0]
        self.prior[root] = self._marginal(root)
        for near, far in nx.bfs_edges(tree, root):
            self.parent[far] = near
            self.cpt[far] = self._conditional(far, near)
        self.root = root
        self.children = {}
        for child, parent in self.parent.items():
            self.children.setdefault(parent, []).append(child)

    def _marginal(self, name):
        column = self.columns[name]
        counts = np.bincount(column.codes, minlength=column.n_codes).astype(float)
        counts += _SMOOTHING
        return counts / counts.sum()

    def _conditional(self, child, parent):
        c, p = self.columns[child], self.columns[parent]
        joint = np.full((p.n_codes, c.n_codes), _SMOOTHING)
        np.add.at(joint, (p.codes, c.codes), 1.0)
        return joint / joint.sum(axis=1, keepdims=True)

    def selectivity(self, ranges: dict):
        """P(all attributes fall in their ranges), exact on the tree.

        ``ranges`` maps column names to :class:`Range`; unconstrained
        columns are marginalised out by the message passing.
        """
        if not self.prior:
            return 1.0
        indicators = {}
        for name, rng in ranges.items():
            merged = self.columns[name].codes_for_range(rng)
            indicator = np.zeros(self.columns[name].n_codes)
            for code, weight in merged.items():
                indicator[code] = weight
            indicators[name] = indicator

        def message(node):
            """Vector over the node's codes: P(evidence below | node)."""
            vector = indicators.get(
                node, np.ones(self.columns[node].n_codes)
            ).copy()
            for child in self.children.get(node, []):
                vector *= self.cpt[child] @ message(child)
            return vector

        return float(np.dot(self.prior[self.root], message(self.root)))


class ChowLiuEstimator(CardinalityEstimator):
    """Per-table Chow-Liu BNs + System-R join formulas.

    Exposes the estimator interface shared by every cardinality
    baseline: ``cardinality(query) -> float``.
    """

    def __init__(self, database, n_bins=32, sample=20_000, seed=0):
        self.database = database
        rng = np.random.default_rng(seed)
        self.networks = {
            name: _TableNetwork(table, n_bins, sample, rng)
            for name, table in database.tables.items()
        }

    def selectivity(self, table_name, predicates):
        """Joint selectivity of conjunctive predicates on one table."""
        table = self.database.table(table_name)
        ranges = {}
        for predicate in predicates:
            rng = self._predicate_range(table, predicate)
            existing = ranges.get(predicate.column)
            ranges[predicate.column] = (
                rng if existing is None else existing.intersect(rng)
            )
        return self.networks[table_name].selectivity(ranges)

    @staticmethod
    def _predicate_range(table, predicate):
        op, value = predicate.op, predicate.value
        if op in ("IS NULL", "IS NOT NULL"):
            return Range.from_operator(op, None)
        if op == "IN":
            encoded = [table.encode_value(predicate.column, v) for v in value]
            return Range.from_operator(op, encoded)
        if op == "BETWEEN":
            low = table.encode_value(predicate.column, value[0])
            high = table.encode_value(predicate.column, value[1])
            return Range.from_operator(op, (low, high))
        return Range.from_operator(op, table.encode_value(predicate.column, value))

    def _column_distinct(self, table_name, column):
        table = self.database.table(table_name)
        values = table.columns[column]
        return max(np.unique(values[~np.isnan(values)]).shape[0], 1)

    def cardinality(self, query):
        """Estimated inner-join cardinality (clamped to >= 1)."""
        if query.has_disjunctions:
            from repro.core.disjunction import cardinality_via_expansion

            return cardinality_via_expansion(self, query)
        estimate = 1.0
        for name in query.tables:
            table = self.database.table(name)
            estimate *= max(table.n_rows, 1) * self.selectivity(
                name, query.predicates_on(name)
            )
        for fk in self.database.schema.edges_between(query.tables):
            nd_parent = self._column_distinct(fk.parent, fk.pk_column)
            nd_child = self._column_distinct(fk.child, fk.fk_column)
            estimate /= max(nd_parent, nd_child, 1)
        return max(estimate, 1.0)
