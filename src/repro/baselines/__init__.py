"""Every comparator of the paper's evaluation, implemented from scratch.

Cardinality estimation (Table 1, Figures 1/7):

- :mod:`repro.baselines.mcsn` -- the learned multi-set convolutional
  network of Kipf et al. (numpy deep-sets with manual backprop),
- :mod:`repro.baselines.postgres_estimator` -- MCV + equi-depth
  histograms with attribute independence and System-R join formulas,
- :mod:`repro.baselines.ibjs` -- index-based join sampling,
- :mod:`repro.baselines.sampling` -- naive per-table random sampling.

AQP (Figures 9/10/12):

- :mod:`repro.baselines.verdictdb` -- offline uniform scramble middleware,
- :mod:`repro.baselines.wander_join` -- online aggregation via random
  walks over join indexes,
- :mod:`repro.baselines.tablesample` -- per-query Bernoulli sampling,
- :mod:`repro.baselines.dbest` -- per-query-template density+regression
  models (training-time comparison).

ML tasks (Figure 13):

- :mod:`repro.baselines.regression_tree` -- CART,
- :mod:`repro.baselines.nn` -- a small MLP regressor (shared with MCSN).

Every cardinality estimator here conforms to the batched estimator
protocol (:mod:`repro.estimator`): they inherit
:class:`~repro.estimator.CardinalityEstimator`, so
``cardinality_batch(queries)`` works on all of them (as a serial loop)
and any of them can drive the batched join-order optimizer.
"""

from repro.baselines.ibjs import IndexBasedJoinSampling
from repro.baselines.mcsn import MCSN
from repro.baselines.nn import MLPRegressor
from repro.baselines.postgres_estimator import PostgresEstimator
from repro.baselines.regression_tree import RegressionTree
from repro.baselines.sampling import RandomSamplingEstimator
from repro.baselines.tablesample import TableSample
from repro.baselines.verdictdb import VerdictDBStyle
from repro.baselines.wander_join import WanderJoin

__all__ = [
    "IndexBasedJoinSampling",
    "MCSN",
    "MLPRegressor",
    "PostgresEstimator",
    "RandomSamplingEstimator",
    "RegressionTree",
    "TableSample",
    "VerdictDBStyle",
    "WanderJoin",
]
