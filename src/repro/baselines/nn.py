"""A small feed-forward neural network in numpy (manual backprop, Adam).

Serves two roles in the reproduction: the generic MLP regressor baseline
of the ML experiment (Figure 13) and the building block of the MCSN
cardinality model (the paper's main learned competitor).  No GPU and no
autograd are available offline, so forward and backward passes are
written out explicitly.
"""

from __future__ import annotations

import numpy as np


class Dense:
    """Fully connected layer with optional ReLU."""

    def __init__(self, n_in, n_out, rng, relu=True):
        limit = np.sqrt(6.0 / (n_in + n_out))
        self.weight = rng.uniform(-limit, limit, size=(n_in, n_out))
        self.bias = np.zeros(n_out)
        self.relu = relu
        self._x = None
        self._pre = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x):
        self._x = x
        pre = x @ self.weight + self.bias
        self._pre = pre
        return np.maximum(pre, 0.0) if self.relu else pre

    def backward(self, grad_out):
        if self.relu:
            grad_out = grad_out * (self._pre > 0)
        self.grad_weight = self._x.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def parameters(self):
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class Adam:
    """Adam optimizer over (parameter, gradient) pairs."""

    def __init__(self, layers, lr=1e-3, beta1=0.9, beta2=0.999, eps=1e-8):
        self.layers = layers
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m = None
        self._v = None

    def step(self):
        params = [p for layer in self.layers for p in layer.parameters()]
        if self._m is None:
            self._m = [np.zeros_like(p) for p, _g in params]
            self._v = [np.zeros_like(p) for p, _g in params]
        self.t += 1
        for i, (param, grad) in enumerate(params):
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / (1 - self.beta1**self.t)
            v_hat = self._v[i] / (1 - self.beta2**self.t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class MLP:
    """Plain multilayer perceptron core (no normalisation)."""

    def __init__(self, layer_sizes, rng, final_relu=False):
        self.layers = []
        for i in range(len(layer_sizes) - 1):
            last = i == len(layer_sizes) - 2
            self.layers.append(
                Dense(
                    layer_sizes[i],
                    layer_sizes[i + 1],
                    rng,
                    relu=(not last) or final_relu,
                )
            )

    def forward(self, x):
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad):
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class MLPRegressor:
    """MLP regression with z-scored inputs/targets and Adam + MSE.

    The Figure-13 baseline: a straightforward neural network trained on
    the same feature matrix the other regressors see.
    """

    def __init__(self, hidden=(64, 64), epochs=30, batch_size=256, lr=1e-3, seed=0):
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._net = None
        self._x_mean = self._x_scale = None
        self._y_mean = self._y_scale = None

    def fit(self, features, targets):
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).reshape(-1, 1)
        with np.errstate(all="ignore"):
            impute = np.nanmean(features, axis=0)
        self._impute = np.where(np.isnan(impute), 0.0, impute)
        features = np.where(np.isnan(features), self._impute, features)
        self._x_mean = features.mean(axis=0)
        self._x_scale = features.std(axis=0)
        self._x_scale[self._x_scale == 0] = 1.0
        self._y_mean = targets.mean()
        self._y_scale = targets.std() or 1.0
        x = (features - self._x_mean) / self._x_scale
        y = (targets - self._y_mean) / self._y_scale
        rng = np.random.default_rng(self.seed)
        self._net = MLP([x.shape[1], *self.hidden, 1], rng)
        optimizer = Adam(self._net.layers, lr=self.lr)
        n = x.shape[0]
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                prediction = self._net.forward(x[batch])
                grad = 2.0 * (prediction - y[batch]) / batch.shape[0]
                self._net.backward(grad)
                optimizer.step()
        return self

    def predict(self, features):
        features = np.asarray(features, dtype=float)
        features = np.where(np.isnan(features), self._impute, features)
        x = (features - self._x_mean) / self._x_scale
        prediction = self._net.forward(x)
        return (prediction * self._y_scale + self._y_mean).ravel()
