"""Postgres-style cardinality estimation (the non-learned baseline).

Reimplements the documented behaviour of the PostgreSQL planner's
selectivity machinery at the level the paper compares against:

- per-column statistics: NULL fraction, number of distinct values, the
  most-common-value (MCV) list with frequencies, and an equi-depth
  histogram over the remaining values;
- predicate selectivities from MCVs/histograms, conjunctions multiplied
  under the *attribute independence assumption*;
- FK equi-join selectivity ``1 / max(nd(lhs), nd(rhs))`` (System-R),
  multiplied across the join tree under join-predicate independence.

The independence assumptions are precisely what the paper's correlated
data breaks, producing the large tail errors of Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.estimator import CardinalityEstimator

_DEFAULT_EQ_SELECTIVITY = 0.005
_DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


class _ColumnStats:
    def __init__(self, values, n_mcv=100, n_histogram=100):
        not_null = values[~np.isnan(values)]
        total = values.shape[0]
        self.null_frac = 1.0 - not_null.shape[0] / total if total else 0.0
        uniques, counts = np.unique(not_null, return_counts=True)
        self.n_distinct = max(uniques.shape[0], 1)
        order = np.argsort(counts)[::-1][:n_mcv]
        self.mcv_values = uniques[order]
        self.mcv_freqs = counts[order] / max(total, 1)
        self.mcv_frac = float(self.mcv_freqs.sum())
        mcv_set = set(self.mcv_values.tolist())
        rest = not_null[~np.isin(not_null, self.mcv_values)]
        if rest.size >= 2:
            quantiles = np.linspace(0.0, 1.0, n_histogram + 1)
            self.histogram = np.quantile(rest, quantiles)
        else:
            self.histogram = None
        self.rest_frac = max(1.0 - self.mcv_frac - self.null_frac, 0.0)
        self.n_rest_distinct = max(self.n_distinct - len(mcv_set), 1)

    # -- selectivities --------------------------------------------------
    def equals(self, value):
        if value is None:
            return 0.0
        hit = np.flatnonzero(self.mcv_values == value)
        if hit.size:
            return float(self.mcv_freqs[hit[0]])
        return self.rest_frac / self.n_rest_distinct

    def in_list(self, values):
        return float(min(sum(self.equals(v) for v in values), 1.0))

    def range(self, low, high, low_inclusive=True, high_inclusive=True):
        mcv_mass = 0.0
        for value, freq in zip(self.mcv_values, self.mcv_freqs):
            above = value > low or (low_inclusive and value == low)
            below = value < high or (high_inclusive and value == high)
            if above and below:
                mcv_mass += freq
        if self.histogram is None:
            return float(min(mcv_mass + self.rest_frac * _DEFAULT_RANGE_SELECTIVITY, 1.0))
        bounds = self.histogram
        position_low = np.searchsorted(bounds, low, side="left")
        position_high = np.searchsorted(bounds, high, side="right")
        fraction = (position_high - position_low) / max(bounds.shape[0] - 1, 1)
        fraction = float(np.clip(fraction, 0.0, 1.0))
        return float(min(mcv_mass + self.rest_frac * fraction, 1.0))


class PostgresEstimator(CardinalityEstimator):
    """Cardinality estimator with per-column stats and independence."""

    def __init__(self, database, n_mcv=100, n_histogram=100, seed=0):
        self.database = database
        self.stats = {}
        for name, table in database.tables.items():
            for attr in table.schema.non_key_attributes:
                self.stats[(name, attr.name)] = _ColumnStats(
                    table.columns[attr.name], n_mcv, n_histogram
                )
            if table.schema.primary_key:
                pk = table.schema.primary_key
                self.stats[(name, pk)] = None  # keys: nd == n_rows

    def _column_distinct(self, table_name, column):
        table = self.database.table(table_name)
        if column == table.schema.primary_key:
            return max(table.n_rows, 1)
        stats = self.stats.get((table_name, column))
        if stats is None:
            values = table.columns[column]
            return max(np.unique(values[~np.isnan(values)]).shape[0], 1)
        return stats.n_distinct

    def _predicate_selectivity(self, predicate):
        table = self.database.table(predicate.table)
        stats = self.stats.get((predicate.table, predicate.column))
        if stats is None:
            stats = _ColumnStats(table.columns[predicate.column])
        op = predicate.op
        if op == "IS NULL":
            return stats.null_frac
        if op == "IS NOT NULL":
            return 1.0 - stats.null_frac
        if op == "IN":
            encoded = [
                table.encode_value(predicate.column, v) for v in predicate.value
            ]
            return stats.in_list([e for e in encoded if e is not None])
        if op == "BETWEEN":
            low = table.encode_value(predicate.column, predicate.value[0])
            high = table.encode_value(predicate.column, predicate.value[1])
            if low is None or high is None:
                return 0.0
            return stats.range(low, high)
        encoded = table.encode_value(predicate.column, predicate.value)
        if op == "=":
            return stats.equals(encoded)
        if op == "<>":
            return max(1.0 - stats.null_frac - stats.equals(encoded), 0.0)
        if encoded is None:
            return _DEFAULT_EQ_SELECTIVITY
        if op in ("<", "<="):
            return stats.range(-np.inf, encoded, high_inclusive=op == "<=")
        if op in (">", ">="):
            return stats.range(encoded, np.inf, low_inclusive=op == ">=")
        raise ValueError(f"unsupported operator {op!r}")

    def cardinality(self, query):
        """Estimated inner-join cardinality (clamped to >= 1)."""
        if query.has_disjunctions:
            from repro.core.disjunction import cardinality_via_expansion

            return cardinality_via_expansion(self, query)
        estimate = 1.0
        for name in query.tables:
            table = self.database.table(name)
            selectivity = 1.0
            for predicate in query.predicates_on(name):
                selectivity *= self._predicate_selectivity(predicate)
            estimate *= max(table.n_rows, 1) * selectivity
        for fk in self.database.schema.edges_between(query.tables):
            nd_parent = self._column_distinct(fk.parent, fk.pk_column)
            nd_child = self._column_distinct(fk.child, fk.fk_column)
            estimate /= max(nd_parent, nd_child, 1)
        return max(estimate, 1.0)
