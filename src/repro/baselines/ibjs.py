"""Index-Based Join Sampling (Leis et al., CIDR 2017).

The strongest non-learned baseline of Table 1.  Cardinalities of join
queries are estimated by random walks through secondary indexes: start
from a qualifying tuple of the first table, follow each FK edge of the
join tree to a uniformly random partner while recording the exact number
of partners (read from the index), and multiply.  Averaging the product
of branch counts (zero when a walk dies or a predicate fails) yields an
unbiased estimate of the join size.
"""

from __future__ import annotations

import numpy as np

from repro.engine.filters import conjunction_mask
from repro.engine.indexes import JoinIndex
from repro.engine.join import JoinPlan
from repro.estimator import CardinalityEstimator


class IndexBasedJoinSampling(CardinalityEstimator):
    """IBJS cardinality estimator with a fixed per-query walk budget."""

    def __init__(self, database, n_walks=1_000, seed=0):
        self.database = database
        self.index = JoinIndex(database)
        self.n_walks = n_walks
        self.seed = seed
        self._query_counter = 0

    def cardinality(self, query):
        if query.has_disjunctions:
            from repro.core.disjunction import cardinality_via_expansion

            return cardinality_via_expansion(self, query)
        self._query_counter += 1
        rng = np.random.default_rng(self.seed + self._query_counter)
        masks = {
            name: conjunction_mask(
                self.database.table(name), query.predicates_on(name)
            )
            for name in query.tables
        }
        if len(query.tables) == 1:
            return max(float(masks[query.tables[0]].sum()), 1.0)
        plan = JoinPlan(self.database.schema, list(query.tables))
        root_rows = np.flatnonzero(masks[plan.root])
        if root_rows.size == 0:
            return 1.0
        children_of = {}
        for near, far, fk, far_is_fk_child in plan.steps:
            children_of.setdefault(near, []).append((far, fk, far_is_fk_child))

        total = 0.0
        starts = root_rows[rng.integers(0, root_rows.size, size=self.n_walks)]
        for start in starts:
            total += self._walk(plan.root, int(start), masks, children_of, rng)
        mean = total / self.n_walks
        return max(mean * root_rows.size, 1.0)

    def _walk(self, table, row, masks, children_of, rng):
        """Product of partner counts along one random walk (0 if it dies)."""
        weight = 1.0
        for far, fk, far_is_fk_child in children_of.get(table, []):
            if far_is_fk_child:
                adjacency = self.index.adjacency(fk.parent, fk.child)
            else:
                adjacency = self.index.adjacency(fk.child, fk.parent)
            partners = adjacency.partners(row)
            if partners.size == 0:
                return 0.0
            partner = int(partners[rng.integers(0, partners.size)])
            if not masks[far][partner]:
                return 0.0
            weight *= partners.size
            # Estimate the remaining selectivity/branching from the chosen
            # partner (classic random-walk join size estimation).
            weight *= self._walk(far, partner, masks, children_of, rng)
            if weight == 0.0:
                return 0.0
        return weight
