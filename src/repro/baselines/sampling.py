"""Naive random-sampling cardinality estimation.

Draws an independent Bernoulli sample from every base table of the
query, executes the query exactly on the samples and scales the count by
the inverse sampling rates.  Unbiased, but the variance explodes for
selective predicates and multi-way joins (most samples find no join
partner), which is exactly the failure mode behind the 49187 maximum
q-error the paper reports for random sampling in Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.engine.executor import Executor
from repro.engine.query import Query
from repro.engine.table import Database
from repro.estimator import CardinalityEstimator


class RandomSamplingEstimator(CardinalityEstimator):
    """Per-query independent table samples of ``sample_rows`` rows each."""

    def __init__(self, database, sample_rows=1_000, seed=0):
        self.database = database
        self.sample_rows = sample_rows
        self.seed = seed
        self._query_counter = 0

    def cardinality(self, query: Query):
        self._query_counter += 1
        rng = np.random.default_rng(self.seed + self._query_counter)
        sampled = Database(self.database.schema)
        scale = 1.0
        for name in query.tables:
            table = self.database.table(name)
            if table.n_rows > self.sample_rows:
                rows = rng.choice(table.n_rows, size=self.sample_rows, replace=False)
                sampled.add_table(table.select(np.sort(rows)))
                scale *= table.n_rows / self.sample_rows
            else:
                sampled.add_table(table)
        count = Executor(sampled).cardinality(query)
        return max(count * scale, 1.0)
