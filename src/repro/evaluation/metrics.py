"""Metrics used throughout the paper's evaluation."""

from __future__ import annotations

import numpy as np


def q_error(true_value, estimate):
    """The factor by which an estimate differs from the truth (>= 1).

    Both values are clamped to >= 1, the convention of the cardinality
    estimation literature (and the paper): only relative differences
    matter for optimizer decisions.
    """
    true_value = max(float(true_value), 1.0)
    estimate = max(float(estimate), 1.0)
    return max(true_value / estimate, estimate / true_value)


def q_errors(true_values, estimates):
    """Vectorized :func:`q_error` over a workload (1-D float array).

    Same clamping convention as the scalar form; used by the corrector's
    held-out gate and the feedback bench so both judge estimates with
    exactly the metric the paper reports.
    """
    true_values = np.maximum(np.asarray(true_values, dtype=float), 1.0)
    estimates = np.maximum(np.asarray(estimates, dtype=float), 1.0)
    return np.maximum(true_values / estimates, estimates / true_values)


def q_error_summary(true_values, estimates):
    """Median/p95/max (and mean) q-error over a workload, plus count."""
    errors = q_errors(true_values, estimates)
    if errors.size == 0:
        return {"count": 0, "median": float("nan"), "p95": float("nan"),
                "max": float("nan"), "mean": float("nan")}
    return {
        "count": int(errors.size),
        "median": float(np.median(errors)),
        "p95": float(np.percentile(errors, 95)),
        "max": float(errors.max()),
        "mean": float(errors.mean()),
    }


def relative_error(true_value, estimate):
    """``|true - est| / |true|``; ``est=None`` (no result) counts as 100%."""
    if true_value is None:
        return 0.0
    if estimate is None:
        return 1.0
    true_value = float(true_value)
    if true_value == 0.0:
        return 0.0 if float(estimate) == 0.0 else 1.0
    return abs(true_value - float(estimate)) / abs(true_value)


def average_relative_error(true_groups, estimated_groups):
    """Per-group relative error averaged over the *true* groups.

    Matches the paper's group-by evaluation: every true group missing
    from the estimate contributes an error of 100%.
    """
    if not isinstance(true_groups, dict):
        return relative_error(true_groups, estimated_groups)
    if not true_groups:
        return 0.0
    estimated_groups = estimated_groups or {}
    errors = [
        relative_error(value, estimated_groups.get(key))
        for key, value in true_groups.items()
        if value is not None
    ]
    return float(np.mean(errors)) if errors else 0.0


def percentiles(values, points=(50, 90, 95, 100)):
    """Named percentiles of a sample (100 = max), as an ordered dict."""
    values = np.asarray(list(values), dtype=float)
    labels = {50: "median", 90: "90th", 95: "95th", 100: "max"}
    out = {}
    for point in points:
        label = labels.get(point, f"p{point}")
        out[label] = float(np.percentile(values, point)) if values.size else float("nan")
    return out


def rmse(true_values, predictions):
    """Root mean squared error."""
    true_values = np.asarray(true_values, dtype=float)
    predictions = np.asarray(predictions, dtype=float)
    return float(np.sqrt(np.mean((true_values - predictions) ** 2)))
