"""Plain-text report tables for benchmark output.

Benchmarks print their results through :class:`Report` so the console
output mirrors the paper's tables/figure series row by row and can be
copied into EXPERIMENTS.md.
"""

from __future__ import annotations


class Report:
    """A titled, aligned text table."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add(self, *values):
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append([_format(v) for v in values])
        return self

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} ==", header, rule]
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self):
        print()
        print(self.render())
        return self


def _format(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1_000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
