"""Terminal charts for benchmark output.

The paper's evaluation is figure-heavy (bar charts per query, series
over swept parameters).  The benchmarks print their numbers through
:class:`~repro.evaluation.report.Report` tables *and* through these
plain-text charts, so the regenerated figures can be compared to the
paper's at a glance without a plotting stack.

Two chart types cover every figure:

- :func:`bar_chart` -- grouped horizontal bars (Figures 1, 7, 9, 10,
  11, 13), with optional log scaling for q-error style data;
- :func:`series_chart` -- x/y line series rendered on a character grid
  (Figure 8's parameter sweeps, Figure 12's cumulative times).
"""

from __future__ import annotations

import math

_BAR_GLYPHS = "#*o+x%@"


def _scaled(value, maximum, width, log):
    if value is None or value != value:  # None or NaN
        return 0
    if log:
        value = math.log10(max(value, 1.0))
        maximum = math.log10(max(maximum, 1.0))
    if maximum <= 0:
        return 0
    return max(int(round(width * value / maximum)), 0)


def bar_chart(title, labels, series, width=50, log=False, unit=""):
    """Grouped horizontal bar chart as a string.

    ``series`` maps series name to a list of values aligned with
    ``labels``.  ``log=True`` scales bar lengths by log10 (values are
    clamped to >= 1), the right scale for q-errors.  ``None``/NaN values
    render as missing ("no result" bars in Figure 10).
    """
    series = {name: list(values) for name, values in series.items()}
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} has {len(values)} values, "
                             f"expected {len(labels)}")
    finite = [
        v for values in series.values() for v in values
        if v is not None and v == v
    ]
    maximum = max(finite, default=1.0)
    label_width = max((len(str(label)) for label in labels), default=0)
    name_width = max((len(name) for name in series), default=0)
    lines = [f"== {title} =="]
    if log:
        lines[-1] += "  (log scale)"
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            value = values[i]
            glyph = _BAR_GLYPHS[j % len(_BAR_GLYPHS)]
            prefix = f"{str(label):>{label_width}} {name:<{name_width}} |"
            if value is None or value != value:
                lines.append(f"{prefix} (no result)")
                continue
            bar = glyph * _scaled(value, maximum, width, log)
            shown = f"{value:,.3g}{unit}"
            lines.append(f"{prefix}{bar} {shown}")
        if len(series) > 1 and i < len(labels) - 1:
            lines.append("")
    return "\n".join(lines)


def series_chart(title, x_values, series, width=60, height=14,
                 x_label="", y_label=""):
    """Character-grid line chart for one or more y-series over shared x.

    Marker per series comes from the same glyph cycle as
    :func:`bar_chart`; overlapping points show the later series' glyph.
    """
    series = {name: list(values) for name, values in series.items()}
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    ys = [
        v for values in series.values() for v in values
        if v is not None and v == v
    ]
    if not ys:
        return f"== {title} ==\n(no data)"
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for j, (name, values) in enumerate(series.items()):
        glyph = _BAR_GLYPHS[j % len(_BAR_GLYPHS)]
        for x, y in zip(x_values, values):
            if y is None or y != y:
                continue
            column = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = glyph

    lines = [f"== {title} =="]
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_max:>10.3g} +{''.join(grid[0])}")
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:>10.3g} +{''.join(grid[-1])}")
    axis = f"{x_min:<.3g}"
    axis = axis + " " * max(width - len(axis) - len(f"{x_max:.3g}"), 1)
    lines.append(" " * 12 + axis + f"{x_max:.3g}")
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "   ".join(
        f"{_BAR_GLYPHS[j % len(_BAR_GLYPHS)]} {name}"
        for j, name in enumerate(series)
    )
    lines.append("  legend: " + legend)
    return "\n".join(lines)
