"""Evaluation utilities: metrics and textual report tables.

The benchmark harness prints the same rows/series the paper's tables and
figures report: q-error percentiles (Table 1), per-query relative errors
(Figures 9/10), relative confidence-interval lengths (Figure 11),
cumulative training times (Figure 12) and RMSE/training-time pairs
(Figure 13).
"""

from repro.evaluation.metrics import (
    average_relative_error,
    percentiles,
    q_error,
    relative_error,
    rmse,
)
from repro.evaluation.plots import bar_chart, series_chart
from repro.evaluation.report import Report

__all__ = [
    "Report",
    "bar_chart",
    "series_chart",
    "average_relative_error",
    "percentiles",
    "q_error",
    "relative_error",
    "rmse",
]
