"""The serving front-end: in-process async facade and HTTP/JSON server.

Two entry points share the same machinery (registry -> per-model
coalescer -> batched session runner):

- :class:`AsyncDeepDB` -- the in-process facade.  ``await
  async_db.cardinality(sql)`` from any number of concurrent tasks;
  temporally-close requests coalesce into one
  ``cardinality_batch``/``answer_batch`` call.  **Admission control**
  caps the number of in-flight requests; beyond the cap submissions
  fail fast with :class:`ServerOverloadedError` instead of growing the
  queue without bound.
- :class:`ServingServer` -- a stdlib ``ThreadingHTTPServer`` speaking
  JSON, with a background event-loop thread hosting the coalescers.
  Handler threads submit through ``asyncio.run_coroutine_threadsafe``,
  so concurrent HTTP clients batch exactly like in-process tasks.

Endpoints::

    POST /query   {"sql": ..., "kind": "cardinality"|"approximate"|"plan",
                   "database": optional-model-name}
    POST /update  {"op": "insert"|"delete", "table": ..., "row": {...},
                   "database": optional-model-name}
                  or batched: {"ops": [{"op", "table", "row"}, ...]} --
                  the whole request flushes as one staged commit with
                  per-slot results
    GET  /stats   also carries "update_coalescers" (write-path batching)
                  and "drift_monitor" (when --drift-interval is set)
    GET  /stats   per-endpoint latency/throughput, coalescer occupancy,
                  cache and admission counters
    GET  /models  registered model names

Overload maps to HTTP 503, bad requests (unknown model, parse errors)
to 400, so clients can tell "back off" from "fix the query".
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from repro.serving.coalescer import MicroBatchCoalescer
from repro.serving.registry import ModelRegistry
from repro.serving.session import KINDS, Request


class ServerOverloadedError(RuntimeError):
    """Raised when admission control rejects a request (queue full)."""


class AsyncDeepDB:
    """Admission-controlled async facade over a model registry.

    Accepts either a :class:`ModelRegistry` or a bare
    :class:`~repro.deepdb.DeepDB` (registered as ``"default"``).  One
    micro-batching coalescer is kept per model; mixed request kinds
    (cardinality / approximate / plan) share a flush, and the session
    splits them onto the right batched entry points.
    """

    def __init__(self, models, max_batch_size=32, max_wait_ms=2.0,
                 max_inflight=1024, cache_size=256):
        if isinstance(models, ModelRegistry):
            self.registry = models
        else:
            self.registry = ModelRegistry()
            self.registry.register("default", models, cache_size=cache_size)
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_inflight = int(max_inflight)
        # name -> (session, coalescer): keyed on session *identity*, not
        # just name, because the registry's LRU pager can evict and
        # re-page a model -- the new page-in gets a fresh session, and a
        # coalescer still bound to the old session's run_batch would pin
        # the evicted model alive and serve it forever.
        self._coalescers: dict[str, tuple] = {}
        # Same, for the write path: concurrent inserts/deletes coalesce
        # into one session.apply_batch (one staged copy-on-write batch,
        # one generation bump per touched RSPN) instead of taking the
        # write lock once per tuple.
        self._update_coalescers: dict[str, tuple] = {}
        self._inflight = 0
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # Queries (coalesced)
    # ------------------------------------------------------------------
    async def cardinality(self, sql, database=None) -> float:
        """Coalesced cardinality estimate for one SQL query."""
        return await self.submit("cardinality", sql, database)

    async def approximate(self, sql, database=None):
        """Coalesced approximate answer (scalar or ``{group: value}``)."""
        return await self.submit("approximate", sql, database)

    async def plan(self, sql, database=None) -> dict:
        """Join order under batched DeepDB cardinalities (one prefetched
        ``cardinality_batch`` call per request, inside the flush)."""
        return await self.submit("plan", sql, database)

    async def submit(self, kind, sql, database=None):
        """Admission check, then enqueue on the model's coalescer."""
        if kind not in KINDS:
            raise ValueError(f"unknown request kind {kind!r}; expected one of {KINDS}")
        session = self.registry.session(database)
        if self._inflight >= self.max_inflight:
            self.rejected += 1
            raise ServerOverloadedError(
                f"{self._inflight} requests in flight (cap {self.max_inflight}); "
                "retry later"
            )
        self._inflight += 1
        self.admitted += 1
        try:
            return await self._coalescer(session).submit(Request(kind, sql))
        finally:
            self._inflight -= 1

    # ------------------------------------------------------------------
    # Updates (coalesced onto the batch write path)
    # ------------------------------------------------------------------
    async def insert(self, table, row, database=None) -> int:
        """Insert one tuple.  Returns the new generation (the
        result-cache invalidation token)."""
        return await self.update("insert", table, row, database)

    async def delete(self, table, row, database=None) -> int:
        """Delete one tuple (see :meth:`insert`)."""
        return await self.update("delete", table, row, database)

    async def update(self, op, table, row, database=None) -> int:
        """Enqueue one update on the model's *update* coalescer.

        Temporally-close updates flush as one
        :meth:`~repro.serving.session.ModelSession.apply_batch`: staged
        against copy-on-write shadows while readers keep answering,
        committed with one generation bump per touched RSPN, and shipped
        to shard workers as a leaf-delta patch.  A rejected op (unknown
        table/column) raises only for its own caller -- the per-slot
        coalescer contract."""
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown update op {op!r}")
        session = self.registry.session(database)
        return await self._update_coalescer(session).submit((op, table, row))

    async def update_batch(self, ops, database=None) -> list:
        """Apply a client-supplied batch of ``(op, table, row)`` triples.

        All ops join the same update coalescer (batchmates included),
        so one HTTP request carrying 100 ops costs one staged commit.
        Returns per-slot results: the post-commit generation, or the
        rejecting exception instance."""
        results = await asyncio.gather(
            *(self.update(op, table, row, database) for op, table, row in ops),
            return_exceptions=True,
        )
        return list(results)

    async def drain(self):
        """Flush every coalescer's pending requests immediately."""
        for _session, coalescer in list(self._coalescers.values()):
            await coalescer.drain()
        for _session, coalescer in list(self._update_coalescers.values()):
            await coalescer.drain()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _coalescer(self, session) -> MicroBatchCoalescer:
        entry = self._coalescers.get(session.name)
        if entry is None or entry[0] is not session:
            # First request for this model, or the pager swapped the
            # session (evict + re-page-in): bind a fresh coalescer to
            # the live session and drop any stale one (its in-flight
            # futures resolve against the old session, then it is GC'd).
            coalescer = MicroBatchCoalescer(
                session.run_batch,
                max_batch_size=self.max_batch_size,
                max_wait_ms=self.max_wait_ms,
            )
            self._coalescers[session.name] = (session, coalescer)
            return coalescer
        return entry[1]

    def _update_coalescer(self, session) -> MicroBatchCoalescer:
        entry = self._update_coalescers.get(session.name)
        if entry is None or entry[0] is not session:
            coalescer = MicroBatchCoalescer(
                session.apply_batch,
                max_batch_size=self.max_batch_size,
                max_wait_ms=self.max_wait_ms,
            )
            self._update_coalescers[session.name] = (session, coalescer)
            return coalescer
        return entry[1]

    def stats(self) -> dict:
        """Admission, coalescing, paging and per-model cache counters."""
        return {
            "admission": {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
            },
            # Copy first: HTTP handler threads read this while the
            # event-loop thread may be inserting a new model's coalescer.
            "coalescers": {
                name: entry[1].stats.snapshot()
                for name, entry in dict(self._coalescers).items()
            },
            "update_coalescers": {
                name: entry[1].stats.snapshot()
                for name, entry in dict(self._update_coalescers).items()
            },
            "registry": self.registry.stats(),
            "models": self.registry.snapshot(),
        }


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
class _EndpointStats:
    """Latency/throughput accumulator for one HTTP endpoint."""

    __slots__ = ("count", "errors", "total_seconds", "max_seconds")

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds, error=False):
        self.count += 1
        self.errors += int(error)
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def snapshot(self, uptime_seconds) -> dict:
        mean = self.total_seconds / self.count if self.count else 0.0
        throughput = self.count / uptime_seconds if uptime_seconds > 0 else 0.0
        return {
            "requests": self.count,
            "errors": self.errors,
            "mean_latency_ms": mean * 1e3,
            "max_latency_ms": self.max_seconds * 1e3,
            "throughput_rps": throughput,
        }


def _jsonable(result):
    """Session results -> JSON-encodable payloads (GROUP BY answers have
    tuple keys, which JSON objects cannot carry)."""
    if isinstance(result, dict) and result and all(
        isinstance(key, tuple) for key in result
    ):
        return {
            "groups": [
                {"key": list(key), "value": value}
                for key, value in sorted(result.items())
            ]
        }
    return {"value": result}


class _Handler(BaseHTTPRequestHandler):
    """JSON request handler; the owning :class:`ServingServer` is
    attached to the HTTP server object as ``serving``."""

    server_version = "repro-serving/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args):  # noqa: D102 - silence per-request noise
        pass

    @property
    def serving(self) -> "ServingServer":
        return self.server.serving

    # ------------------------------------------------------------------
    def do_GET(self):
        path = urlparse(self.path).path
        if path == "/stats":
            self._timed(path, self._get_stats)
        elif path == "/models":
            self._timed(path, lambda: (200, {"models": self.serving.registry.names()}))
        else:
            self._send(404, {"error": f"unknown endpoint {path!r}"})

    def do_POST(self):
        path = urlparse(self.path).path
        if path == "/query":
            self._timed(path, self._post_query)
        elif path == "/update":
            self._timed(path, self._post_update)
        else:
            # Drain the unread body so the keep-alive connection is not
            # desynced for the client's next request.
            self._discard_body()
            self._send(404, {"error": f"unknown endpoint {path!r}"})

    # ------------------------------------------------------------------
    def _get_stats(self):
        return 200, self.serving.stats()

    def _post_query(self):
        body = self._read_json()
        kind = body.get("kind", "cardinality")
        sql = body.get("sql")
        if not sql:
            return 400, {"error": "missing 'sql'"}
        start = time.perf_counter()
        result = self.serving.call(
            self.serving.async_db.submit(kind, sql, body.get("database"))
        )
        payload = _jsonable(result)
        payload["kind"] = kind
        payload["latency_ms"] = (time.perf_counter() - start) * 1e3
        return 200, payload

    def _post_update(self):
        body = self._read_json()
        if "ops" in body:
            return self._post_update_batch(body)
        op = body.get("op", "insert")
        if op not in ("insert", "delete"):
            return 400, {"error": f"unknown op {op!r}"}
        table, row = body.get("table"), body.get("row")
        if not table or not isinstance(row, dict):
            return 400, {"error": "need 'table' and a 'row' object"}
        method = getattr(self.serving.async_db, op)
        generation = self.serving.call(method(table, row, body.get("database")))
        return 200, {"ok": True, "generation": generation}

    def _post_update_batch(self, body):
        """Batched form: ``{"ops": [{"op","table","row"}, ...]}``.

        The whole request joins one update-coalescer flush (one staged
        commit, one generation bump per touched RSPN).  Per-slot errors
        come back in-band so one bad op never fails its batchmates."""
        ops = body.get("ops")
        if not isinstance(ops, list) or not ops:
            return 400, {"error": "'ops' must be a non-empty list"}
        triples = []
        for i, entry in enumerate(ops):
            if not isinstance(entry, dict):
                return 400, {"error": f"ops[{i}] must be an object"}
            op = entry.get("op", "insert")
            if op not in ("insert", "delete"):
                return 400, {"error": f"ops[{i}]: unknown op {op!r}"}
            table, row = entry.get("table"), entry.get("row")
            if not table or not isinstance(row, dict):
                return 400, {
                    "error": f"ops[{i}]: need 'table' and a 'row' object"
                }
            triples.append((op, table, row))
        results = self.serving.call(
            self.serving.async_db.update_batch(triples, body.get("database"))
        )
        slots = []
        generation = None
        applied = 0
        for result in results:
            if isinstance(result, BaseException):
                slots.append({"ok": False, "error": str(result)})
            else:
                applied += 1
                generation = result
                slots.append({"ok": True, "generation": result})
        return 200, {
            "ok": applied == len(slots),
            "applied": applied,
            "generation": generation,
            "results": slots,
        }

    # ------------------------------------------------------------------
    def _timed(self, path, handler):
        start = time.perf_counter()
        error = True
        try:
            status, payload = handler()
            error = status >= 400
        except ServerOverloadedError as exc:
            status, payload = 503, {"error": str(exc)}
        except (SyntaxError, ValueError, KeyError, LookupError) as exc:
            status, payload = 400, {"error": str(exc)}
        except TimeoutError:
            status, payload = 504, {"error": "request timed out"}
        except Exception as exc:  # noqa: BLE001 - surface, don't crash the thread
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self.serving.record(path, time.perf_counter() - start, error)
        self._send(status, payload)

    def _discard_body(self):
        length = int(self.headers.get("Content-Length", 0))
        if length:
            self.rfile.read(length)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise ValueError("request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _send(self, status, payload):
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)


class ServingServer:
    """HTTP front-end wiring: registry + coalescing loop + HTTP threads.

    The asyncio loop (and with it every coalescer flush) runs on one
    background thread; ``ThreadingHTTPServer`` handler threads submit
    coroutines into it and block on the result, so N concurrent HTTP
    clients become one batch exactly like N in-process tasks.
    """

    def __init__(self, registry, host="127.0.0.1", port=8080,
                 max_batch_size=32, max_wait_ms=2.0, max_inflight=1024,
                 request_timeout_s=60.0, drift_interval_s=None,
                 drift_config=None, drift_sample=2_000):
        self.registry = registry
        self.async_db = AsyncDeepDB(
            registry, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
            max_inflight=max_inflight,
        )
        self.request_timeout_s = request_timeout_s
        # Background drift repair (Section 5.2): check resident models
        # every drift_interval_s seconds, shadow-rebuild drifted RSPNs
        # off-lock and swap them in under the session write lock.
        self.drift_monitor = None
        if drift_interval_s is not None and drift_interval_s > 0:
            from repro.ingest.monitor import DriftMonitor

            self.drift_monitor = DriftMonitor(
                registry, config=drift_config,
                interval_s=drift_interval_s, sample=drift_sample,
            ).start()
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-serving-loop", daemon=True
        )
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.serving = self
        self._http_thread = None
        self._endpoints: dict[str, _EndpointStats] = {}
        self._stats_lock = threading.Lock()
        self._started_at = time.perf_counter()
        self._loop_thread.start()

    def _run_loop(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._http.server_address

    @property
    def url(self):
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self):
        """Serve in a background thread (returns immediately)."""
        if self._http_thread is None:
            self._http_thread = threading.Thread(
                target=self._http.serve_forever, name="repro-serving-http",
                daemon=True,
            )
            self._http_thread.start()
        return self

    def serve_forever(self):
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._http.serve_forever()

    def close(self):
        """Stop the HTTP server and the coalescing loop; idempotent."""
        if self._loop.is_closed():
            return
        if self.drift_monitor is not None:
            self.drift_monitor.stop()
            self.drift_monitor = None
        self._http.shutdown()
        self._http.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5)
            self._http_thread = None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=5)
        if not self._loop_thread.is_alive():
            # Release the loop's selector/self-pipe fds; skipping this
            # leaks an "unclosed event loop" ResourceWarning at GC (the
            # CI spawn leg promotes those to failures).
            self._loop.close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Cross-thread plumbing and stats
    # ------------------------------------------------------------------
    def call(self, coroutine):
        """Run ``coroutine`` on the serving loop, blocking this thread."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=self.request_timeout_s)

    def record(self, path, seconds, error):
        with self._stats_lock:
            stats = self._endpoints.get(path)
            if stats is None:
                stats = self._endpoints[path] = _EndpointStats()
            stats.record(seconds, error)

    def stats(self) -> dict:
        uptime = time.perf_counter() - self._started_at
        with self._stats_lock:
            endpoints = {
                path: stats.snapshot(uptime)
                for path, stats in self._endpoints.items()
            }
        snap = {
            "uptime_s": uptime,
            "endpoints": endpoints,
            "serving": self.async_db.stats(),
        }
        if self.drift_monitor is not None:
            snap["drift_monitor"] = self.drift_monitor.stats()
        return snap


def start_server(registry, host="127.0.0.1", port=0, **kwargs) -> ServingServer:
    """Create and start a :class:`ServingServer` in the background.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.address`` / ``server.url``.  Use as a context manager for
    deterministic shutdown.
    """
    return ServingServer(registry, host=host, port=port, **kwargs).start()
