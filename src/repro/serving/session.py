"""Serving sessions: snapshot reads, update exclusion and result caching.

A :class:`ModelSession` wraps one named :class:`~repro.deepdb.DeepDB`
instance with the state the serving layer needs around it:

- a **read-write lock** -- a flushed batch answers under one shared
  read acquisition (one consistent snapshot of the model), while
  ``insert``/``delete`` maintenance takes the exclusive write side, so
  queries never observe a half-applied update;
- an **LRU result cache** keyed on ``(kind, normalized SQL text)``.
  Invalidation is not guessed per update path: the cache records the
  model's :attr:`~repro.deepdb.DeepDB.generation` and drops all entries
  as soon as the current generation differs (every insert/delete and
  any out-of-band maintenance moves the counter);
- the **batch runner** (:meth:`ModelSession.run_batch`) the coalescer
  flushes into: it parses each request individually (a parse error
  fails only that request), deduplicates identical request texts,
  serves cache hits, and answers the rest through the batched estimator
  protocol -- ``cardinality_batch`` / ``answer_batch`` and the
  prefetching plan oracle.  When the model carries a sharded evaluator
  (``DeepDB(shards=N)`` / ``repro serve --shards N``), each flushed
  batch's compiled sweeps fan out across the evaluator's worker
  processes -- the coalescer builds the batch, the pool executes it.
  Under the default ``shm`` transport each flush is published once
  into a shared-memory segment the workers slice zero-copy;
  :meth:`ModelSession.snapshot` surfaces the transport name plus its
  bytes-shipped/publish-overhead counters under ``sharding`` so
  ``GET /stats`` exposes per-transport cost live.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

KINDS = ("cardinality", "approximate", "plan")

_STRING_LITERAL = re.compile(r"('[^']*')")


def normalize_sql(sql: str) -> str:
    """Cache key normalization: collapse whitespace runs *outside*
    string literals, drop a trailing semicolon.  Literal content is
    preserved verbatim (``'EU  X'`` and ``'EU X'`` are different
    values) and identifier case is preserved (identifiers are
    case-sensitive in the supported subset)."""
    parts = _STRING_LITERAL.split(str(sql))
    for i in range(0, len(parts), 2):  # even slots are outside literals
        parts[i] = re.sub(r"\s+", " ", parts[i])
    return "".join(parts).strip().rstrip(";").strip()


def _copy_result(value):
    """Results are handed out by value: mutable answers (GROUP BY
    dicts, plan dicts -- both flat, with scalar values) are shallow-
    copied so a client mutating its answer cannot corrupt the cache or
    a batchmate's result."""
    return dict(value) if isinstance(value, dict) else value


@dataclass(frozen=True)
class Request:
    """One client request: what to compute (``kind``) for which SQL."""

    kind: str
    sql: str


class ReadWriteLock:
    """A writer-preferring read-write lock (threading-based).

    Readers share the lock; a writer excludes readers and other
    writers.  Arriving writers block *new* readers so maintenance is
    never starved by a steady query stream.
    """

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self):
        with self._condition:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._condition:
                self._writer = False
                self._condition.notify_all()


class ResultCache:
    """Thread-safe LRU cache with hit/miss/eviction counters.

    ``maxsize <= 0`` disables caching entirely (every lookup misses,
    puts are dropped) -- benchmarks use that to measure pure coalescing.
    """

    def __init__(self, maxsize=256):
        self.maxsize = int(maxsize)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key):
        """``(hit, value)`` -- two-tuple so cached falsy values work."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return True, self._entries[key]
            self.misses += 1
            return False, None

    def put(self, key, value):
        if self.maxsize <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self, invalidated=False):
        with self._lock:
            self._entries.clear()
            if invalidated:
                self.invalidations += 1

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


class ModelSession:
    """One named, servable DeepDB model (see module docstring)."""

    def __init__(self, name, deepdb, cache_size=256):
        self.name = name
        self.deepdb = deepdb
        self._rwlock = ReadWriteLock()
        # Serializes *writers* (batch staging + commit).  Staging runs
        # under this lock only -- concurrent readers keep sweeping the
        # live tree -- and the exclusive write lock is taken just for
        # the O(touched-nodes) pointer-swap commit.
        self._ingest_lock = threading.Lock()
        self._cache = ResultCache(cache_size)
        self._generation_lock = threading.Lock()
        self._cache_generation = deepdb.generation
        # Set by ModelRegistry._page_in for store-backed models: the
        # store path, resident blob bytes, cold-start ns and the
        # generation at page-in (the pager's dirty check compares
        # against it).  None for models registered directly.
        self.paging = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run_batch(self, requests):
        """Answer a batch of :class:`Request`s under one snapshot read.

        Returns one result per request, positionally; a failed request's
        slot holds the raising ``Exception`` instance (the coalescer's
        per-slot error contract), so one bad query never fails its
        batchmates.  Identical normalized requests within the batch are
        computed once; every slot (and the cache) receives its own copy
        of mutable answers.
        """
        results = [None] * len(requests)
        with self._rwlock.read():
            cache = self._checked_cache()
            todo: dict[str, OrderedDict] = {kind: OrderedDict() for kind in KINDS}
            for i, request in enumerate(requests):
                kind = getattr(request, "kind", None)
                if kind not in KINDS:
                    results[i] = ValueError(
                        f"unknown request kind {kind!r}; expected one of {KINDS}"
                    )
                    continue
                key = (kind, normalize_sql(request.sql))
                hit, value = cache.get(key)
                if hit:
                    results[i] = _copy_result(value)
                else:
                    todo[kind].setdefault(key, []).append(i)
            self._answer_batched(
                todo["cardinality"], results, cache,
                lambda queries: [
                    float(v) for v in self.deepdb.cardinality_batch(queries)
                ],
            )
            self._answer_batched(
                todo["approximate"], results, cache,
                self.deepdb.approximate_batch,
            )
            self._answer_plans(todo["plan"], results, cache)
        return results

    def run_one(self, request):
        """Serial convenience wrapper over :meth:`run_batch`; raises."""
        result = self.run_batch([request])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def _answer_batched(self, pending, results, cache, batch_fn):
        """Parse, batch-evaluate and distribute one kind's requests.

        ``pending`` maps cache key -> indices sharing that key; parsing
        happens per key with per-slot error capture, evaluation happens
        in **one** batched call for every key that parsed.
        """
        if not pending:
            return
        parsed, keys = [], []
        for key, indices in pending.items():
            try:
                parsed.append(self.deepdb.parse(key[1]))
                keys.append(key)
            except Exception as error:
                for i in indices:
                    results[i] = error
        if not parsed:
            return
        try:
            values = batch_fn(parsed)
        except Exception as error:  # whole-batch evaluation failure
            for key in keys:
                for i in pending[key]:
                    results[i] = error
            return
        for key, value in zip(keys, values):
            cache.put(key, _copy_result(value))
            for i in pending[key]:
                results[i] = _copy_result(value)

    def _answer_plans(self, pending, results, cache):
        """Plan requests: each is already one batched prefetch internally
        (``SubqueryCardinalities`` answers every connected subset's
        sub-query in a single ``cardinality_batch`` call)."""
        for key, indices in pending.items():
            try:
                plan, cost, oracle = self.deepdb.plan(key[1])
                value = {
                    "plan": plan.describe(),
                    "estimated_cost": float(cost),
                    "subqueries": oracle.calls,
                    "batch_calls": oracle.batch_calls,
                }
            except Exception as error:
                for i in indices:
                    results[i] = error
                continue
            cache.put(key, _copy_result(value))
            for i in indices:
                results[i] = _copy_result(value)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, table, row):
        """Apply one insert (a one-op :meth:`apply_batch`)."""
        result = self.apply_batch([("insert", table, row)])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def delete(self, table, row):
        """Apply one delete (a one-op :meth:`apply_batch`)."""
        result = self.apply_batch([("delete", table, row)])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def apply_batch(self, ops):
        """Apply a batch of ``(op, table, row)`` updates.

        The streaming-ingest write path: the expensive part -- encoding,
        routing and histogram arithmetic -- is *staged* against
        copy-on-write shadows under the ingest lock only, so readers
        keep answering from one consistent snapshot throughout.  The
        exclusive write lock is held just for the commit: O(touched
        nodes) pointer swaps plus one generation bump per touched RSPN
        (never one per tuple).  Returns per-slot results: the
        post-commit generation for applied ops, the validation
        ``Exception`` for rejected ones (the coalescer's contract).
        """
        with self._ingest_lock:
            pending = self.deepdb.stage_update_batch(ops)
            with self._rwlock.write():
                return self.deepdb.commit_update_batch(pending)

    @contextmanager
    def write_lock(self):
        """Exclusive access for out-of-band maintenance (drift repair
        swaps, bulk absorbs).  Takes the ingest lock first so a staged
        batch can never commit against a tree that was swapped under
        it."""
        with self._ingest_lock:
            with self._rwlock.write():
                yield

    def invalidate(self):
        """Explicitly drop all cached results (normally unnecessary:
        the generation check does this automatically)."""
        self._cache.clear(invalidated=True)
        plan_cache = getattr(self.deepdb, "plan_cache", None)
        if plan_cache is not None:
            plan_cache.invalidate()

    def _checked_cache(self):
        """The result cache, emptied first if the model's generation
        moved since the last look -- the single invalidation hook.
        The plan cache invalidates alongside it: plans were chosen
        under the old generation's estimates."""
        generation = self.deepdb.generation
        with self._generation_lock:
            if generation != self._cache_generation:
                self._cache.clear(invalidated=True)
                plan_cache = getattr(self.deepdb, "plan_cache", None)
                if plan_cache is not None:
                    plan_cache.invalidate()
                self._cache_generation = generation
        return self._cache

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Model state for ``GET /stats``.  When a sharded evaluator is
        attached, ``sharding`` carries its counters including the
        ``transport`` name, the per-transport ``transport_stats``
        (bytes shipped, publish seconds, live segment count) and the
        ``autotune`` record explaining the serial/sharded crossover.
        ``kernel`` reports the active sweep kernel plus aggregate sweep
        telemetry (per-sweep ns, arena bytes) across the ensemble.
        ``feedback`` carries the workload-feedback counters (logged /
        applied / gated_out, trainer state) when the model runs with a
        corrector."""
        snap = {
            "name": self.name,
            "generation": self.deepdb.generation,
            "cache": self._cache.snapshot(),
        }
        plan_cache = getattr(self.deepdb, "plan_cache", None)
        if plan_cache is not None:
            snap["plan_cache"] = plan_cache.snapshot()
        if self.paging is not None:
            snap["resident"] = True
            snap["paging"] = dict(self.paging)
        kernel_stats = getattr(self.deepdb, "kernel_stats", None)
        if kernel_stats is not None:
            snap["kernel"] = kernel_stats()
        evaluator = getattr(self.deepdb, "evaluator", None)
        if evaluator is not None:
            snap["sharding"] = evaluator.stats()
        feedback_stats = getattr(self.deepdb, "feedback_stats", None)
        if feedback_stats is not None:
            feedback = feedback_stats()
            if feedback is not None:
                snap["feedback"] = feedback
        return snap

    def __repr__(self):
        return (f"ModelSession({self.name!r}, "
                f"generation={self.deepdb.generation})")
