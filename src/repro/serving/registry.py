"""Model registry: named DeepDB instances routed by database name.

One serving process can hold several learned models (one per database,
or several ensembles of one database under different names).  The
registry maps names to :class:`~repro.serving.session.ModelSession`
objects; every front-end request carries an optional ``database`` field
that routes it to the session of that name.  A registry holding exactly
one model serves unnamed requests from it, so single-model deployments
need no routing ceremony.
"""

from __future__ import annotations

import threading

from repro.serving.session import ModelSession


class ModelRegistry:
    """Thread-safe name -> :class:`ModelSession` mapping."""

    def __init__(self):
        self._sessions: dict[str, ModelSession] = {}
        self._lock = threading.Lock()

    def register(self, name, deepdb, cache_size=256) -> ModelSession:
        """Wrap ``deepdb`` in a serving session registered under ``name``.

        One session per model: registering the same underlying ensemble
        under a second name is refused, because each session guards its
        model with its own read-write lock -- two sessions over one
        ensemble would let a write through one bypass the other's
        snapshot reads.
        """
        with self._lock:
            if name in self._sessions:
                raise ValueError(f"model {name!r} is already registered")
            for existing in self._sessions.values():
                if existing.deepdb.ensemble is deepdb.ensemble:
                    raise ValueError(
                        f"this model is already registered as "
                        f"{existing.name!r}; route by that name (one "
                        "session per model keeps snapshot isolation)"
                    )
            session = ModelSession(name, deepdb, cache_size=cache_size)
            self._sessions[name] = session
            return session

    def unregister(self, name) -> ModelSession:
        with self._lock:
            try:
                return self._sessions.pop(name)
            except KeyError:
                raise LookupError(
                    f"no model named {name!r}; registered: {sorted(self._sessions)}"
                ) from None

    def session(self, name=None) -> ModelSession:
        """The session for ``name``; ``None`` routes to the only model."""
        with self._lock:
            if name is None:
                if len(self._sessions) == 1:
                    return next(iter(self._sessions.values()))
                raise LookupError(
                    f"registry holds {len(self._sessions)} models; name one "
                    f"of {sorted(self._sessions)}"
                )
            try:
                return self._sessions[name]
            except KeyError:
                raise LookupError(
                    f"no model named {name!r}; registered: {sorted(self._sessions)}"
                ) from None

    def names(self) -> list:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self):
        with self._lock:
            return len(self._sessions)

    def __contains__(self, name):
        with self._lock:
            return name in self._sessions

    def snapshot(self) -> dict:
        """Per-model serving state (generation, cache counters)."""
        with self._lock:
            sessions = list(self._sessions.values())
        return {session.name: session.snapshot() for session in sessions}
