"""Model registry: named DeepDB instances routed by database name.

One serving process can hold several learned models (one per database,
or several ensembles of one database under different names).  The
registry maps names to :class:`~repro.serving.session.ModelSession`
objects; every front-end request carries an optional ``database`` field
that routes it to the session of that name.  A registry holding exactly
one model serves unnamed requests from it, so single-model deployments
need no routing ceremony.

**Multi-tenant paging.**  Models can also be registered *by store file*
(:meth:`ModelRegistry.register_store`): registration only reads the
store header (O(bytes of metadata)), and the model pages in lazily on
its first query -- ``open_store`` + mmap + evaluation-twin import,
millisecond-scale.  Under a byte budget (``memory_budget_bytes``) the
registry runs an LRU pager: when paged-in blob bytes exceed the budget,
the least-recently-used paged model is evicted -- its session and
mapping are dropped but the catalog entry stays, so the next query for
that name transparently pages it back in.  Models mutated since page-in
(generation moved: inserts/deletes thawed the mapped tree) are **dirty**
and never evicted, because their in-memory state is newer than the
store file; the ``dirty_pins`` counter surfaces how many are pinned.
Paging counters (``page_ins``, ``evictions``, ``resident_bytes``,
cold-start ns) are exported by :meth:`stats` and ride ``GET /stats``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.serving.session import ModelSession


class ModelRegistry:
    """Thread-safe name -> :class:`ModelSession` mapping with LRU paging."""

    def __init__(self, memory_budget_bytes=None):
        # Insertion/access order is LRU order: oldest first.
        self._sessions: OrderedDict[str, ModelSession] = OrderedDict()
        # name -> registration record for store-backed models (kept
        # across evictions; this is the catalog the pager reloads from).
        self._stores: dict[str, dict] = {}
        self._lock = threading.Lock()
        self.memory_budget_bytes = (
            None if memory_budget_bytes is None else int(memory_budget_bytes)
        )
        self.page_ins = 0
        self.evictions = 0
        self.dirty_pins = 0
        self.resident_bytes = 0
        self._cold_start_ns: list[int] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name, deepdb, cache_size=256) -> ModelSession:
        """Wrap ``deepdb`` in a serving session registered under ``name``.

        One session per model: registering the same underlying ensemble
        under a second name is refused, because each session guards its
        model with its own read-write lock -- two sessions over one
        ensemble would let a write through one bypass the other's
        snapshot reads.  Sessions registered this way are pinned in
        memory (the pager only evicts store-backed models it can
        reload).
        """
        with self._lock:
            self._check_name_free(name)
            for existing in self._sessions.values():
                if existing.deepdb.ensemble is deepdb.ensemble:
                    raise ValueError(
                        f"this model is already registered as "
                        f"{existing.name!r}; route by that name (one "
                        "session per model keeps snapshot isolation)"
                    )
            session = ModelSession(name, deepdb, cache_size=cache_size)
            self._sessions[name] = session
            return session

    def register_store(self, name, path, database, cache_size=256,
                       shards=None, transport=None, kernel=None,
                       corrector=None, plan_cache=True) -> dict:
        """Register a model by store file without loading it.

        Validates the header (magic, CRC, version -- raising
        :class:`~repro.core.modelstore.ModelStoreError` on corruption)
        and records how to page the model in later; the blobs stay on
        disk until the first query routed at ``name``.  Returns the
        store catalog.
        """
        from repro.core.modelstore import read_catalog

        catalog = read_catalog(path)
        with self._lock:
            self._check_name_free(name)
            self._stores[name] = {
                "path": catalog["path"],
                "database": database,
                "cache_size": cache_size,
                "shards": shards,
                "transport": transport,
                "kernel": kernel,
                "corrector": corrector,
                "plan_cache": plan_cache,
                "catalog": catalog,
            }
            return catalog

    def _check_name_free(self, name):
        # Caller holds self._lock.
        if name in self._sessions or name in self._stores:
            raise ValueError(f"model {name!r} is already registered")

    def unregister(self, name) -> ModelSession | None:
        """Drop a model.  Returns its session (``None`` when the model
        was a store entry currently paged out)."""
        with self._lock:
            store_entry = self._stores.pop(name, None)
            session = self._sessions.pop(name, None)
            if session is None and store_entry is None:
                raise LookupError(
                    f"no model named {name!r}; registered: {self._names()}"
                )
            if session is not None and session.paging is not None:
                self._release(session)
            return session

    # ------------------------------------------------------------------
    # Routing (pages store-backed models in on demand)
    # ------------------------------------------------------------------
    def session(self, name=None) -> ModelSession:
        """The session for ``name``; ``None`` routes to the only model.

        Store-backed models page in here on first use (and after an
        eviction), then count as the most recently used."""
        with self._lock:
            if name is None:
                names = set(self._sessions) | set(self._stores)
                if len(names) != 1:
                    raise LookupError(
                        f"registry holds {len(names)} models; name one "
                        f"of {sorted(names)}"
                    )
                name = next(iter(names))
            session = self._sessions.get(name)
            if session is not None:
                self._sessions.move_to_end(name)
                return session
            entry = self._stores.get(name)
            if entry is None:
                raise LookupError(
                    f"no model named {name!r}; registered: {self._names()}"
                )
            return self._page_in(name, entry)

    def _page_in(self, name, entry) -> ModelSession:
        # Caller holds self._lock.  mmap + twin import is millisecond-
        # scale, so paging in under the lock keeps double-load races
        # impossible without a per-name latch.
        from repro.core import modelstore
        from repro.deepdb import DeepDB

        start = time.perf_counter_ns()
        deepdb = DeepDB.load(
            entry["path"], entry["database"], shards=entry["shards"],
            transport=entry["transport"], kernel=entry["kernel"],
            corrector=entry.get("corrector"),
            plan_cache=entry.get("plan_cache", True),
        )
        cold_start_ns = time.perf_counter_ns() - start
        session = ModelSession(name, deepdb, cache_size=entry["cache_size"])
        blob_bytes = deepdb.store.blob_bytes if deepdb.store else 0
        session.paging = {
            "store": entry["path"],
            "blob_bytes": blob_bytes,
            "cold_start_ns": cold_start_ns,
            "paged_generation": deepdb.generation,
            "dirty": False,
        }
        self._sessions[name] = session
        self._sessions.move_to_end(name)
        self.page_ins += 1
        self.resident_bytes += blob_bytes
        self._cold_start_ns.append(cold_start_ns)
        del self._cold_start_ns[:-256]
        self._evict_over_budget(keep=name)
        modelstore.sweep_pending()
        return session

    def _evict_over_budget(self, keep):
        # Caller holds self._lock.
        if self.memory_budget_bytes is None:
            return
        while self.resident_bytes > self.memory_budget_bytes:
            victim = None
            for name, session in self._sessions.items():  # oldest first
                if name == keep or session.paging is None:
                    continue
                if session.deepdb.generation != session.paging["paged_generation"]:
                    # Mutated since page-in: the mapped tree was thawed
                    # and the file is stale.  Evicting would serve old
                    # answers after re-page-in -- pin it instead.
                    if not session.paging["dirty"]:
                        session.paging["dirty"] = True
                        self.dirty_pins += 1
                    continue
                victim = name
                break
            if victim is None:
                return
            self._evict(victim)

    def _evict(self, name):
        # Caller holds self._lock.  The catalog entry in self._stores
        # survives, so the next query for this name pages it back in.
        session = self._sessions.pop(name)
        self.evictions += 1
        self._release(session)

    def _release(self, session):
        # Caller holds self._lock.  Transparent to concurrent queries:
        # a thread mid-run_batch holds its own session/tree references,
        # so we only close the *store* (refusing new loads); the actual
        # unmap is deferred until the last tree view dies with the
        # ensemble.
        self.resident_bytes -= session.paging["blob_bytes"]
        deepdb = session.deepdb
        store = deepdb.store
        if store is not None:
            deepdb._store = None
            store.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _names(self) -> list:
        # Caller holds self._lock.
        return sorted(set(self._sessions) | set(self._stores))

    def names(self) -> list:
        with self._lock:
            return self._names()

    def resident_sessions(self) -> list:
        """The currently paged-in sessions, without touching LRU order.

        The drift monitor walks this on its cadence: paged-out models
        cannot drift (their trees are on disk, untouched by updates), so
        they are deliberately *not* paged in just to be checked.
        """
        with self._lock:
            return list(self._sessions.values())

    def __len__(self):
        with self._lock:
            return len(set(self._sessions) | set(self._stores))

    def __contains__(self, name):
        with self._lock:
            return name in self._sessions or name in self._stores

    def snapshot(self) -> dict:
        """Per-model serving state (generation, cache counters).

        Store-backed models currently paged out appear as
        ``{"resident": False, ...}`` catalog stubs, so ``/stats`` shows
        the whole fleet, not just the resident slice."""
        with self._lock:
            sessions = list(self._sessions.values())
            paged_out = {
                name: entry for name, entry in self._stores.items()
                if name not in self._sessions
            }
        snap = {session.name: session.snapshot() for session in sessions}
        for name, entry in paged_out.items():
            snap[name] = {
                "name": name,
                "resident": False,
                "store": entry["path"],
                "blob_bytes": entry["catalog"]["blob_bytes"],
            }
        return snap

    def stats(self) -> dict:
        """Pager counters for ``/stats`` (see module docstring)."""
        with self._lock:
            cold = list(self._cold_start_ns)
            return {
                "models": len(set(self._sessions) | set(self._stores)),
                "resident": len(self._sessions),
                "memory_budget_bytes": self.memory_budget_bytes,
                "resident_bytes": self.resident_bytes,
                "page_ins": self.page_ins,
                "evictions": self.evictions,
                "dirty_pins": self.dirty_pins,
                "cold_start_ns_last": cold[-1] if cold else None,
                "cold_start_ns_mean": (sum(cold) / len(cold)) if cold else None,
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self):
        """Release every paged-in store mapping; idempotent.

        Directly-registered sessions (no backing store) are left
        untouched -- their models belong to the caller."""
        from repro.core import modelstore

        with self._lock:
            for name in [
                n for n, s in self._sessions.items() if s.paging is not None
            ]:
                session = self._sessions.pop(name)
                self._release(session)
        modelstore.sweep_pending()
