"""Async serving subsystem: the front-end of the batched kernels.

The compiled flat-array kernels (PR 1) and the batched estimator
protocol (PR 2) answer a batch of queries for barely more than one --
but concurrent independent clients each arrive holding a single query.
This package turns that concurrency into batch shape:

- :mod:`repro.serving.coalescer` -- micro-batching: accumulate
  concurrent requests, flush by ``max_batch_size`` or ``max_wait_ms``
  into one batched call, answer per-request futures;
- :mod:`repro.serving.session` -- one servable model: snapshot reads
  vs. exclusive updates (read-write lock) and a generation-checked LRU
  result cache;
- :mod:`repro.serving.registry` -- named models, routed by database
  name; store-backed models (:mod:`repro.core.modelstore`) register by
  file, page in lazily on first query (mmap, millisecond cold start)
  and are LRU-evicted under ``memory_budget_bytes`` -- one server can
  host a fleet of tenant models far larger than RAM;
- :mod:`repro.serving.server` -- the fronts: the in-process
  :class:`AsyncDeepDB` facade with admission control, and a stdlib
  HTTP/JSON server (``repro serve`` / ``repro client`` in the CLI).

Minimal in-process use::

    import asyncio
    from repro.serving import AsyncDeepDB

    async def client(async_db, sql):
        return await async_db.cardinality(sql)

    async def main(deepdb, queries):
        async_db = AsyncDeepDB(deepdb)          # coalesces concurrent tasks
        return await asyncio.gather(*(client(async_db, q) for q in queries))
"""

from repro.serving.coalescer import CoalescerStats, MicroBatchCoalescer
from repro.serving.registry import ModelRegistry
from repro.serving.server import (
    AsyncDeepDB,
    ServerOverloadedError,
    ServingServer,
    start_server,
)
from repro.serving.session import (
    ModelSession,
    ReadWriteLock,
    Request,
    ResultCache,
    normalize_sql,
)

__all__ = [
    "AsyncDeepDB",
    "CoalescerStats",
    "MicroBatchCoalescer",
    "ModelRegistry",
    "ModelSession",
    "ReadWriteLock",
    "Request",
    "ResultCache",
    "ServerOverloadedError",
    "ServingServer",
    "normalize_sql",
    "start_server",
]
