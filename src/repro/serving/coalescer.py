"""Micro-batching coalescer: concurrent requests into one batched call.

PR 1 made batched inference fast (one compiled bottom-up sweep answers a
whole batch of expectation sub-queries) and PR 2 put the
``cardinality_batch`` protocol under every consumer -- but a batch only
exists if *someone* forms it.  Independent concurrent clients each hold
one query; the coalescer is the component that turns their temporal
proximity into batch shape.

The mechanics follow the classic serving-system micro-batching design
(as in learned-component serving front-ends such as Clipper or the
inference servers discussed alongside Neo): requests submitted through
:meth:`MicroBatchCoalescer.submit` accumulate in a pending list and are
flushed into **one** call of the ``flush`` callable when either

- the pending list reaches ``max_batch_size`` (an early *size* flush), or
- ``max_wait_ms`` elapsed since the first pending request (a *timeout*
  flush with a partial batch).

Each submitter awaits its own future.  The flush callable receives the
list of pending items and returns one result per item, positionally;
returning an ``Exception`` instance in a slot fails only that slot's
future (used for per-request parse errors), while an exception *raised*
by the flush callable fails the whole batch.

The flush callable runs synchronously in the event-loop thread, so one
flush sees one consistent snapshot of the model (the serving session
additionally takes its read lock for the duration of the batch).
Results are therefore bit-identical to running the same flush callable
serially -- the compiled batch kernels guarantee batch-of-1 equals
batch-of-N.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass


@dataclass
class CoalescerStats:
    """Occupancy and flush-policy counters of one coalescer."""

    requests: int = 0
    flushes: int = 0
    size_flushes: int = 0
    timeout_flushes: int = 0
    drain_flushes: int = 0
    max_occupancy: int = 0
    failed_requests: int = 0
    flush_seconds: float = 0.0

    @property
    def mean_occupancy(self) -> float:
        """Requests per flush: the batching the coalescer achieved."""
        return self.requests / self.flushes if self.flushes else 0.0

    def record_flush(self, occupancy, reason, seconds, failures):
        self.requests += occupancy
        self.flushes += 1
        if reason == "size":
            self.size_flushes += 1
        elif reason == "timeout":
            self.timeout_flushes += 1
        else:
            self.drain_flushes += 1
        self.max_occupancy = max(self.max_occupancy, occupancy)
        self.failed_requests += failures
        self.flush_seconds += seconds

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "flushes": self.flushes,
            "size_flushes": self.size_flushes,
            "timeout_flushes": self.timeout_flushes,
            "drain_flushes": self.drain_flushes,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "failed_requests": self.failed_requests,
            "flush_seconds": self.flush_seconds,
        }


class MicroBatchCoalescer:
    """Accumulate concurrent submissions and flush them as one batch.

    ``flush`` is a callable ``(items) -> results`` with the per-slot
    error contract described in the module docstring.  All bookkeeping
    runs on the event loop, so no locking is needed; :meth:`submit` must
    be awaited from a running loop (cross-thread callers go through
    ``asyncio.run_coroutine_threadsafe``, as the HTTP front-end does).
    """

    def __init__(self, flush, max_batch_size=32, max_wait_ms=2.0):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._flush = flush
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.stats = CoalescerStats()
        self._pending = []  # [(item, future)]
        self._timer = None  # asyncio.TimerHandle for the deadline flush

    async def submit(self, item):
        """Enqueue ``item`` and await its result.

        Raises whatever exception the flush assigned to this item's
        slot (or raised for the whole batch).
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append((item, future))
        if len(self._pending) >= self.max_batch_size:
            self._flush_now("size")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_ms / 1000.0, self._flush_now, "timeout"
            )
        return await future

    async def drain(self):
        """Flush whatever is pending without waiting for the deadline."""
        self._flush_now("drain")

    @property
    def pending(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _flush_now(self, reason):
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        items = [item for item, _future in batch]
        start = time.perf_counter()
        try:
            results = list(self._flush(items))
            if len(results) != len(items):
                raise RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except Exception as error:  # whole-batch failure
            seconds = time.perf_counter() - start
            for _item, future in batch:
                if not future.done():
                    future.set_exception(error)
            self.stats.record_flush(len(batch), reason, seconds, len(batch))
            return
        seconds = time.perf_counter() - start
        failures = 0
        for (_item, future), result in zip(batch, results):
            if future.done():  # submitter cancelled / timed out
                continue
            if isinstance(result, Exception):
                failures += 1
                future.set_exception(result)
            else:
                future.set_result(result)
        self.stats.record_flush(len(batch), reason, seconds, failures)
