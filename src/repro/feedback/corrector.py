"""Residual correction of RSPN estimates, learned from the query log.

The RSPN is learned from data; the corrector learns from *queries*: on
labeled observations ``(query, rspn_estimate, realized)`` it fits the
log-space residual ``log(realized) - log(estimate)`` over the MSCN-style
feature vectors of :mod:`repro.feedback.featurize` and predicts a
multiplicative correction ``exp(residual)`` for future estimates.  Ridge
regression in closed form is the default (one ``d x d`` solve, no
hyper-parameter search); a tiny numpy MLP
(:class:`repro.baselines.nn.MLPRegressor`) is available for workloads
whose residual structure is not linear in the features.

A **confidence gate** keeps the corrector strictly opt-in per query: a
query the featurizer does not cover (unseen tables/columns/literals,
disjunctions, outer joins), or any query while the training set is
thinner than ``min_samples``, passes through with the raw RSPN estimate
untouched.  Predicted corrections are clipped to
``exp(+-max_log_correction)`` so one bad fit can never catapult an
estimate by more than a bounded factor.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.baselines.nn import MLPRegressor
from repro.feedback.featurize import QueryFeaturizer

_MODELS = ("ridge", "mlp")


def _log_clamped(values):
    return np.log(np.maximum(np.asarray(values, dtype=float), 1.0))


class ResidualCorrector:
    """Multiplicative estimate correction with a confidence gate."""

    def __init__(self, featurizer=None, model="ridge", ridge_lambda=1.0,
                 min_samples=24, max_log_correction=math.log(32.0),
                 hidden=16, epochs=80, lr=1e-2, seed=0):
        if model not in _MODELS:
            raise ValueError(f"unknown corrector model {model!r}")
        self.featurizer = featurizer
        self.model = model
        self.ridge_lambda = float(ridge_lambda)
        self.min_samples = int(min_samples)
        self.max_log_correction = float(max_log_correction)
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.seed = int(seed)
        self.n_trained = 0
        self._weights = None  # ridge: (width + 1,) with leading bias
        self._mlp = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @property
    def fitted(self):
        with self._lock:
            return self._fitted_locked()

    def _fitted_locked(self):
        return (self._weights is not None or self._mlp is not None) \
            and self.n_trained >= self.min_samples

    def fit(self, queries, estimates, realized):
        """Fit on labeled observations; returns the sample count used.

        Uncovered queries are dropped (they would be gated at inference
        anyway); if fewer than ``min_samples`` covered samples remain,
        the corrector stays unfitted and the gate stays shut.
        """
        if self.featurizer is None:
            return 0
        X, covered = self.featurizer.matrix(queries)
        y = (_log_clamped(realized) - _log_clamped(estimates))[covered]
        X = X[covered]
        finite = np.isfinite(y)
        X, y = X[finite], y[finite]
        if X.shape[0] < self.min_samples:
            with self._lock:
                self._weights = None
                self._mlp = None
                self.n_trained = int(X.shape[0])
            return int(X.shape[0])
        y = np.clip(y, -self.max_log_correction, self.max_log_correction)
        if self.model == "ridge":
            weights = self._fit_ridge(X, y)
            with self._lock:
                self._weights = weights
                self._mlp = None
                self.n_trained = int(X.shape[0])
        else:
            mlp = MLPRegressor(hidden=(self.hidden,), epochs=self.epochs,
                               lr=self.lr, seed=self.seed)
            mlp.fit(X, y)
            with self._lock:
                self._mlp = mlp
                self._weights = None
                self.n_trained = int(X.shape[0])
        return int(X.shape[0])

    def _fit_ridge(self, X, y):
        design = np.hstack([np.ones((X.shape[0], 1)), X])
        gram = design.T @ design
        # Do not shrink the bias: a constant residual (the RSPN under- or
        # over-estimating everything by a factor) must be fully learnable.
        penalty = np.full(design.shape[1], self.ridge_lambda)
        penalty[0] = 0.0
        gram += np.diag(penalty)
        return np.linalg.solve(gram, design.T @ y)

    def adopt(self, other):
        """Atomically take over another corrector's fitted state.

        The trainer fits a candidate clone off the serving path and only
        commits it (via this method) when it did not regress on the
        held-out slice.
        """
        with self._lock:
            self._weights = other._weights
            self._mlp = other._mlp
            self.n_trained = other.n_trained
            self.featurizer = other.featurizer or self.featurizer

    def clone_config(self):
        """Unfitted copy with the same featurizer and hyper-parameters."""
        return ResidualCorrector(
            featurizer=self.featurizer, model=self.model,
            ridge_lambda=self.ridge_lambda, min_samples=self.min_samples,
            max_log_correction=self.max_log_correction, hidden=self.hidden,
            epochs=self.epochs, lr=self.lr, seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def correct_batch(self, queries, estimates):
        """``(corrected, applied)`` for a batch of raw estimates.

        One featurization pass and one vectorized prediction; gated
        queries keep their raw estimate (``applied[i] == False``).
        ``corrected[i]`` is ``float`` either way.
        """
        values = [float(v) for v in estimates]
        applied = np.zeros(len(values), dtype=bool)
        with self._lock:
            weights, mlp = self._weights, self._mlp
            featurizer = self.featurizer
            fitted = self._fitted_locked()
        if not fitted or featurizer is None or not values:
            return values, applied
        X, covered = featurizer.matrix(queries)
        if not covered.any():
            return values, applied
        if weights is not None:
            design = np.hstack([np.ones((X.shape[0], 1)), X])
            log_correction = design @ weights
        else:
            log_correction = np.asarray(mlp.predict(X), dtype=float)
        log_correction = np.clip(
            log_correction, -self.max_log_correction, self.max_log_correction
        )
        factors = np.exp(log_correction)
        corrected = list(values)
        for i in np.flatnonzero(covered):
            corrected[i] = float(max(values[i] * factors[i], 1.0))
        return corrected, covered

    def correct(self, query, estimate):
        """``(corrected, applied)`` for a single estimate."""
        corrected, applied = self.correct_batch([query], [estimate])
        return corrected[0], bool(applied[0])

    # ------------------------------------------------------------------
    # Persistence (the model store's ``corrector`` section)
    # ------------------------------------------------------------------
    def to_document(self):
        document = {
            "version": 1,
            "model": self.model,
            "ridge_lambda": self.ridge_lambda,
            "min_samples": self.min_samples,
            "max_log_correction": self.max_log_correction,
            "hidden": self.hidden,
            "epochs": self.epochs,
            "lr": self.lr,
            "seed": self.seed,
            "n_trained": self.n_trained,
            "featurizer": None if self.featurizer is None
            else self.featurizer.to_document(),
            "weights": None if self._weights is None
            else [float(w) for w in self._weights],
            "mlp": self._mlp_document(),
        }
        return document

    def _mlp_document(self):
        mlp = self._mlp
        if mlp is None:
            return None
        return {
            "hidden": list(mlp.hidden),
            "impute": mlp._impute.tolist(),
            "x_mean": mlp._x_mean.tolist(),
            "x_scale": mlp._x_scale.tolist(),
            "y_mean": float(mlp._y_mean),
            "y_scale": float(mlp._y_scale),
            "layers": [
                {"weight": layer.weight.tolist(),
                 "bias": layer.bias.tolist(),
                 "relu": bool(layer.relu)}
                for layer in mlp._net.layers
            ],
        }

    @classmethod
    def from_document(cls, document, database=None):
        featurizer = None
        if document.get("featurizer") is not None:
            featurizer = QueryFeaturizer.from_document(
                document["featurizer"], database=database
            )
        corrector = cls(
            featurizer=featurizer,
            model=document.get("model", "ridge"),
            ridge_lambda=document.get("ridge_lambda", 1.0),
            min_samples=document.get("min_samples", 24),
            max_log_correction=document.get(
                "max_log_correction", math.log(32.0)
            ),
            hidden=document.get("hidden", 16),
            epochs=document.get("epochs", 80),
            lr=document.get("lr", 1e-2),
            seed=document.get("seed", 0),
        )
        corrector.n_trained = int(document.get("n_trained", 0))
        if document.get("weights") is not None:
            corrector._weights = np.asarray(document["weights"], dtype=float)
        if document.get("mlp") is not None:
            corrector._mlp = cls._mlp_from_document(document["mlp"])
        return corrector

    @staticmethod
    def _mlp_from_document(document):
        from repro.baselines.nn import MLP

        mlp = MLPRegressor(hidden=tuple(document["hidden"]))
        mlp._impute = np.asarray(document["impute"], dtype=float)
        mlp._x_mean = np.asarray(document["x_mean"], dtype=float)
        mlp._x_scale = np.asarray(document["x_scale"], dtype=float)
        mlp._y_mean = float(document["y_mean"])
        mlp._y_scale = float(document["y_scale"])
        sizes = [mlp._x_mean.shape[0]] + [len(s["bias"]) for s in document["layers"]]
        mlp._net = MLP(sizes, np.random.default_rng(0))
        for layer, spec in zip(mlp._net.layers, document["layers"]):
            layer.weight = np.asarray(spec["weight"], dtype=float)
            layer.bias = np.asarray(spec["bias"], dtype=float)
            layer.relu = bool(spec["relu"])
        return mlp

    def snapshot(self):
        with self._lock:
            return {
                "model": self.model,
                "fitted": self._fitted_locked(),
                "n_trained": self.n_trained,
                "min_samples": self.min_samples,
                "featurizer": None if self.featurizer is None
                else self.featurizer.signature(),
            }
