"""Retraining policy: when and how the corrector refits from the log.

The trainer watches labeled observations arrive in the
:class:`~repro.feedback.log.QueryLog` and refits the corrector **every N
new labels or on a model-generation bump** (updates change the RSPN, so
previously learned residuals are suspect).  Fitting happens on a
*candidate clone* evaluated against a deterministic held-out slice of
the log; the candidate is only committed (atomically, via
:meth:`ResidualCorrector.adopt`) when its held-out median q-error does
not regress against the raw RSPN estimates -- otherwise it is rolled
back and the gate stays exactly where it was.  With ``background=True``
the fit runs on a daemon thread off the serving loop; the serving path
only ever pays the cost of a counter increment.
"""

from __future__ import annotations

import threading

from repro.evaluation.metrics import q_error_summary


class FeedbackTrainer:
    """Drives corrector refits from the query log."""

    def __init__(self, corrector, log, every=64, holdout_fraction=0.25,
                 background=False, regression_tolerance=0.0):
        self.corrector = corrector
        self.log = log
        self.every = int(every)
        self.holdout_fraction = float(holdout_fraction)
        self.background = bool(background)
        self.regression_tolerance = float(regression_tolerance)
        self._lock = threading.Lock()
        self._training = False
        self._thread = None
        self._labels_seen = 0
        self._labels_at_last_train = 0
        self._generation = None
        self._trained_generation = None
        self.trainings = 0
        self.rollbacks = 0
        self.skipped_thin = 0
        self.trained_on = 0
        self.last_training = None

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def notify(self, generation=None):
        """One labeled observation arrived; retrain if the policy says so."""
        with self._lock:
            self._labels_seen += 1
            if generation is not None:
                self._generation = generation
            due = self._due_locked()
            if not due or self._training:
                return
            self._training = True
        if self.background:
            self._thread = threading.Thread(
                target=self._train_and_clear, daemon=True,
                name="feedback-trainer",
            )
            self._thread.start()
        else:
            self._train_and_clear()

    def _due_locked(self):
        if self._labels_seen - self._labels_at_last_train >= self.every:
            return True
        return (
            self._trained_generation is not None
            and self._generation is not None
            and self._generation != self._trained_generation
            and self._labels_seen > self._labels_at_last_train
        )

    def join(self, timeout=None):
        """Wait for an in-flight background fit (tests / clean shutdown)."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def _train_and_clear(self):
        try:
            self.train_now()
        finally:
            with self._lock:
                self._training = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_now(self):
        """Fit a candidate on the log and commit it if it holds up.

        Returns the training record (also kept as ``last_training``), or
        ``None`` when there are not even ``min_samples`` labeled
        observations to try with.
        """
        samples = [o for o in self.log.labeled() if o.query is not None]
        with self._lock:
            self._labels_at_last_train = self._labels_seen
            self._trained_generation = self._generation
        if len(samples) < self.corrector.min_samples:
            self.skipped_thin += 1
            return None
        stride = max(int(round(1.0 / self.holdout_fraction)), 2) \
            if self.holdout_fraction > 0 else None
        if stride is None:
            train, holdout = samples, []
        else:
            # Deterministic interleaved split: every stride-th sample is
            # held out, so replaying the same log reproduces the same fit.
            holdout = samples[stride - 1::stride]
            train = [o for i, o in enumerate(samples) if (i + 1) % stride]
        candidate = self.corrector.clone_config()
        used = candidate.fit(
            [o.query for o in train],
            [o.estimate for o in train],
            [o.realized for o in train],
        )
        record = {
            "samples": len(samples),
            "train": len(train),
            "holdout": len(holdout),
            "used": used,
            "committed": False,
            "holdout_q_error_before": None,
            "holdout_q_error_after": None,
        }
        if not candidate.fitted:
            self.skipped_thin += 1
            self.last_training = record
            return record
        committed = True
        if holdout:
            truths = [o.realized for o in holdout]
            raw = [o.estimate for o in holdout]
            corrected, _applied = candidate.correct_batch(
                [o.query for o in holdout], raw
            )
            before = q_error_summary(truths, raw)["median"]
            after = q_error_summary(truths, corrected)["median"]
            record["holdout_q_error_before"] = before
            record["holdout_q_error_after"] = after
            committed = after <= before * (1.0 + self.regression_tolerance)
        if committed:
            self.corrector.adopt(candidate)
            self.trainings += 1
            self.trained_on = used
        else:
            self.rollbacks += 1
        record["committed"] = committed
        self.last_training = record
        return record

    def stats(self):
        with self._lock:
            pending = self._labels_seen - self._labels_at_last_train
            labels_seen = self._labels_seen
        last = self.last_training or {}
        return {
            "every": self.every,
            "background": self.background,
            "labels_seen": labels_seen,
            "pending_labels": pending,
            "trainings": self.trainings,
            "rollbacks": self.rollbacks,
            "skipped_thin": self.skipped_thin,
            "trained_on": self.trained_on,
            "holdout_q_error_before": last.get("holdout_q_error_before"),
            "holdout_q_error_after": last.get("holdout_q_error_after"),
            "last_committed": last.get("committed"),
        }
