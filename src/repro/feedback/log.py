"""Bounded, thread-safe capture of the live query stream.

Every estimate the serving layer or the optimizer produces is an
*observation*: the query, what the RSPN said, and -- once the executor
has run the plan -- what reality said.  The :class:`QueryLog` keeps a
bounded in-memory window of those observations (old entries fall off, a
``dropped`` counter remembers how many), optionally spilling each record
as one JSONL line so a restarted server can :meth:`replay` its history
and retrain the corrector without re-executing anything.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Observation:
    """One logged estimate, optionally labeled with the realized count.

    ``realized`` is ``None`` for estimate-only traffic (serving answers
    whose true cardinality nobody ever computed); labeled observations
    additionally carry the executor's answer plus the execution latency
    and the model generation the estimate was computed under.
    """

    sql: str
    estimate: float
    realized: float | None = None
    latency_ns: int = 0
    generation: int = 0
    query: object = field(default=None, compare=False, repr=False)

    @property
    def labeled(self):
        return self.realized is not None

    def to_record(self):
        """JSON-serializable dict (the parsed query is not spilled)."""
        return {
            "sql": self.sql,
            "estimate": self.estimate,
            "realized": self.realized,
            "latency_ns": self.latency_ns,
            "generation": self.generation,
        }

    @classmethod
    def from_record(cls, record, parse=None):
        sql = record["sql"]
        query = parse(sql) if parse is not None else None
        realized = record.get("realized")
        return cls(
            sql=sql,
            estimate=float(record["estimate"]),
            realized=None if realized is None else float(realized),
            latency_ns=int(record.get("latency_ns", 0)),
            generation=int(record.get("generation", 0)),
            query=query,
        )


class QueryLog:
    """Bounded deque of :class:`Observation` with optional JSONL spill.

    Thread-safe: the serving layer records from coalescer flushes while
    a background trainer snapshots -- both take the same lock, and
    snapshots copy, so readers never see a half-appended window.
    """

    def __init__(self, maxlen=10_000, spill_path=None):
        self.maxlen = int(maxlen)
        self.spill_path = spill_path
        self._entries = deque(maxlen=self.maxlen)
        self._lock = threading.Lock()
        self._logged = 0
        self._labeled = 0
        self._spilled = 0
        self._spill_errors = 0

    def record(self, observation: Observation):
        """Append one observation (evicting the oldest when full)."""
        line = None
        if self.spill_path is not None:
            line = json.dumps(observation.to_record())
        with self._lock:
            self._entries.append(observation)
            self._logged += 1
            if observation.labeled:
                self._labeled += 1
            if line is not None:
                try:
                    with open(self.spill_path, "a") as handle:
                        handle.write(line + "\n")
                    self._spilled += 1
                except OSError:
                    self._spill_errors += 1  # logging must never fail serving

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def entries(self):
        """Snapshot of the current window (oldest first)."""
        with self._lock:
            return list(self._entries)

    def labeled(self):
        """Snapshot of the labeled observations in the window."""
        with self._lock:
            return [o for o in self._entries if o.labeled]

    @property
    def dropped(self):
        """Observations evicted from the bounded window so far."""
        with self._lock:
            return self._logged - len(self._entries)

    def snapshot(self):
        with self._lock:
            return {
                "logged": self._logged,
                "labeled": self._labeled,
                "window": len(self._entries),
                "dropped": self._logged - len(self._entries),
                "maxlen": self.maxlen,
                "spilled": self._spilled,
                "spill_errors": self._spill_errors,
            }

    @classmethod
    def replay(cls, path, parse=None, maxlen=10_000, spill_path=None):
        """Rebuild a log from a JSONL spill file.

        ``parse`` (sql -> Query) re-attaches parsed queries so replayed
        labeled observations are usable as corrector training samples;
        malformed lines are skipped (a crash mid-write truncates the
        last line, which must not poison the replay).
        """
        log = cls(maxlen=maxlen, spill_path=spill_path)
        try:
            with open(path) as handle:
                lines = handle.readlines()
        except OSError:
            return log
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                observation = Observation.from_record(record, parse=parse)
            except (ValueError, KeyError, TypeError):
                continue
            with log._lock:
                log._entries.append(observation)
                log._logged += 1
                if observation.labeled:
                    log._labeled += 1
        return log
