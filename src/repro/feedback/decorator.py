"""`CorrectedEstimator`: the feedback loop behind the estimator protocol.

A :class:`CorrectedEstimator` wraps any
:class:`~repro.estimator.CardinalityEstimator` and adds the workload
feedback loop around it, in one of three modes:

- ``off`` -- pure pass-through; estimates are returned untouched and
  nothing is logged.  Bit-identical to the unwrapped estimator.
- ``observe`` -- estimates are returned untouched (still bit-identical,
  asserted with ``==`` in the tests) but every one is recorded in the
  :class:`~repro.feedback.log.QueryLog`, and labeled observations feed
  the trainer.  The corrector learns without influencing anything.
- ``apply`` -- estimates additionally pass through the fitted
  :class:`~repro.feedback.corrector.ResidualCorrector`; gated queries
  (unseen schema elements, thin training) keep the raw estimate.

Batched end-to-end: ``cardinality_batch`` costs exactly one base
``cardinality_batch`` sweep plus one vectorized correction pass, so the
decorator never de-batches the compiled inference path underneath.
"""

from __future__ import annotations

from repro.estimator import CardinalityEstimator
from repro.feedback.corrector import ResidualCorrector
from repro.feedback.featurize import QueryFeaturizer
from repro.feedback.log import Observation, QueryLog
from repro.feedback.trainer import FeedbackTrainer

MODES = ("off", "observe", "apply")


class CorrectedEstimator(CardinalityEstimator):
    """Feedback-wrapping estimator decorator (see module docstring)."""

    def __init__(self, base=None, corrector=None, log=None, trainer=None,
                 mode="observe"):
        self.base = base
        self.corrector = corrector
        self.log = log if log is not None else QueryLog()
        self.trainer = trainer
        self.set_mode(mode)
        self.estimates = 0
        self.applied = 0
        self.gated_out = 0

    def set_mode(self, mode):
        if mode not in MODES:
            raise ValueError(
                f"unknown corrector mode {mode!r} (expected one of {MODES})"
            )
        self.mode = mode

    def bind(self, base, database=None):
        """Attach the wrapped estimator (and a database for featurizing)."""
        self.base = base
        if (self.corrector is not None and self.corrector.featurizer is None
                and database is not None):
            self.corrector.featurizer = QueryFeaturizer(database)
        return self

    def detach(self):
        """Drop the base reference (store unmap must not be pinned)."""
        self.base = None

    def adopt_corrector(self, corrector):
        """Swap in a restored corrector (keeps the trainer pointed at it)."""
        self.corrector = corrector
        if self.trainer is not None:
            self.trainer.corrector = corrector

    @property
    def generation(self):
        """The wrapped model's generation counter, when it has one."""
        generation = getattr(self.base, "generation", None)
        if generation is None:
            generation = getattr(
                getattr(self.base, "ensemble", None), "generation", None
            )
        return generation

    # ------------------------------------------------------------------
    # Estimator protocol
    # ------------------------------------------------------------------
    def cardinality(self, query) -> float:
        if self.mode == "off":
            return self.base.cardinality(query)
        return self.cardinality_batch([query])[0]

    def cardinality_batch(self, queries) -> list:
        if self.mode == "off":
            return self.base.cardinality_batch(queries)
        values = [float(v) for v in self.base.cardinality_batch(queries)]
        self.estimates += len(values)
        for query, value in zip(queries, values):
            self.log.record(Observation(
                sql=query.describe(), estimate=value, query=query,
            ))
        if self.mode == "observe":
            return values
        corrected, applied_mask = self.corrector.correct_batch(queries, values)
        n_applied = int(applied_mask.sum())
        self.applied += n_applied
        self.gated_out += len(values) - n_applied
        return corrected

    # ------------------------------------------------------------------
    # Feedback intake
    # ------------------------------------------------------------------
    def observe_execution(self, query, estimate, realized, latency_ns=0,
                          generation=0):
        """Record one *labeled* observation (estimate vs. reality).

        Called by ``optimize_and_execute`` after running a plan and by
        the CLI's ``--truth`` path.  In ``apply`` mode the supplied
        estimate has already been corrected, so the raw RSPN estimate is
        recomputed -- training on corrected values would chase the
        corrector's own output.
        """
        if self.mode == "off":
            return
        if self.mode == "apply" and self.base is not None:
            estimate = float(self.base.cardinality(query))
        self.log.record(Observation(
            sql=query.describe(),
            estimate=float(estimate),
            realized=float(realized),
            latency_ns=int(latency_ns),
            generation=int(generation),
            query=query,
        ))
        if self.trainer is not None:
            self.trainer.notify(generation=generation)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self):
        """Counters for ``DeepDB`` stats and the serving ``/stats``."""
        log = self.log.snapshot()
        trainer = self.trainer.stats() if self.trainer is not None else None
        return {
            "mode": self.mode,
            "estimates": self.estimates,
            "logged": log["logged"],
            "labeled": log["labeled"],
            "applied": self.applied,
            "gated_out": self.gated_out,
            "trained_on": trainer["trained_on"] if trainer else 0,
            "holdout_q_error_before":
                trainer["holdout_q_error_before"] if trainer else None,
            "holdout_q_error_after":
                trainer["holdout_q_error_after"] if trainer else None,
            "log": log,
            "corrector": None if self.corrector is None
            else self.corrector.snapshot(),
            "trainer": trainer,
        }


def make_feedback(base, spec, database=None, log=None, trainer_every=64,
                  background=False, spill_path=None):
    """Build (or bind) the feedback bundle behind ``DeepDB(corrector=...)``.

    ``spec`` is either a mode string from :data:`MODES` -- a fresh
    :class:`QueryLog`, :class:`ResidualCorrector` (featurized over
    ``database``) and :class:`FeedbackTrainer` are assembled -- or a
    prebuilt :class:`CorrectedEstimator`, which is bound to ``base`` and
    returned as-is so callers can share one log/corrector across models
    or supply custom hyper-parameters.
    """
    if isinstance(spec, CorrectedEstimator):
        return spec.bind(base, database)
    if not isinstance(spec, str):
        raise ValueError(
            f"corrector must be a mode string {MODES} or a "
            f"CorrectedEstimator, got {type(spec).__name__}"
        )
    featurizer = QueryFeaturizer(database) if database is not None else None
    corrector = ResidualCorrector(featurizer)
    log = log if log is not None else QueryLog(spill_path=spill_path)
    trainer = FeedbackTrainer(
        corrector, log, every=trainer_every, background=background
    )
    estimator = CorrectedEstimator(
        base, corrector=corrector, log=log, trainer=trainer, mode=spec
    )
    return estimator
