"""Deterministic MSCN-style featurization of parsed queries.

Follows the query encoding of Kipf et al. ("Learned Cardinalities" /
"Deep Sketches", see PAPERS.md): one-hot table and join-edge sets from
the schema plus per-column predicate encodings of ``(op,
normalized-literal)`` triples -- but *set-pooled into one fixed-width
vector* (min/max pooling per column block) instead of the per-element
MLPs of the full MCSN, because the residual corrector on top is a
closed-form ridge (or tiny MLP), not a deep net.

Two properties the corrector relies on, both locked down by tests:

- **deterministic** -- the layout is derived from sorted schema names
  and persisted verbatim in the corrector's store section, so the same
  query featurizes to the same vector across processes and restarts;
- **order-invariant** -- pooling uses min/max/sum, so equivalent
  predicate orderings (and ``BETWEEN`` vs. its ``>=``/``<=`` pair)
  produce bit-identical vectors.

Queries the layout cannot express (unknown tables/columns, literals
outside the trained vocabulary, disjunctions, outer joins) are *not
covered*: the confidence gate then falls back to the raw RSPN estimate
rather than extrapolating.
"""

from __future__ import annotations

import hashlib
import json
import zlib

import numpy as np

from repro.engine.query import INNER, Predicate

_RANGE_OPS = ("=", "<>", "<", "<=", ">", ">=")
# Per-column block: (flag, min, max) per range op, then IN as
# (flag, total set size, min, max), then the two NULL-test flags.
_IN_OFFSET = 3 * len(_RANGE_OPS)
_NULL_OFFSET = _IN_OFFSET + 4
_COLUMN_BLOCK = _NULL_OFFSET + 2
_IN_SIZE_SCALE = 32.0


class FeaturizationError(ValueError):
    """The query is outside the featurizer's layout (gate territory)."""


class QueryFeaturizer:
    """Fixed-width, order-invariant query vectors over one schema.

    Built either from a :class:`~repro.engine.table.Database` (layout
    derived from sorted schema names, bounds from the data) or from a
    persisted layout document (:meth:`from_document`) -- the latter is
    how a corrector restored from a model store keeps featurizing
    exactly as it did when it was trained, even if the data drifted.
    A database is still required to encode categorical literals.
    """

    def __init__(self, database=None, layout=None):
        if layout is None:
            if database is None:
                raise ValueError("QueryFeaturizer needs a database or a layout")
            layout = self._derive_layout(database)
        self.database = database
        self.layout = layout
        self.table_index = {n: i for i, n in enumerate(layout["tables"])}
        self.join_index = {n: i for i, n in enumerate(layout["joins"])}
        self.column_index = {}
        self.column_bounds = {}
        base = len(self.table_index) + len(self.join_index)
        for position, spec in enumerate(layout["columns"]):
            name = spec["name"]
            self.column_index[name] = base + position * _COLUMN_BLOCK
            low = float(spec["low"])
            high = float(spec["high"])
            self.column_bounds[name] = (low, max(high, low + 1.0))
        self.width = base + len(layout["columns"]) * _COLUMN_BLOCK

    @staticmethod
    def _derive_layout(database):
        schema = database.schema
        columns = []
        for name in sorted(database.tables):
            table = database.tables[name]
            for attr in sorted(table.schema.non_key_attributes,
                               key=lambda a: a.name):
                if attr.name.startswith("F__"):
                    continue
                values = table.columns[attr.name]
                finite = values[~np.isnan(values)]
                low = float(finite.min()) if finite.size else 0.0
                high = float(finite.max()) if finite.size else 1.0
                columns.append(
                    {"name": f"{name}.{attr.name}", "low": low, "high": high}
                )
        return {
            "tables": sorted(schema.tables),
            "joins": sorted(fk.name for fk in schema.foreign_keys),
            "columns": columns,
        }

    def to_document(self):
        return {"layout": self.layout}

    @classmethod
    def from_document(cls, document, database=None):
        return cls(database=database, layout=document["layout"])

    def signature(self, query=None):
        """Stable fingerprint of the layout (for stats / diagnostics).

        With ``query``, the fingerprint additionally digests the
        query's feature vector -- the *normalized query shape* the plan
        cache keys on: because :meth:`vector` is deterministic and
        order-invariant, permuted predicates and alternate spellings of
        the same shape share one signature, while any change to tables,
        join edges or normalized literal ranges changes it.  Raises
        :class:`FeaturizationError` for queries outside the layout.
        """
        blob = json.dumps(self.layout, sort_keys=True).encode()
        layout = f"{zlib.crc32(blob):08x}"
        if query is None:
            return layout
        digest = hashlib.blake2b(
            self.vector(query).tobytes(), digest_size=16
        ).hexdigest()
        return f"{layout}:{digest}"

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def covers(self, query):
        """True when :meth:`vector` can faithfully encode ``query``."""
        try:
            self.vector(query)
        except FeaturizationError:
            return False
        return True

    def matrix(self, queries):
        """``(X, covered)``: stacked vectors plus a coverage mask.

        Uncovered queries contribute an all-zero row with ``covered[i]
        == False`` -- the caller gates them out rather than dropping
        them, keeping row indices aligned with the input.
        """
        n = len(queries)
        X = np.zeros((n, self.width))
        covered = np.zeros(n, dtype=bool)
        for i, query in enumerate(queries):
            try:
                X[i] = self.vector(query)
            except FeaturizationError:
                continue
            covered[i] = True
        return X, covered

    def vector(self, query):
        """One fixed-width feature vector for a parsed query."""
        if self.database is None:
            raise FeaturizationError("featurizer has no database to encode with")
        if query.has_disjunctions:
            raise FeaturizationError("disjunctions are not featurizable")
        if query.group_by:
            raise FeaturizationError("group-by queries are not featurizable")
        if query.join_kind != INNER:
            raise FeaturizationError("outer joins are not featurizable")
        out = np.zeros(self.width)
        for name in query.tables:
            index = self.table_index.get(name)
            if index is None:
                raise FeaturizationError(f"unknown table {name!r}")
            out[index] = 1.0
        for fk in self.database.schema.edges_between(query.tables):
            index = self.join_index.get(fk.name)
            if index is None:
                raise FeaturizationError(f"unknown join edge {fk.name!r}")
            out[len(self.table_index) + index] = 1.0
        # Accumulate per (column, op) with order-insensitive reductions,
        # then write each touched block once.
        ranges = {}  # (column, op) -> [min, max]
        in_sets = {}  # column -> [total size, min, max]
        null_flags = set()  # (column, op)
        for predicate in query.predicates:
            self._accumulate(predicate, ranges, in_sets, null_flags)
        for (column, op), (lo, hi) in ranges.items():
            base = self.column_index[column] + 3 * _RANGE_OPS.index(op)
            out[base] = 1.0
            out[base + 1] = lo
            out[base + 2] = hi
        for column, (size, lo, hi) in in_sets.items():
            base = self.column_index[column] + _IN_OFFSET
            out[base] = 1.0
            out[base + 1] = min(size, _IN_SIZE_SCALE) / _IN_SIZE_SCALE
            out[base + 2] = lo
            out[base + 3] = hi
        for column, op in null_flags:
            offset = _NULL_OFFSET + (0 if op == "IS NULL" else 1)
            out[self.column_index[column] + offset] = 1.0
        return out

    def _accumulate(self, predicate, ranges, in_sets, null_flags):
        column = predicate.qualified_column
        if column not in self.column_index:
            raise FeaturizationError(f"unknown column {column!r}")
        if predicate.op == "BETWEEN":
            low, high = predicate.value
            for op, bound in ((">=", low), ("<=", high)):
                self._accumulate(
                    Predicate(predicate.table, predicate.column, op, bound),
                    ranges, in_sets, null_flags,
                )
            return
        if predicate.op in ("IS NULL", "IS NOT NULL"):
            null_flags.add((column, predicate.op))
            return
        table = self.database.table(predicate.table)
        if predicate.op == "IN":
            encoded = [
                table.encode_value(predicate.column, value)
                for value in predicate.value
            ]
            if any(e is None for e in encoded) or not encoded:
                raise FeaturizationError(
                    f"IN literal outside vocabulary for {column!r}"
                )
            values = sorted(self._normalize(column, e) for e in encoded)
            entry = in_sets.setdefault(
                column, [0.0, float("inf"), float("-inf")]
            )
            entry[0] += len(values)
            entry[1] = min(entry[1], values[0])
            entry[2] = max(entry[2], values[-1])
            return
        if predicate.op not in _RANGE_OPS:
            raise FeaturizationError(f"unsupported operator {predicate.op!r}")
        encoded = table.encode_value(predicate.column, predicate.value)
        if encoded is None:
            raise FeaturizationError(f"literal outside vocabulary for {column!r}")
        value = self._normalize(column, encoded)
        entry = ranges.setdefault((column, predicate.op), [value, value])
        entry[0] = min(entry[0], value)
        entry[1] = max(entry[1], value)

    def _normalize(self, column, encoded):
        low, high = self.column_bounds[column]
        # Clip so literals outside the trained value range (data drift)
        # stay bounded instead of blowing up the linear model.
        return float(np.clip((float(encoded) - low) / (high - low), -1.0, 2.0))
