"""Workload feedback: learn from the queries, not only from the data.

DeepDB's offline phase learns RSPNs from data alone; this package closes
the loop at runtime.  The serving layer and the optimizer already see a
real query stream with realized cardinalities -- here that stream is
captured (:mod:`~repro.feedback.log`), featurized MSCN-style
(:mod:`~repro.feedback.featurize`), and distilled into a residual
corrector (:mod:`~repro.feedback.corrector`) that multiplies future RSPN
estimates by a learned log-space correction, behind a confidence gate
that keeps it bit-identical to the raw estimator whenever it is not sure
(:mod:`~repro.feedback.decorator`).  Retraining is policy-driven and
runs off the serving loop (:mod:`~repro.feedback.trainer`).

Entry points: ``DeepDB(..., corrector="observe"|"apply")``, the CLI's
``--corrector`` flag, or wrapping any estimator directly in a
:class:`CorrectedEstimator`.
"""

from repro.feedback.corrector import ResidualCorrector
from repro.feedback.decorator import MODES, CorrectedEstimator, make_feedback
from repro.feedback.featurize import FeaturizationError, QueryFeaturizer
from repro.feedback.log import Observation, QueryLog
from repro.feedback.trainer import FeedbackTrainer

__all__ = [
    "CorrectedEstimator",
    "FeaturizationError",
    "FeedbackTrainer",
    "MODES",
    "Observation",
    "QueryFeaturizer",
    "QueryLog",
    "ResidualCorrector",
    "make_feedback",
]
