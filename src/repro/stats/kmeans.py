"""KMeans clustering with retained centers for incremental update routing.

The RSPN structure learner uses KMeans with ``k=2`` to split rows into
clusters under sum nodes (as the MSPN algorithm the paper builds on).
The paper's update algorithm (Algorithm 1) routes an inserted or deleted
tuple to the *nearest cluster center* of a sum node, so unlike typical
throwaway clustering calls we keep the fitted centers, the column-wise
standardisation used during fitting, and the imputation values for NULLs.
"""

from __future__ import annotations

import numpy as np


class KMeans:
    """Lloyd's algorithm on standardised data with NaN-mean imputation.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of random restarts; the inertia-minimising run wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    seed:
        Seed for center initialisation.
    """

    def __init__(self, n_clusters=2, n_init=3, max_iter=50, seed=0):
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.seed = seed
        self.centers_ = None
        self.mean_ = None
        self.scale_ = None
        self.impute_ = None

    def _standardise(self, data):
        return (data - self.mean_) / self.scale_

    def _prepare(self, data, fit):
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        if fit:
            with np.errstate(all="ignore"):
                impute = np.nanmean(data, axis=0)
            impute = np.where(np.isnan(impute), 0.0, impute)
            self.impute_ = impute
        filled = np.where(np.isnan(data), self.impute_, data)
        if fit:
            self.mean_ = filled.mean(axis=0)
            scale = filled.std(axis=0)
            scale[scale == 0] = 1.0
            self.scale_ = scale
        return self._standardise(filled)

    def fit(self, data):
        """Fit cluster centers; returns ``self``."""
        points = self._prepare(data, fit=True)
        n = points.shape[0]
        k = min(self.n_clusters, n)
        rng = np.random.default_rng(self.seed)
        best_inertia = np.inf
        best_centers = None
        for _ in range(max(1, self.n_init)):
            centers = points[rng.choice(n, size=k, replace=False)].copy()
            for _ in range(self.max_iter):
                labels = self._assign(points, centers)
                new_centers = centers.copy()
                moved = False
                for c in range(k):
                    members = points[labels == c]
                    if members.shape[0] == 0:
                        # Re-seed an empty cluster at the farthest point so
                        # k=2 splits do not silently collapse to one cluster.
                        distances = self._distances(points, centers).min(axis=1)
                        new_centers[c] = points[int(np.argmax(distances))]
                        moved = True
                    else:
                        candidate = members.mean(axis=0)
                        if not np.allclose(candidate, centers[c]):
                            moved = True
                        new_centers[c] = candidate
                centers = new_centers
                if not moved:
                    break
            labels = self._assign(points, centers)
            inertia = float(
                np.sum((points - centers[labels]) ** 2)
            )
            if inertia < best_inertia:
                best_inertia = inertia
                best_centers = centers
        self.centers_ = best_centers
        return self

    @staticmethod
    def _distances(points, centers):
        return ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)

    def _assign(self, points, centers):
        return np.argmin(self._distances(points, centers), axis=1)

    def fit_predict(self, data):
        self.fit(data)
        return self.predict(data)

    def predict(self, data):
        """Nearest-center labels for ``data`` (NaNs imputed as at fit time)."""
        if self.centers_ is None:
            raise RuntimeError("KMeans.predict called before fit")
        points = self._prepare(data, fit=False)
        return self._assign(points, self.centers_)

    def nearest_center(self, row):
        """Index of the nearest cluster for a single tuple.

        This is the routing primitive of the paper's Algorithm 1: on
        insert/delete, a sum node asks for the nearest cluster of the
        incoming tuple and adjusts that child's weight.
        """
        return int(self.predict(np.asarray(row, dtype=float).reshape(1, -1))[0])

    def state_dict(self):
        """Plain-array state, convenient for equality tests."""
        return {
            "centers": self.centers_,
            "mean": self.mean_,
            "scale": self.scale_,
            "impute": self.impute_,
        }
