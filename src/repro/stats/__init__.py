"""Numerical substrate shared across DeepDB components.

This package provides the statistical primitives the paper's learning
pipeline relies on:

- :mod:`repro.stats.rdc` -- the randomized dependence coefficient
  (Lopez-Paz et al., NeurIPS 2013), used both to decide column splits
  during SPN structure learning and to decide which tables to join in an
  RSPN ensemble.
- :mod:`repro.stats.kmeans` -- a small KMeans implementation whose cluster
  centers are retained so that the incremental update algorithm
  (Algorithm 1 of the paper) can route new tuples to the nearest cluster.
"""

from repro.stats.kmeans import KMeans
from repro.stats.rdc import rdc, rdc_matrix, rdc_transform

__all__ = ["KMeans", "rdc", "rdc_matrix", "rdc_transform"]
