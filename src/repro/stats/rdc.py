"""Randomized dependence coefficient (RDC).

The RDC of Lopez-Paz, Hennig and Schoelkopf (NeurIPS 2013) measures
non-linear dependence between two random variables.  It is the canonical
correlation between random non-linear projections of the copula
transforms of both variables.  DeepDB uses RDC values in two places:

1. During SPN structure learning, columns whose pairwise RDC falls below
   a threshold are considered independent and split by a product node
   (as in the MSPN learning algorithm the paper builds on).
2. During ensemble creation, the maximum pairwise RDC between attributes
   of two tables decides whether a joint RSPN over their join is learned.

The implementation below follows the published algorithm:

- empirical copula transform (rank / n) per column,
- append a constant 1 feature,
- project through ``k`` random sine features with scale ``s``,
- compute the largest canonical correlation of the two feature blocks.

NULL values (NaN) are handled by ranking them as a dedicated lowest
value, which matches how RSPN leaves treat NULL as a dedicated value.
"""

from __future__ import annotations

import numpy as np

DEFAULT_K = 20
DEFAULT_S = 1.0 / 6.0


def _ecdf(column):
    """Empirical copula transform of a 1-D array, mapping values to (0, 1].

    NaNs are treated as a dedicated smallest value so that NULL-heavy
    columns still produce meaningful dependence scores.
    """
    column = np.asarray(column, dtype=float)
    filled = column.copy()
    nan_mask = np.isnan(filled)
    if nan_mask.any():
        finite = filled[~nan_mask]
        lowest = (finite.min() - 1.0) if finite.size else 0.0
        filled[nan_mask] = lowest
    order = np.argsort(filled, kind="mergesort")
    ranks = np.empty(filled.shape[0], dtype=float)
    ranks[order] = np.arange(1, filled.shape[0] + 1)
    # Average ranks for ties so identical values get identical copula
    # positions; a two-pass approach over the sorted array keeps it O(n log n).
    sorted_vals = filled[order]
    boundaries = np.flatnonzero(sorted_vals[1:] != sorted_vals[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [filled.shape[0]]))
    avg = (starts + ends + 1) / 2.0
    tie_ranks = np.repeat(avg, ends - starts)
    ranks[order] = tie_ranks
    return ranks / filled.shape[0]


def _one_hot(column, max_categories=40):
    """One-hot features for a categorical column (NaN gets its own column).

    The encoding is order-free: the dependence of any other variable on
    the category becomes linearly visible to the CCA regardless of how
    codes were assigned.  Rare categories beyond ``max_categories`` share
    an 'other' column.  One indicator column is dropped (categories sum
    to one) to avoid exact collinearity in the CCA.
    """
    column = np.asarray(column, dtype=float)
    nan_mask = np.isnan(column)
    values, counts = np.unique(column[~nan_mask], return_counts=True)
    keep = values[np.argsort(counts)[::-1][:max_categories]]
    index = {v: i for i, v in enumerate(keep)}
    overflow = len(keep) + 1 if values.shape[0] > keep.shape[0] else None
    width = len(keep) + 1 + (1 if overflow is not None else 0)
    features = np.zeros((column.shape[0], width))
    for row, value in enumerate(column):
        if nan_mask[row]:
            features[row, len(keep)] = 1.0
        else:
            slot = index.get(value, overflow)
            features[row, slot] = 1.0
    # drop one column to remove the sum-to-one collinearity
    return features[:, : width - 1] if width > 1 else features


def rdc_transform(column, k=DEFAULT_K, s=DEFAULT_S, rng=None, discrete=False):
    """Feature map of one column for the canonical-correlation step.

    Continuous columns use the empirical copula transform projected
    through random ``N(0, s^2)`` weights with sine and cosine
    nonlinearities (the original RDC).  Categorical columns use plain
    one-hot indicators (as in the MSPN structure learner the paper
    builds on): code order is meaningless and indicators already expose
    every category-conditional dependence linearly.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if discrete:
        return _one_hot(column)
    u = _ecdf(column)
    features = np.column_stack([u, np.ones_like(u)])
    weights = rng.normal(0.0, s, size=(features.shape[1], k))
    projections = features @ weights
    return np.column_stack([np.sin(projections), np.cos(projections)])


def _first_canonical_correlation(x, y, regularization=1e-4):
    """Largest canonical correlation between feature blocks ``x`` and ``y``.

    Solved via the standard generalized eigenvalue formulation.  The
    ridge term is scaled to the average feature variance, which keeps
    near-collinear blocks (one-hot encodings, redundant sine features)
    from inflating the correlation towards one.
    """
    x = x - x.mean(axis=0)
    y = y - y.mean(axis=0)
    n = x.shape[0]
    cxx = (x.T @ x) / n
    cyy = (y.T @ y) / n
    ridge_x = regularization * max(float(np.trace(cxx)) / max(x.shape[1], 1), 1e-12)
    ridge_y = regularization * max(float(np.trace(cyy)) / max(y.shape[1], 1), 1e-12)
    cxx += ridge_x * np.eye(x.shape[1])
    cyy += ridge_y * np.eye(y.shape[1])
    cxy = (x.T @ y) / n
    try:
        sqx = np.linalg.cholesky(np.linalg.inv(cxx))
        sqy = np.linalg.cholesky(np.linalg.inv(cyy))
    except np.linalg.LinAlgError:
        return 0.0
    m = sqx.T @ cxy @ sqy
    singular_values = np.linalg.svd(m, compute_uv=False)
    if singular_values.size == 0:
        return 0.0
    return float(np.clip(singular_values[0], 0.0, 1.0))


def rdc(x, y, k=DEFAULT_K, s=DEFAULT_S, seed=0, n_samples=None,
        discrete_x=False, discrete_y=False):
    """Randomized dependence coefficient between two 1-D arrays.

    Values close to 0 indicate independence, values close to 1 strong
    (possibly non-linear) dependence.  ``n_samples`` optionally
    subsamples rows for speed; both columns are subsampled jointly.
    ``discrete_x``/``discrete_y`` switch the corresponding column to the
    order-free one-hot feature map.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError("rdc requires columns of equal length")
    if x.shape[0] < 3:
        return 0.0
    rng = np.random.default_rng(seed)
    if n_samples is not None and x.shape[0] > n_samples:
        idx = rng.choice(x.shape[0], size=n_samples, replace=False)
        x, y = x[idx], y[idx]
    if _is_constant(x) or _is_constant(y):
        return 0.0
    fx = rdc_transform(x, k=k, s=s, rng=np.random.default_rng(seed + 1),
                       discrete=discrete_x)
    fy = rdc_transform(y, k=k, s=s, rng=np.random.default_rng(seed + 2),
                       discrete=discrete_y)
    return _first_canonical_correlation(fx, fy)


def _is_constant(column):
    finite = column[~np.isnan(column)]
    if finite.size == 0:
        return True
    return bool(np.all(finite == finite[0])) and not np.isnan(column).any()


def rdc_matrix(data, k=DEFAULT_K, s=DEFAULT_S, seed=0, n_samples=10_000,
               discrete_flags=None):
    """Pairwise RDC matrix over the columns of a 2-D array.

    Returns a symmetric ``(d, d)`` matrix with ones on the diagonal.
    Feature transforms are computed once per column and reused for all
    pairs, which is the optimisation the MSPN learning algorithm relies
    on to keep structure learning cheap.  ``discrete_flags[j]`` switches
    column ``j`` to the one-hot feature map.
    """
    data = np.asarray(data, dtype=float)
    n, d = data.shape
    if discrete_flags is None:
        discrete_flags = [False] * d
    rng = np.random.default_rng(seed)
    if n_samples is not None and n > n_samples:
        idx = rng.choice(n, size=n_samples, replace=False)
        data = data[idx]
    transforms = []
    for j in range(d):
        column = data[:, j]
        if _is_constant(column):
            transforms.append(None)
        else:
            transforms.append(
                rdc_transform(
                    column,
                    k=k,
                    s=s,
                    rng=np.random.default_rng(seed + 1 + j),
                    discrete=bool(discrete_flags[j]),
                )
            )
    matrix = np.eye(d)
    for i in range(d):
        for j in range(i + 1, d):
            if transforms[i] is None or transforms[j] is None:
                value = 0.0
            else:
                value = _first_canonical_correlation(transforms[i], transforms[j])
            matrix[i, j] = matrix[j, i] = value
    return matrix
