"""Command-line interface: train, persist, query and inspect ensembles.

The datasets are deterministic synthetic generators, so a persisted
ensemble plus the ``(dataset, scale, seed)`` triple fully reproduces a
session.  Typical flow::

    python -m repro.cli train   --dataset imdb --scale 0.05 --out model.rspn
    python -m repro.cli estimate --dataset imdb --scale 0.05 --model model.rspn \
        --sql "SELECT COUNT(*) FROM title WHERE title.production_year > 2005"
    python -m repro.cli query   --dataset imdb --scale 0.05 --model model.rspn \
        --sql "SELECT AVG(title.production_year) FROM title" --confidence 0.95
    python -m repro.cli plan    --dataset imdb --scale 0.05 --model model.rspn \
        --sql "SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id"
    python -m repro.cli inspect --model model.rspn

Models persist in the mmap-able store format by default
(:mod:`repro.core.modelstore`; millisecond cold start); ``train
--format json`` / ``save --format ...`` write or convert to the legacy
JSON document, and every command auto-detects which format it was
given.  ``models`` lists a store directory's catalog -- and verifies
checksums with ``--verify`` -- without loading any model::

    python -m repro.cli save   --model model.json --out model.rspn
    python -m repro.cli models --store ./fleet --verify

``estimate`` and ``query`` accept ``--sql`` several times; multi-query
invocations are answered through the batched compiled-inference path
(one bottom-up sweep per RSPN for the whole batch).

The serving pair exposes the same model to concurrent clients::

    python -m repro.cli serve  --dataset imdb --scale 0.05 --model model.json \
        --port 8080
    python -m repro.cli client --url http://127.0.0.1:8080 \
        --sql "SELECT COUNT(*) FROM title WHERE title.production_year > 2005" \
        --sql "SELECT COUNT(*) FROM title WHERE title.kind_id = 0" --stats

``ingest`` streams inserts/deletes (a JSONL file, stdin, or a synthetic
resample of an existing table) through the bounded update queue and the
batch applier: one copy-on-write staged commit per flushed batch, one
generation bump per touched RSPN, readers never blocked::

    python -m repro.cli ingest --dataset imdb --scale 0.05 \
        --model model.rspn --synthetic 5000 --table title

``serve`` starts the HTTP/JSON front-end of :mod:`repro.serving`:
concurrent client queries are coalesced into single batched estimator
calls (micro-batching), results are cached per normalized query text
with generation-based invalidation, and ``GET /stats`` reports
latency/throughput/batch-occupancy.  ``client`` fires its ``--sql``
queries concurrently so a single invocation already exercises
coalescing.  Given a store-format model, ``serve`` registers it
lazily: the model pages in (mmap) on the first query, and
``--memory-budget-mb`` bounds resident model bytes with LRU eviction.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _add_dataset_arguments(parser):
    parser.add_argument(
        "--dataset", required=True, choices=("imdb", "ssb", "flights"),
        help="synthetic dataset generator to use",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale factor (default 0.05)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")


def _build_database(args):
    from repro.datasets import flights, imdb, ssb

    generator = {"imdb": imdb, "ssb": ssb, "flights": flights}[args.dataset]
    return generator.generate(scale=args.scale, seed=args.seed)


def _add_shards_argument(parser):
    parser.add_argument(
        "--shards", type=int, default=0,
        help="fan batched compiled sweeps across N worker processes "
             "(0 = in-process; answers are bit-identical either way)",
    )
    parser.add_argument(
        "--transport", choices=("auto", "shm", "pickle"), default="auto",
        help="how sharded sweeps ship specs and the model to workers: "
             "shm publishes zero-copy shared-memory segments (default "
             "where available), pickle is the portability fallback",
    )
    parser.add_argument(
        "--kernel", choices=("auto", "numpy", "numba", "legacy"),
        default="auto",
        help="compiled-sweep kernel: the fused numpy sweep (default), "
             "the numba-lowered sweep (falls back to numpy when numba "
             "is absent), or the legacy full-matrix sweep; all three "
             "return bit-identical answers",
    )


def _add_corrector_argument(parser):
    parser.add_argument(
        "--corrector", choices=("off", "observe", "apply"), default="off",
        help="workload feedback loop (repro.feedback): observe logs "
             "every estimate and realized cardinality without changing "
             "answers (bit-identical to off); apply additionally "
             "multiplies estimates by the learned residual correction, "
             "falling back to the raw estimate for queries the "
             "corrector cannot featurize or has not trained for",
    )


def _corrector_mode(args):
    corrector = getattr(args, "corrector", "off")
    return None if corrector == "off" else corrector


def _add_plan_cache_argument(parser):
    parser.add_argument(
        "--plan-cache", choices=("on", "off"), default="on",
        help="memoise join-order planning per normalized query shape "
             "(invalidated on data updates and corrector trainings); "
             "off re-enumerates every call",
    )


def _plan_cache_enabled(args):
    return getattr(args, "plan_cache", "on") == "on"


def _load_model(args, database):
    from repro.deepdb import DeepDB

    shards = getattr(args, "shards", 0)
    transport = getattr(args, "transport", "auto")
    return DeepDB.load(
        args.model, database, shards=shards or None,
        transport=None if transport == "auto" else transport,
        kernel=getattr(args, "kernel", None),
        corrector=_corrector_mode(args),
        plan_cache=_plan_cache_enabled(args),
    )


def _cmd_train(args, out):
    from repro.core.ensemble import EnsembleConfig
    from repro.deepdb import DeepDB

    database = _build_database(args)
    print(f"dataset: {database}", file=out)
    config = EnsembleConfig(
        sample_size=args.sample_size,
        budget_factor=args.budget_factor,
        single_tables_only=args.single_tables,
    )
    start = time.perf_counter()
    deepdb = DeepDB.learn(database, config)
    seconds = time.perf_counter() - start
    print(deepdb.describe(), file=out)
    print(f"training took {seconds:.1f}s", file=out)
    deepdb.save(args.out, format=args.format)
    print(f"saved ensemble to {args.out} ({args.format} format)", file=out)
    return 0


def _cmd_save(args, out):
    """Convert a persisted model between the store and JSON formats."""
    from repro.deepdb import DeepDB

    deepdb = DeepDB.load(args.model, None)
    try:
        deepdb.save(args.out, format=args.format)
        print(f"wrote {args.out} ({args.format} format)", file=out)
    finally:
        deepdb.close()
    return 0


def _cmd_models(args, out):
    import os

    from repro.core.modelstore import (
        ModelStoreError,
        is_store_file,
        open_store,
        read_catalog,
    )

    if os.path.isdir(args.store):
        paths = sorted(
            os.path.join(args.store, entry)
            for entry in os.listdir(args.store)
            if is_store_file(os.path.join(args.store, entry))
        )
        if not paths:
            print(f"no model store files under {args.store}", file=out)
            return 0
    else:
        paths = [args.store]
    failures = 0
    for path in paths:
        try:
            catalog = read_catalog(path)
        except ModelStoreError as error:
            print(f"{path}: CORRUPT: {error}", file=out)
            failures += 1
            continue
        name = catalog["name"] or "-"
        print(
            f"{path}: name={name} v{catalog['version']}, "
            f"{len(catalog['rspns'])} RSPN(s), "
            f"{catalog['blob_bytes']:,} blob bytes "
            f"({catalog['file_bytes']:,} on disk)",
            file=out,
        )
        for rspn in catalog["rspns"]:
            print(
                f"  - {'/'.join(rspn['tables'])}: "
                f"{rspn['full_size']:,.0f} rows, "
                f"{rspn['blob_bytes']:,} bytes, "
                f"plan {str(rspn['plan_signature'])[:16]}",
                file=out,
            )
        if args.verify:
            try:
                with open_store(path) as store:
                    n_blobs = store.verify()
                print(f"  checksums OK ({n_blobs} blob(s))", file=out)
            except ModelStoreError as error:
                print(f"  CORRUPT: {error}", file=out)
                failures += 1
    return 1 if failures else 0


def _cmd_estimate(args, out):
    from repro.engine.executor import Executor
    from repro.evaluation.metrics import q_error

    database = _build_database(args)
    deepdb = _load_model(args, database)
    try:
        return _run_estimate(args, out, database, deepdb, Executor, q_error)
    finally:
        deepdb.close()


def _run_estimate(args, out, database, deepdb, Executor, q_error):
    queries = [deepdb.parse(sql) for sql in args.sql]
    if len(queries) > 1:
        # Batched path: all expectation sub-queries share one compiled
        # bottom-up sweep per RSPN.
        start = time.perf_counter()
        estimates = deepdb.cardinality_batch(queries)
        latency = time.perf_counter() - start
        for sql, estimate in zip(args.sql, estimates):
            print(f"{sql}", file=out)
            print(f"  estimated cardinality: {estimate:,.0f}", file=out)
        print(f"batch of {len(queries)}: {latency * 1e3:.2f} ms total "
              f"({latency * 1e3 / len(queries):.2f} ms/query)", file=out)
        if args.truth:
            executor = Executor(database)
            for sql, query, estimate in zip(args.sql, queries, estimates):
                truth = executor.cardinality(query)
                print(f"{sql}: truth {truth:,.0f}, "
                      f"q-error {q_error(truth, estimate):.3f}", file=out)
                if deepdb.feedback is not None:
                    deepdb.feedback.observe_execution(
                        query, estimate, truth,
                        generation=deepdb.generation,
                    )
        if args.explain:
            for sql, query in zip(args.sql, queries):
                print(deepdb.compiler.explain(query), file=out)
        _print_feedback(deepdb, out)
        return 0
    query = queries[0]
    start = time.perf_counter()
    estimate = deepdb.cardinality(query)
    latency = time.perf_counter() - start
    print(f"estimated cardinality: {estimate:,.0f}  ({latency * 1e3:.2f} ms)",
          file=out)
    if args.truth:
        truth = Executor(database).cardinality(query)
        print(f"true cardinality     : {truth:,.0f}", file=out)
        print(f"q-error              : {q_error(truth, estimate):.3f}", file=out)
        if deepdb.feedback is not None:
            deepdb.feedback.observe_execution(
                query, estimate, truth, generation=deepdb.generation
            )
    if args.explain:
        print(deepdb.compiler.explain(query), file=out)
    _print_feedback(deepdb, out)
    return 0


def _print_feedback(deepdb, out):
    stats = deepdb.feedback_stats()
    if stats is None:
        return
    print(f"feedback [{stats['mode']}]: {stats['logged']} logged "
          f"({stats['labeled']} labeled), {stats['applied']} corrected, "
          f"{stats['gated_out']} gated out, "
          f"trained on {stats['trained_on']}", file=out)


def _print_answer(answer, confidence, out):
    if isinstance(answer, dict):
        for group, (value, (low, high)) in sorted(answer.items()):
            key = ", ".join(str(k) for k in group)
            print(f"{key}: {value:,.2f}  "
                  f"[{low:,.2f}, {high:,.2f}]", file=out)
    else:
        value, (low, high) = answer
        print(f"answer: {value:,.2f}  "
              f"{confidence:.0%} CI [{low:,.2f}, {high:,.2f}]", file=out)


def _cmd_query(args, out):
    database = _build_database(args)
    deepdb = _load_model(args, database)
    try:
        return _run_query(args, out, deepdb)
    finally:
        deepdb.close()


def _run_query(args, out, deepdb):
    queries = [deepdb.parse(sql) for sql in args.sql]
    if len(queries) > 1:
        start = time.perf_counter()
        answers = deepdb.compiler.answer_with_confidence_batch(
            queries, confidence=args.confidence
        )
        latency = time.perf_counter() - start
        for sql, answer in zip(args.sql, answers):
            print(f"{sql}", file=out)
            if isinstance(answer, dict):
                for group, (value, (low, high)) in sorted(answer.items()):
                    key = ", ".join(str(k) for k in group)
                    print(f"  {key}: {value:,.2f}  [{low:,.2f}, {high:,.2f}]",
                          file=out)
            else:
                value, (low, high) = answer
                print(f"  answer: {value:,.2f}  {args.confidence:.0%} CI "
                      f"[{low:,.2f}, {high:,.2f}]", file=out)
        print(f"batch of {len(queries)}: {latency * 1e3:.2f} ms total "
              f"({latency * 1e3 / len(queries):.2f} ms/query)", file=out)
        return 0
    query = queries[0]
    start = time.perf_counter()
    answer = deepdb.approximate_with_confidence(query, confidence=args.confidence)
    latency = time.perf_counter() - start
    _print_answer(answer, args.confidence, out)
    print(f"latency: {latency * 1e3:.2f} ms", file=out)
    return 0


def _cmd_plan(args, out):
    from repro.optimizer.cost import intermediate_sizes

    database = _build_database(args)
    deepdb = _load_model(args, database)
    try:
        return _run_plan(args, out, database, deepdb, intermediate_sizes)
    finally:
        deepdb.close()


def _run_plan(args, out, database, deepdb, intermediate_sizes):
    query = deepdb.parse(args.sql)
    start = time.perf_counter()
    plan, cost, oracle = deepdb.plan(query, linear=args.left_deep)
    latency = time.perf_counter() - start
    print(f"plan : {plan.describe()}", file=out)
    print(f"C_out: {cost:,.0f} (estimated)", file=out)
    print(f"enumeration: {latency * 1e3:.2f} ms, "
          f"{oracle.calls} sub-queries in {oracle.batch_calls} batched "
          "estimator call(s)", file=out)
    print("estimated intermediates:", file=out)
    for tables, size in intermediate_sizes(plan, oracle):
        print(f"  {' ⨝ '.join(tables):<50s} {size:>14,.0f}", file=out)
    if args.execute:
        outcome = deepdb.optimize_and_execute(
            query, linear=args.left_deep,
            replan_threshold=args.replan_threshold,
        )
        execution = outcome.execution
        print("realised intermediates:", file=out)
        for tables, size in execution.intermediates:
            print(f"  {' ⨝ '.join(tables):<50s} {size:>14,.0f}", file=out)
        realised = execution.total_intermediate_rows
        print(f"C_out: {realised:,.0f} (realised, "
              f"{outcome.estimation_gap:.2f}x the estimate)", file=out)
        if outcome.replans:
            print(f"replans: {outcome.replans} (threshold "
                  f"{args.replan_threshold:g}x)", file=out)
        if deepdb.feedback is not None:
            _print_feedback(deepdb, out)
    return 0


def _cmd_serve(args, out):
    from repro.core.modelstore import is_store_file
    from repro.serving import ModelRegistry, ServingServer

    database = _build_database(args)
    name = args.name or args.dataset
    budget = (
        None if not args.memory_budget_mb
        else int(args.memory_budget_mb * 1024 * 1024)
    )
    registry = ModelRegistry(memory_budget_bytes=budget)
    deepdb = None
    if is_store_file(args.model):
        catalog = registry.register_store(
            name, args.model, database, cache_size=args.cache_size,
            shards=args.shards or None,
            transport=None if args.transport == "auto" else args.transport,
            kernel=args.kernel,
            corrector=_corrector_mode(args),
            plan_cache=_plan_cache_enabled(args),
        )
        print(f"store-backed model {name!r}: {catalog['blob_bytes']:,} blob "
              "bytes, pages in (mmap) on first query", file=out)
        if budget is not None:
            print(f"memory budget: {budget:,} bytes, LRU eviction", file=out)
    else:
        deepdb = _load_model(args, database)
        registry.register(name, deepdb, cache_size=args.cache_size)
    server = ServingServer(
        registry,
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_inflight=args.max_inflight,
        drift_interval_s=args.drift_interval or None,
    )
    print(f"serving model {name!r} at {server.url}", file=out)
    print("endpoints: POST /query, POST /update, GET /stats, GET /models",
          file=out)
    if args.drift_interval:
        print(f"drift monitor: re-validating column splits every "
              f"{args.drift_interval:g}s; drifted RSPNs are shadow-rebuilt "
              "off-lock and swapped in atomically", file=out)
    print(f"coalescing: batches of up to {args.max_batch_size} every "
          f"{args.max_wait_ms:g} ms; admission cap {args.max_inflight} "
          "in-flight", file=out)
    from repro.core import kernels

    kernel = kernels.describe()
    print(f"kernel: {kernel['active']!r} "
          f"(requested {kernel['requested']!r}, "
          f"numba {'available' if kernel['numba_available'] else 'absent'})",
          file=out)
    if _corrector_mode(args) is not None:
        print(f"feedback: corrector {args.corrector!r} -- estimates are "
              "logged; watch GET /stats under models.<name>.feedback",
              file=out)
    if deepdb is not None and deepdb.evaluator is not None:
        from repro.core.autotune import SERIAL_ONLY

        evaluator = deepdb.evaluator
        if evaluator.min_shard_size >= SERIAL_ONLY:
            print("sharding: auto-tuner selected serial "
                  f"({evaluator.autotune.mode}, "
                  f"{evaluator.autotune.usable_cpus} usable CPU(s)); "
                  "every flush stays in-process", file=out)
        else:
            print(f"sharding: coalesced flushes of >= "
                  f"{evaluator.min_shard_size} specs fan out across "
                  f"{evaluator.n_workers} worker processes over the "
                  f"{evaluator.transport!r} transport", file=out)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        server.close()
        registry.close()
        if deepdb is not None:
            deepdb.close()
    return 0


def _synthetic_ops(database, table_name, count, seed, delete_fraction=0.0):
    """Sample raw-value update ops from an existing table.

    Rows are drawn (with replacement) from the live table and decoded
    back to raw values, so synthetic streams exercise the same
    vocabulary-encoding path real clients hit.
    """
    import numpy as np

    from repro.ingest import UpdateOp

    table = database.table(table_name)
    if table.n_rows == 0:
        raise ValueError(f"table {table_name!r} is empty; nothing to sample")
    columns = [a.name for a in table.schema.non_key_attributes]
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, table.n_rows, size=int(count))
    ops = []
    for pick in picks:
        row = {
            c: table.decode_value(c, table.columns[c][int(pick)])
            for c in columns
        }
        op = (
            "delete"
            if delete_fraction and rng.random() < delete_fraction
            else "insert"
        )
        ops.append(UpdateOp(op, table_name, row))
    return ops


def _ops_from_jsonl(handle):
    """Parse ``{"op", "table", "row"}`` JSONL lines into UpdateOps."""
    from repro.ingest import UpdateOp

    ops = []
    for number, line in enumerate(handle, 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            raise ValueError(f"ops line {number} is not valid JSON") from None
        if not isinstance(entry, dict) or "table" not in entry \
                or not isinstance(entry.get("row"), dict):
            raise ValueError(
                f"ops line {number}: need an object with 'table' and 'row'"
            )
        ops.append(UpdateOp(
            entry.get("op", "insert"), entry["table"], entry["row"]
        ))
    return ops


def _cmd_ingest(args, out):
    from repro.ingest import BatchApplier, UpdateQueue
    from repro.serving.session import ModelSession

    if bool(args.ops) == bool(args.synthetic):
        print("error: pass exactly one of --ops / --synthetic", file=sys.stderr)
        return 2
    database = _build_database(args)
    deepdb = _load_model(args, database)
    try:
        if args.synthetic:
            table = args.table or database.table_names()[0]
            ops = _synthetic_ops(
                database, table, args.synthetic, args.seed,
                delete_fraction=args.delete_fraction,
            )
        elif args.ops == "-":
            ops = _ops_from_jsonl(sys.stdin)
        else:
            with open(args.ops) as handle:
                ops = _ops_from_jsonl(handle)
        if not ops:
            print("no ops to ingest", file=out)
            return 0
        session = ModelSession("ingest", deepdb, cache_size=0)
        queue = UpdateQueue(maxsize=args.queue_size)
        applier = BatchApplier(
            session, queue, max_batch=args.batch_size,
            max_wait_s=args.max_wait_ms / 1000.0,
        )
        generation_before = deepdb.generation
        start = time.perf_counter()
        with applier:
            for op in ops:
                queue.put(op)  # blocks on a full queue: backpressure
        elapsed = time.perf_counter() - start
        stats = applier.stats()
        generation_after = deepdb.generation
        rate = stats["applied"] / elapsed if elapsed > 0 else 0.0
        print(f"ingested {stats['applied']:,} update(s) "
              f"({stats['rejected']} rejected) in {elapsed:.2f}s "
              f"({rate:,.0f} updates/s)", file=out)
        print(f"flushes: {stats['flushes']} "
              f"(mean batch {stats['mean_flush']:.1f}, "
              f"max {stats['max_flush']}); queue high-water "
              f"{stats['queue']['high_water']}", file=out)
        print(f"generation: {generation_before} -> {generation_after} "
              f"({generation_after - generation_before} bump(s) for "
              f"{stats['applied']:,} tuple(s) -- one per flushed batch "
              "per touched RSPN, not one per tuple)", file=out)
        return 1 if stats["rejected"] else 0
    finally:
        deepdb.close()


def _http_json(url, payload=None, timeout=60.0):
    import urllib.request

    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _cmd_client(args, out):
    import concurrent.futures
    import urllib.error

    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    if args.concurrency < 1:
        print("error: --concurrency must be >= 1", file=sys.stderr)
        return 2
    url = args.url.rstrip("/")
    bodies = [
        {"sql": sql, "kind": args.kind, "database": args.database}
        for sql in args.sql
        for _ in range(args.repeat)
    ]

    def one(body):
        try:
            return _http_json(url + "/query", body, timeout=args.timeout)
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            return {"error": f"HTTP {error.code}: {detail}"}
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            return {"error": f"transport: {error}"}

    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=min(len(bodies), args.concurrency)
    ) as pool:
        payloads = list(pool.map(one, bodies))
    elapsed = time.perf_counter() - start

    failed = 0
    for body, payload in zip(bodies, payloads):
        if "error" in payload:
            failed += 1
            print(f"{body['sql']}\n  error: {payload['error']}", file=out)
        elif "groups" in payload:
            print(f"{body['sql']}", file=out)
            for group in payload["groups"]:
                key = ", ".join(str(k) for k in group["key"])
                print(f"  {key}: {group['value']:,.2f}", file=out)
        else:
            print(f"{body['sql']}\n  {args.kind}: {payload['value']}", file=out)
    print(f"{len(bodies)} requests in {elapsed * 1e3:.1f} ms "
          f"({len(bodies) / elapsed:,.0f} req/s, {failed} failed)", file=out)
    if args.stats:
        stats = _http_json(url + "/stats", timeout=args.timeout)
        for name, coalescer in stats["serving"]["coalescers"].items():
            print(f"server coalescer {name!r}: "
                  f"{coalescer['requests']} requests in "
                  f"{coalescer['flushes']} flushes "
                  f"(mean occupancy {coalescer['mean_occupancy']:.1f}, "
                  f"max {coalescer['max_occupancy']})", file=out)
        for path, endpoint in stats["endpoints"].items():
            print(f"server endpoint {path}: {endpoint['requests']} requests, "
                  f"mean {endpoint['mean_latency_ms']:.2f} ms, "
                  f"{endpoint['throughput_rps']:.1f} req/s", file=out)
    return 1 if failed else 0


def _cmd_inspect(args, out):
    from repro.core.modelstore import is_store_file

    if is_store_file(args.model):
        return _inspect_store(args, out)
    with open(args.model) as handle:
        document = json.load(handle)
    rspns = document.get("rspns", [])
    print(f"ensemble with {len(rspns)} RSPNs "
          f"(trained in {document.get('training_seconds', 0.0):.1f}s)", file=out)
    for rspn in rspns:
        nodes = _count_nodes(rspn["root"])
        print(
            f"  - {'/'.join(rspn['tables'])}: {rspn['full_size']:,.0f} rows, "
            f"{len(rspn['column_names'])} columns, "
            f"{nodes['sum']} sum / {nodes['product']} product / "
            f"{nodes['leaf']} leaf nodes",
            file=out,
        )
    if args.tree:
        from repro.core.describe import render_tree
        from repro.core.serialization import rspn_from_dict

        for rspn_doc in rspns:
            print(file=out)
            print(
                render_tree(rspn_from_dict(rspn_doc), max_depth=args.tree_depth),
                file=out,
            )
    return 0


def _inspect_store(args, out):
    from repro.core.modelstore import open_store

    with open_store(args.model) as store:
        catalog = store.catalog()
        ensemble = store.load_ensemble(None)
        print(f"model store with {len(ensemble.rspns)} RSPNs "
              f"(v{catalog['version']}, {catalog['blob_bytes']:,} blob bytes, "
              f"trained in {ensemble.training_seconds:.1f}s)", file=out)
        for rspn, entry in zip(ensemble.rspns, catalog["rspns"]):
            nodes = rspn.node_counts()
            print(
                f"  - {'/'.join(sorted(rspn.tables))}: "
                f"{rspn.full_size:,.0f} rows, "
                f"{len(rspn.column_names)} columns, "
                f"{nodes['sum']} sum / {nodes['product']} product / "
                f"{nodes['leaf']} leaf nodes, "
                f"{entry['blob_bytes']:,} bytes, "
                f"plan {str(entry['plan_signature'])[:16]}",
                file=out,
            )
        if args.tree:
            from repro.core.describe import render_tree

            for rspn in ensemble.rspns:
                print(file=out)
                print(render_tree(rspn, max_depth=args.tree_depth), file=out)
        # Drop the tree views before the store closes so the unmap is
        # immediate rather than deferred to garbage collection.
        rspn = entry = ensemble = None
    return 0


def _count_nodes(node):
    counts = {"sum": 0, "product": 0, "leaf": 0}
    stack = [node]
    while stack:
        current = stack.pop()
        kind = current["type"]
        if kind in ("sum", "product"):
            counts[kind] += 1
            stack.extend(current["children"])
        else:
            counts["leaf"] += 1
    return counts


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepDB reproduction: RSPN ensembles from the command line.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="learn and persist an ensemble")
    _add_dataset_arguments(train)
    train.add_argument("--out", required=True, help="output model path")
    train.add_argument("--format", choices=("store", "json"), default="store",
                       help="persistence format: the mmap-able model store "
                            "(default; millisecond cold start) or the legacy "
                            "JSON document (inspectable, slow to load)")
    train.add_argument("--sample-size", type=int, default=25_000)
    train.add_argument("--budget-factor", type=float, default=0.0)
    train.add_argument("--single-tables", action="store_true",
                       help="the paper's cheap single-table-only strategy")
    train.set_defaults(handler=_cmd_train)

    save = commands.add_parser(
        "save", help="re-save a persisted model (store <-> JSON conversion)"
    )
    save.add_argument("--model", required=True,
                      help="input model (either format, auto-detected)")
    save.add_argument("--out", required=True, help="output model path")
    save.add_argument("--format", choices=("store", "json"), default="store",
                      help="output format (default store)")
    save.set_defaults(handler=_cmd_save)

    models = commands.add_parser(
        "models", help="list a model store file or fleet directory"
    )
    models.add_argument("--store", required=True,
                        help="a store file, or a directory of store files")
    models.add_argument("--verify", action="store_true",
                        help="validate every blob checksum (reads the full "
                             "file; models are still never loaded)")
    models.set_defaults(handler=_cmd_models)

    estimate = commands.add_parser(
        "estimate", help="cardinality estimate for a SQL query"
    )
    _add_dataset_arguments(estimate)
    estimate.add_argument("--model", required=True)
    estimate.add_argument("--sql", required=True, action="append",
                          help="SQL query; repeat the flag to estimate a "
                               "whole batch in one compiled sweep")
    estimate.add_argument("--truth", action="store_true",
                          help="also run the exact executor")
    estimate.add_argument("--explain", action="store_true",
                          help="print the probabilistic query compilation")
    _add_shards_argument(estimate)
    _add_corrector_argument(estimate)
    estimate.set_defaults(handler=_cmd_estimate)

    query = commands.add_parser(
        "query", help="approximate answer with confidence interval"
    )
    _add_dataset_arguments(query)
    query.add_argument("--model", required=True)
    query.add_argument("--sql", required=True, action="append",
                       help="SQL query; repeat the flag to answer a whole "
                            "batch in one compiled sweep")
    query.add_argument("--confidence", type=float, default=0.95)
    _add_shards_argument(query)
    _add_corrector_argument(query)
    query.set_defaults(handler=_cmd_query)

    plan = commands.add_parser(
        "plan", help="join order chosen with DeepDB cardinalities"
    )
    _add_dataset_arguments(plan)
    plan.add_argument("--model", required=True)
    plan.add_argument("--sql", required=True)
    plan.add_argument("--left-deep", action="store_true",
                      help="restrict the enumeration to left-deep plans")
    plan.add_argument("--execute", action="store_true",
                      help="run the chosen plan with real hash joins and "
                           "report the realised intermediate sizes")
    plan.add_argument("--replan-threshold", type=float, default=16.0,
                      help="re-optimise mid-execution when a join "
                           "materialises more than this multiple of its "
                           "estimate (default 16; inf disables)")
    _add_plan_cache_argument(plan)
    _add_shards_argument(plan)
    _add_corrector_argument(plan)
    plan.set_defaults(handler=_cmd_plan)

    serve = commands.add_parser(
        "serve", help="HTTP serving front-end with micro-batching"
    )
    _add_dataset_arguments(serve)
    serve.add_argument("--model", required=True)
    serve.add_argument("--name", default=None,
                       help="model name in the registry (default: dataset)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--max-batch-size", type=int, default=32,
                       help="coalescer flush size (default 32)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="coalescer flush deadline in ms (default 2)")
    serve.add_argument("--max-inflight", type=int, default=1024,
                       help="admission-control cap on in-flight requests")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="LRU result-cache entries (0 disables)")
    serve.add_argument("--memory-budget-mb", type=float, default=0,
                       help="cap resident store-backed model bytes; beyond "
                            "it, least-recently-used models are evicted and "
                            "transparently page back in on their next query "
                            "(0 = unbounded)")
    serve.add_argument("--drift-interval", type=float, default=0,
                       help="re-validate resident models' column splits "
                            "every N seconds in the background, shadow-"
                            "rebuilding drifted RSPNs (0 = off)")
    _add_plan_cache_argument(serve)
    _add_shards_argument(serve)
    _add_corrector_argument(serve)
    serve.set_defaults(handler=_cmd_serve)

    ingest = commands.add_parser(
        "ingest", help="stream inserts/deletes through the batch applier"
    )
    _add_dataset_arguments(ingest)
    ingest.add_argument("--model", required=True)
    ingest.add_argument("--ops", default=None,
                        help="JSONL file of {'op','table','row'} updates "
                             "('-' reads stdin)")
    ingest.add_argument("--synthetic", type=int, default=0,
                        help="generate N insert ops by resampling existing "
                             "rows of --table instead of reading --ops")
    ingest.add_argument("--table", default=None,
                        help="table for --synthetic (default: first table)")
    ingest.add_argument("--delete-fraction", type=float, default=0.0,
                        help="turn this fraction of synthetic ops into "
                             "deletes (default 0)")
    ingest.add_argument("--batch-size", type=int, default=256,
                        help="applier flush size (default 256)")
    ingest.add_argument("--max-wait-ms", type=float, default=20.0,
                        help="applier coalescing window in ms (default 20)")
    ingest.add_argument("--queue-size", type=int, default=10_000,
                        help="bounded queue depth; full puts block "
                             "(backpressure, default 10000)")
    _add_shards_argument(ingest)
    ingest.set_defaults(handler=_cmd_ingest)

    client = commands.add_parser(
        "client", help="fire concurrent queries at a serving front-end"
    )
    client.add_argument("--url", required=True,
                        help="server base URL, e.g. http://127.0.0.1:8080")
    client.add_argument("--sql", required=True, action="append",
                        help="SQL query; repeat the flag to send several "
                             "concurrently (they coalesce server-side)")
    client.add_argument("--kind", default="cardinality",
                        choices=("cardinality", "approximate", "plan"))
    client.add_argument("--database", default=None,
                        help="model name to route to (default: the server's "
                             "only model)")
    client.add_argument("--repeat", type=int, default=1,
                        help="send each query this many times")
    client.add_argument("--concurrency", type=int, default=32,
                        help="client thread cap (default 32)")
    client.add_argument("--timeout", type=float, default=60.0)
    client.add_argument("--stats", action="store_true",
                        help="print server-side coalescing/latency stats")
    client.set_defaults(handler=_cmd_client)

    inspect = commands.add_parser(
        "inspect", help="summarise a persisted ensemble file"
    )
    inspect.add_argument("--model", required=True)
    inspect.add_argument("--tree", action="store_true",
                         help="render each RSPN's structure as a tree")
    inspect.add_argument("--tree-depth", type=int, default=3,
                         help="tree rendering depth (default 3)")
    inspect.set_defaults(handler=_cmd_inspect)
    return parser


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.core.modelstore import ModelStoreError

    try:
        return args.handler(args, out)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (SyntaxError, ValueError, KeyError, ModelStoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
