"""In-memory relational engine used as the substrate for DeepDB.

The paper evaluates against exact query results produced by a real DBMS
(Postgres); offline we provide an equivalent substrate:

- :mod:`repro.engine.table` -- dictionary-encoded column-store tables and
  the :class:`Database` container.
- :mod:`repro.engine.query` -- the AST for the supported query class
  (COUNT/SUM/AVG aggregates, conjunctive predicates, FK equi-joins,
  GROUP BY, inner and outer joins).
- :mod:`repro.engine.parser` -- a parser for the SQL subset of the paper.
- :mod:`repro.engine.executor` -- exact execution (ground truth for all
  experiments), with a factorized fast path for COUNT over join trees.
- :mod:`repro.engine.join` -- full-outer-join materialisation, exact join
  size computation and unbiased join-row sampling; tuple factors
  ``F_{S<-T}`` of Section 4.1.
- :mod:`repro.engine.indexes` -- adjacency indexes backing the sampling
  baselines (IBJS, Wander Join).
"""

from repro.engine.executor import Executor
from repro.engine.query import Aggregate, Predicate, Query
from repro.engine.table import Database, Table

__all__ = ["Aggregate", "Database", "Executor", "Predicate", "Query", "Table"]
