"""Exact query execution: the ground truth for every experiment.

Two strategies, chosen automatically:

- **Factorized counting** for COUNT queries without GROUP BY: per-table
  predicate masks are aggregated bottom-up over the join tree, so the
  exact inner-join cardinality of a six-way join is computed without
  materialising a single join row.  This is what makes generating tens
  of thousands of training labels for the workload-driven baselines
  (MCSN) feasible, mirroring the paper's use of a real DBMS.
- **Materialisation** for SUM/AVG/GROUP BY and outer joins: the join is
  materialised (on filtered tables) as a row-index matrix and the
  aggregate evaluated with SQL NULL semantics (aggregates skip NULLs,
  predicates on NULL are not true).
"""

from __future__ import annotations

import numpy as np

from repro.engine import join as join_ops
from repro.engine.filters import conjunction_mask
from repro.engine.query import INNER, LEFT_OUTER, Query
from repro.engine.table import Database
from repro.estimator import CardinalityEstimator


class Executor(CardinalityEstimator):
    """Exact executor over a :class:`~repro.engine.table.Database`.

    Conforms to the batched estimator protocol (it *is* the ground-truth
    cardinality oracle of the plan-quality harness); the batched entry
    point is the protocol's serial loop, since exact counting has no
    shared work to amortise across queries.
    """

    def __init__(self, database: Database, max_rows=30_000_000):
        self.database = database
        self.max_rows = max_rows

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, query: Query):
        """Exact result: a scalar, or ``{group key tuple: scalar}``.

        AVG over zero qualifying rows returns ``None`` (SQL NULL).
        """
        if query.group_by:
            return self._execute_grouped(query)
        if query.aggregate.function == "COUNT" and query.join_kind == INNER:
            return self.cardinality(query)
        return self._execute_materialised(query)

    def cardinality(self, query: Query):
        """Exact inner-join COUNT via factorized aggregation."""
        if query.aggregate.function != "COUNT":
            raise ValueError("cardinality() only supports COUNT queries")
        if query.has_disjunctions:
            # OR groups can span tables, which breaks per-table masks;
            # inclusion-exclusion over conjunctive terms stays exact.
            from repro.core.disjunction import expand

            return float(
                sum(sign * self.cardinality(term) for sign, term in expand(query))
            )
        masks = self._predicate_masks(query)
        if len(query.tables) == 1:
            return float(masks[query.tables[0]].sum())
        plan = join_ops.JoinPlan(self.database.schema, query.tables)
        weights = {
            name: masks[name].astype(float) for name in plan.order
        }
        for near, far, fk, far_is_fk_child in reversed(plan.steps):
            near_table = self.database.table(near)
            far_table = self.database.table(far)
            counts, _starts, flat = join_ops._matches_by_near_row(
                near_table, far_table, fk, far_is_fk_child
            )
            summed = np.zeros(near_table.n_rows, dtype=float)
            if flat.size:
                segment_ids = np.repeat(np.arange(near_table.n_rows), counts)
                np.add.at(summed, segment_ids, weights[far][flat])
            weights[near] *= summed
        return float(weights[plan.root].sum())

    # ------------------------------------------------------------------
    # Materialised path
    # ------------------------------------------------------------------
    def _predicate_masks(self, query):
        masks = {}
        for name in query.tables:
            table = self.database.table(name)
            masks[name] = conjunction_mask(table, query.predicates_on(name))
        return masks

    def _materialise(self, query):
        """JoinResult for the query; predicates already applied.

        For inner joins, tables are pre-filtered (cheap) and NULL-extended
        rows dropped afterwards.  For outer joins, predicates are applied
        on the materialised columns so that NULL-extended rows survive the
        join but fail WHERE conditions, matching SQL semantics.
        """
        if query.join_kind == INNER and not query.has_disjunctions:
            filtered = _filtered_database(self.database, query)
            result = join_ops.materialize_full_outer_join(
                filtered, list(query.tables), max_rows=self.max_rows
            )
            keep = np.all(result.indices >= 0, axis=1)
            return join_ops.JoinResult(filtered, result.plan, result.indices[keep])
        result = join_ops.materialize_full_outer_join(
            self.database, list(query.tables), max_rows=self.max_rows
        )
        keep = np.ones(len(result), dtype=bool)
        for predicate in query.predicates:
            keep &= self._row_mask(result, predicate)
        for group in query.disjunctions:
            group_keep = np.zeros(len(result), dtype=bool)
            for predicate in group:
                group_keep |= self._row_mask(result, predicate)
            keep &= group_keep
        if query.join_kind == INNER:
            keep &= np.all(result.indices >= 0, axis=1)
        elif query.join_kind == LEFT_OUTER:
            root = result.plan.root
            keep &= result.table_rows(root) >= 0
        return join_ops.JoinResult(self.database, result.plan, result.indices[keep])

    def _row_mask(self, result, predicate):
        """Mask of materialised join rows satisfying one predicate.

        NULL-extended rows (no join partner) fail every predicate, per
        SQL three-valued logic.
        """
        table = self.database.table(predicate.table)
        rows = result.table_rows(predicate.table)
        base_mask = conjunction_mask(table, [predicate])
        return (rows >= 0) & base_mask[np.maximum(rows, 0)]

    def _aggregate_values(self, query, result):
        if query.aggregate.function == "COUNT":
            return np.ones(len(result), dtype=float)
        return result.column(query.aggregate.table, query.aggregate.column)

    def _execute_materialised(self, query):
        result = self._materialise(query)
        values = self._aggregate_values(query, result)
        return _finalise(query.aggregate.function, values)

    def _execute_grouped(self, query):
        result = self._materialise(query)
        values = self._aggregate_values(query, result)
        having_values = [
            self._aggregate_values(query.with_aggregate(clause.aggregate), result)
            for clause in query.having
        ]
        group_columns = [result.column(t, c) for t, c in query.group_by]
        keys, inverse = _group_keys(group_columns)
        out = {}
        for g, raw_key in enumerate(keys):
            members = inverse == g
            qualifies = all(
                clause.accepts(_finalise(clause.aggregate.function, column[members]))
                for clause, column in zip(query.having, having_values)
            )
            if not qualifies:
                continue
            decoded = tuple(
                self.database.table(t).decode_value(c, raw)
                for (t, c), raw in zip(query.group_by, raw_key)
            )
            out[decoded] = _finalise(query.aggregate.function, values[members])
        return _order_and_limit(out, query)

    def distinct_group_values(self, group_by):
        """Distinct decoded values per group-by column (for the compiler)."""
        per_column = []
        for table_name, column in group_by:
            table = self.database.table(table_name)
            per_column.append(table.distinct_values(column, decoded=True))
        return per_column


def _filtered_database(database, query):
    filtered = Database(database.schema)
    for name in query.tables:
        table = database.table(name)
        mask = conjunction_mask(table, query.predicates_on(name))
        filtered.add_table(table.select(mask))
    return filtered


def _order_and_limit(groups, query):
    """Sort groups by aggregate value and truncate (ORDER BY / LIMIT).

    Returned dicts preserve the sorted order (Python dict insertion
    order); NULL aggregate values sort last under either direction.
    """
    if query.order is None and query.limit is None:
        return groups
    reverse = query.order == "desc"

    def sort_key(item):
        value = item[1]
        missing = value is None
        return (missing, (-value if reverse else value) if not missing else 0.0)

    ordered = sorted(groups.items(), key=sort_key)
    if query.limit is not None:
        ordered = ordered[: query.limit]
    return dict(ordered)


def _finalise(function, values):
    if function == "COUNT":
        return float(len(values))
    finite = values[~np.isnan(values)]
    if function == "SUM":
        return float(finite.sum())
    if function == "AVG":
        if finite.size == 0:
            return None
        return float(finite.mean())
    raise ValueError(f"unsupported aggregate {function!r}")


def _group_keys(group_columns):
    """Unique key tuples and inverse mapping for grouped aggregation.

    NULL group values are kept as distinct NaN keys (represented as
    ``None`` after decoding), matching SQL GROUP BY.
    """
    encoded = []
    for column in group_columns:
        # Encode NaN with a sentinel so np.unique buckets NULLs together.
        sentinel = np.nanmax(column) + 1.0 if np.isfinite(column).any() else 0.0
        encoded.append(np.where(np.isnan(column), sentinel, column))
    stacked = np.column_stack(encoded)
    uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
    keys = []
    for row in uniques:
        key = []
        for j, column in enumerate(group_columns):
            sentinel = np.nanmax(column) + 1.0 if np.isfinite(column).any() else 0.0
            key.append(np.nan if row[j] == sentinel and np.isnan(column).any() else row[j])
        keys.append(tuple(key))
    return keys, inverse
