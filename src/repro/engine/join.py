"""Join machinery: tuple factors, full outer joins, exact join sizes.

This module implements the relational bookkeeping of Section 4.1 of the
paper:

- **Tuple factors** ``F_{S<-T}``: for every FK relationship ``S <- T``
  a column on the parent ``S`` counting the referencing rows in ``T``.
- **Full outer joins** over a connected set of tables, materialised as a
  row-index matrix.  Every original tuple of every table appears at
  least once; tuples without join partners are NULL-extended, and the
  per-table NULL indicator columns ``N_T`` record membership.
- **Exact full-outer-join sizes** via a factorized product formula
  (no materialisation needed), used for the ``|J|`` multiplier of the
  probabilistic query compilation and to drive unbiased join sampling.

The implementation assumes referential integrity (every non-NULL foreign
key references an existing parent row), which all our dataset generators
guarantee and :func:`validate_referential_integrity` checks.
"""

from __future__ import annotations

import numpy as np



def qualify(table, column):
    return f"{table}.{column}"


def factor_qualified_name(fk):
    """Qualified column name of the tuple factor ``F_{parent<-child}``."""
    return qualify(fk.parent, fk.factor_name)


def indicator_qualified_name(table):
    """Qualified name of the NULL indicator ``N_T`` of a table in a join."""
    return qualify(table, "__present__")


def match_parent_rows(parent_key, child_key):
    """Row index in the parent table for every child row (-1 if none).

    Both arrays are float key columns; NaN foreign keys match nothing.
    """
    parent_key = np.asarray(parent_key, dtype=float)
    child_key = np.asarray(child_key, dtype=float)
    if parent_key.shape[0] == 0:
        return np.full(child_key.shape[0], -1, dtype=np.int64)
    order = np.argsort(parent_key, kind="mergesort")
    sorted_keys = parent_key[order]
    safe_child = np.where(np.isnan(child_key), np.inf, child_key)
    pos = np.searchsorted(sorted_keys, safe_child)
    result = np.full(child_key.shape[0], -1, dtype=np.int64)
    in_range = pos < sorted_keys.shape[0]
    candidates = np.where(in_range, pos, 0)
    matches = in_range & (sorted_keys[candidates] == safe_child)
    result[matches] = order[candidates[matches]]
    return result


def compute_tuple_factors(database):
    """Attach every tuple factor column ``F_{S<-T}`` to its parent table.

    The paper computes these once per FK pair during ensemble creation
    and keeps them current under updates; callers re-invoke this after
    bulk appends (:func:`refresh_tuple_factors`).
    """
    for fk in database.schema.foreign_keys:
        parent = database.table(fk.parent)
        child = database.table(fk.child)
        parent_rows = match_parent_rows(
            parent.columns[fk.pk_column], child.columns[fk.fk_column]
        )
        counts = np.bincount(parent_rows[parent_rows >= 0], minlength=parent.n_rows)
        parent.add_column(fk.factor_name, counts.astype(float), kind="numeric")
    return database


refresh_tuple_factors = compute_tuple_factors


def validate_referential_integrity(database):
    """Raise if any non-NULL foreign key has no parent row."""
    for fk in database.schema.foreign_keys:
        parent = database.table(fk.parent)
        child = database.table(fk.child)
        parent_rows = match_parent_rows(
            parent.columns[fk.pk_column], child.columns[fk.fk_column]
        )
        fk_values = child.columns[fk.fk_column]
        broken = (parent_rows < 0) & ~np.isnan(fk_values)
        if broken.any():
            raise ValueError(
                f"foreign key {fk.name} violates referential integrity "
                f"({int(broken.sum())} orphan child rows)"
            )


class JoinPlan:
    """Tree-shaped join plan over a connected table set.

    ``steps`` lists ``(near, far, fk, far_is_fk_child)`` in BFS order
    from the root: ``far`` is joined into the running result through
    ``near``, either as the FK child (one-to-many expansion) or as the
    FK parent (many-to-one lookup).
    """

    def __init__(self, schema, tables, root=None):
        self.tables = list(dict.fromkeys(tables))
        if root is None:
            root = _prefer_parent_root(schema, self.tables)
        self.root, edges = schema.join_tree(self.tables, root=root)
        self.steps = []
        joined = {self.root}
        for fk in edges:
            if fk.parent in joined:
                self.steps.append((fk.parent, fk.child, fk, True))
                joined.add(fk.child)
            else:
                self.steps.append((fk.child, fk.parent, fk, False))
                joined.add(fk.parent)
        self.order = [self.root] + [far for _near, far, _fk, _child in self.steps]


def _prefer_parent_root(schema, tables):
    """Pick a root that is never the FK child within the table set.

    Rooting at the top-most parent makes every join step a one-to-many
    expansion, which avoids orphan-parent bookkeeping for snowflakes
    like IMDb.  When no such table exists (e.g. SSB's fact table joins
    several dimension parents) any table works and orphan parents are
    appended explicitly.
    """
    inner_edges = schema.edges_between(tables)
    children = {fk.child for fk in inner_edges}
    for name in tables:
        if name not in children:
            return name
    return tables[0]


def _matches_by_near_row(near_table, far_table, fk, far_is_fk_child):
    """For each near row: (offsets into flat array, flat far-row indices).

    Returns ``(counts, starts, flat_far_rows)`` such that the far rows
    matching near row ``i`` are ``flat_far_rows[starts[i]:starts[i]+counts[i]]``.
    """
    if far_is_fk_child:
        parent_rows = match_parent_rows(
            near_table.columns[fk.pk_column], far_table.columns[fk.fk_column]
        )
        valid = parent_rows >= 0
        child_rows = np.flatnonzero(valid)
        owners = parent_rows[valid]
        order = np.argsort(owners, kind="mergesort")
        flat = child_rows[order]
        counts = np.bincount(owners, minlength=near_table.n_rows)
    else:
        match = match_parent_rows(
            far_table.columns[fk.pk_column], near_table.columns[fk.fk_column]
        )
        counts = (match >= 0).astype(np.int64)
        flat = match[match >= 0]
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return counts, starts, flat


def subtree_combos(database, plan):
    """Per-row full-outer-join combination counts for every table.

    ``combos[T][i]`` is the number of join rows the subtree rooted at
    table ``T`` (in the join plan) produces for row ``i`` of ``T``.
    ``combos[plan.root].sum()`` plus orphan-parent contributions equals
    the exact full outer join size.
    """
    combos = {
        name: np.ones(database.table(name).n_rows, dtype=float) for name in plan.order
    }
    orphan_terms = []
    for near, far, fk, far_is_fk_child in reversed(plan.steps):
        near_table = database.table(near)
        far_table = database.table(far)
        counts, starts, flat = _matches_by_near_row(near_table, far_table, fk, far_is_fk_child)
        weights = combos[far]
        # Sum of far-subtree combos per near row; NULL-extension keeps a
        # minimum of one row per near tuple (the max(.,1) of the paper).
        summed = np.zeros(near_table.n_rows, dtype=float)
        if flat.size:
            segment_ids = np.repeat(np.arange(near_table.n_rows), counts)
            np.add.at(summed, segment_ids, weights[flat])
        combos[near] *= np.maximum(summed, 1.0)
        if not far_is_fk_child:
            referenced = np.zeros(far_table.n_rows, dtype=bool)
            referenced[flat] = True
            orphan_rows = np.flatnonzero(~referenced)
            if orphan_rows.size:
                orphan_terms.append((far, orphan_rows, weights[orphan_rows]))
    return combos, orphan_terms


def full_outer_join_size(database, tables):
    """Exact size of the full outer join over ``tables`` (no materialisation)."""
    plan = JoinPlan(database.schema, tables)
    combos, orphan_terms = subtree_combos(database, plan)
    total = float(combos[plan.root].sum())
    total += sum(float(weights.sum()) for _t, _rows, weights in orphan_terms)
    return total


class JoinResult:
    """A materialised join as a row-index matrix.

    ``indices[:, k]`` holds the row index into table ``plan.order[k]``
    for every join row, with ``-1`` marking NULL-extension.  Columns of
    the join are materialised on demand.
    """

    def __init__(self, database, plan, indices):
        self.database = database
        self.plan = plan
        self.indices = indices
        self._positions = {name: k for k, name in enumerate(plan.order)}

    @property
    def tables(self):
        return list(self.plan.order)

    def __len__(self):
        return self.indices.shape[0]

    def table_rows(self, table):
        return self.indices[:, self._positions[table]]

    def column(self, table, column):
        """Materialise one column of the join (NaN where NULL-extended)."""
        rows = self.table_rows(table)
        source = self.database.table(table).columns[column]
        values = np.where(rows >= 0, source[np.maximum(rows, 0)], np.nan)
        return values

    def qualified_column(self, qualified):
        table, column = qualified.split(".", 1)
        if column == "__present__":
            return self.indicator(table)
        return self.column(table, column)

    def indicator(self, table):
        """The ``N_T`` column: 1.0 where the table contributed a real row."""
        return (self.table_rows(table) >= 0).astype(float)

    def subsample(self, n_samples, seed=0):
        if len(self) <= n_samples:
            return self
        rng = np.random.default_rng(seed)
        keep = rng.choice(len(self), size=n_samples, replace=False)
        return JoinResult(self.database, self.plan, self.indices[keep])


def materialize_full_outer_join(database, tables, max_rows=30_000_000):
    """Materialise the full outer join over ``tables`` as a JoinResult.

    Raises ``MemoryError`` when the exact join size exceeds ``max_rows``
    (callers should fall back to :func:`sample_full_outer_join`).
    """
    plan = JoinPlan(database.schema, tables)
    size = full_outer_join_size(database, tables)
    if size > max_rows:
        raise MemoryError(
            f"full outer join over {tables} has {size:.0f} rows (> {max_rows})"
        )
    n_tables = len(plan.order)
    root_table = database.table(plan.root)
    indices = np.full((root_table.n_rows, n_tables), -1, dtype=np.int64)
    indices[:, 0] = np.arange(root_table.n_rows)
    for near, far, fk, far_is_fk_child in plan.steps:
        near_pos = plan.order.index(near)
        far_pos = plan.order.index(far)
        near_table = database.table(near)
        far_table = database.table(far)
        counts, starts, flat = _matches_by_near_row(near_table, far_table, fk, far_is_fk_child)
        near_rows = indices[:, near_pos]
        # Number of copies of each current join row: the matched far rows,
        # or one NULL-extended copy when there is no partner (or the near
        # side itself is already NULL-extended).
        row_counts = np.where(near_rows >= 0, counts[np.maximum(near_rows, 0)], 0)
        copies = np.maximum(row_counts, 1)
        expanded = np.repeat(indices, copies, axis=0)
        far_column = np.full(expanded.shape[0], -1, dtype=np.int64)
        has_match = np.repeat(row_counts > 0, copies)
        # Positions of matched far rows: for join row blocks with k matches,
        # enumerate flat[start], ..., flat[start + k - 1].
        if flat.size:
            block_starts = np.where(near_rows >= 0, starts[np.maximum(near_rows, 0)], 0)
            offsets = _within_block_offsets(copies)
            flat_positions = np.repeat(block_starts, copies) + offsets
            far_column[has_match] = flat[
                np.minimum(flat_positions, flat.size - 1)
            ][has_match]
        expanded[:, far_pos] = far_column
        indices = expanded
        if not far_is_fk_child:
            referenced = np.zeros(far_table.n_rows, dtype=bool)
            referenced[flat] = True
            orphan_rows = np.flatnonzero(~referenced)
            if orphan_rows.size:
                orphan_block = np.full((orphan_rows.size, n_tables), -1, dtype=np.int64)
                orphan_block[:, far_pos] = orphan_rows
                indices = np.vstack([indices, orphan_block])
    return JoinResult(database, plan, indices)


def _within_block_offsets(copies):
    """``[0..c0-1, 0..c1-1, ...]`` for block sizes ``copies``."""
    total = int(copies.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    block_starts = np.concatenate(([0], np.cumsum(copies)[:-1]))
    return np.arange(total, dtype=np.int64) - np.repeat(block_starts, copies)


def sample_full_outer_join(database, tables, n_samples, seed=0, max_rows=30_000_000):
    """Uniform sample of full-outer-join rows.

    Materialises when the exact join is small enough, otherwise samples
    root rows proportionally to their combination counts and expands one
    uniformly random combination each -- an unbiased join-row sample,
    mirroring how the paper trains RSPNs on samples of large joins.
    """
    size = full_outer_join_size(database, tables)
    if size <= max_rows:
        result = materialize_full_outer_join(database, tables, max_rows=max_rows)
        return result.subsample(n_samples, seed=seed)
    plan = JoinPlan(database.schema, tables)
    combos, orphan_terms = subtree_combos(database, plan)
    rng = np.random.default_rng(seed)
    match_cache = {}

    def matches(near, far, fk, far_is_fk_child):
        key = (near, far)
        if key not in match_cache:
            match_cache[key] = _matches_by_near_row(
                database.table(near), database.table(far), fk, far_is_fk_child
            )
        return match_cache[key]

    children_of = {}
    for step in plan.steps:
        children_of.setdefault(step[0], []).append(step)

    positions = {name: k for k, name in enumerate(plan.order)}
    weights = combos[plan.root]
    prob = weights / weights.sum()
    rows = np.full((n_samples, len(plan.order)), -1, dtype=np.int64)
    root_draws = rng.choice(weights.shape[0], size=n_samples, p=prob)
    for sample_idx in range(n_samples):
        frontier = [(plan.root, int(root_draws[sample_idx]))]
        while frontier:
            near, near_row = frontier.pop()
            rows[sample_idx, positions[near]] = near_row
            for _near, far, fk, far_is_fk_child in children_of.get(near, []):
                counts, starts, flat = matches(near, far, fk, far_is_fk_child)
                k = counts[near_row]
                if k == 0:
                    continue
                block = flat[starts[near_row] : starts[near_row] + k]
                far_weights = combos[far][block]
                pick = rng.choice(k, p=far_weights / far_weights.sum())
                frontier.append((far, int(block[pick])))
    return JoinResult(database, plan, rows)


def join_learning_columns(database, tables):
    """Column inventory an RSPN over ``tables`` learns (Section 4.1).

    Non-key attributes of every table, the tuple-factor columns of every
    FK edge whose parent lies in ``tables`` (raw counts; the ``F' >= 1``
    correction is applied by the inference transforms), plus one NULL
    indicator ``N_T`` per table when the set spans a join.
    """
    columns = []
    for name in tables:
        schema = database.table(name).schema
        for attr in schema.non_key_attributes:
            columns.append(qualify(name, attr.name))
    if len(tables) > 1:
        for name in tables:
            columns.append(indicator_qualified_name(name))
    return columns


def single_table_frame(table):
    """(column names, data matrix) for learning a single-table RSPN."""
    names = [qualify(table.name, a.name) for a in table.schema.non_key_attributes]
    data = np.column_stack(
        [table.columns[a.name] for a in table.schema.non_key_attributes]
    ) if names else np.empty((table.n_rows, 0))
    return names, data


def join_frame(join_result, columns):
    """Materialise the listed qualified columns of a join as a matrix."""
    if not columns:
        return np.empty((len(join_result), 0))
    return np.column_stack([join_result.qualified_column(c) for c in columns])
