"""Adjacency indexes over foreign keys for the sampling baselines.

Index-Based Join Sampling and Wander Join both need, for a given row of
one table, the set of join partners in a neighbouring table in O(1)-ish
time -- the role secondary indexes play in the paper's baselines.  The
:class:`JoinIndex` below precomputes, per FK edge and direction, a CSR
style (offsets, row ids) adjacency list.
"""

from __future__ import annotations

import numpy as np

from repro.engine.join import match_parent_rows


class _Adjacency:
    """CSR adjacency: partners of row ``i`` are ``rows[offsets[i]:offsets[i+1]]``."""

    def __init__(self, offsets, rows):
        self.offsets = offsets
        self.rows = rows

    def partners(self, i):
        return self.rows[self.offsets[i] : self.offsets[i + 1]]

    def degree(self, i):
        return int(self.offsets[i + 1] - self.offsets[i])

    def degrees(self, indices):
        return (self.offsets[indices + 1] - self.offsets[indices]).astype(np.int64)


class JoinIndex:
    """All FK adjacencies of a database, in both directions."""

    def __init__(self, database):
        self.database = database
        self._adjacency = {}
        for fk in database.schema.foreign_keys:
            parent = database.table(fk.parent)
            child = database.table(fk.child)
            parent_rows = match_parent_rows(
                parent.columns[fk.pk_column], child.columns[fk.fk_column]
            )
            # parent -> children
            valid = parent_rows >= 0
            owners = parent_rows[valid]
            child_rows = np.flatnonzero(valid)
            order = np.argsort(owners, kind="mergesort")
            counts = np.bincount(owners, minlength=parent.n_rows)
            offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            self._adjacency[(fk.parent, fk.child)] = _Adjacency(
                offsets, child_rows[order]
            )
            # child -> parent (degree 0 or 1)
            counts = (parent_rows >= 0).astype(np.int64)
            offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            self._adjacency[(fk.child, fk.parent)] = _Adjacency(
                offsets, parent_rows[parent_rows >= 0]
            )

    def adjacency(self, from_table, to_table) -> _Adjacency:
        return self._adjacency[(from_table, to_table)]
