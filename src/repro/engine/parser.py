"""Parser for the SQL subset of the paper's query class.

Grammar (case-insensitive keywords)::

    query     := SELECT agg FROM tables [WHERE bool]
                 [GROUP BY cols [HAVING hcond (AND hcond)*]
                  [ORDER BY agg [ASC|DESC]] [LIMIT n]]
    agg       := COUNT(*) | SUM(col) | AVG(col)
    tables    := table [alias] ("," table [alias] | NATURAL JOIN table [alias]
                 | JOIN table [alias] [ON col = col])*
    bool      := conj (OR conj)*
    conj      := unit (AND unit)*
    unit      := NOT unit | "(" bool ")" | pred
    pred      := col op literal | col BETWEEN lit AND lit
               | col IN (lit, ...) | col IS [NOT] NULL | col = col (join)
    hcond     := agg op number
    col       := [name "."] name

Join conditions are validated against the schema's FK edges and then
dropped -- joins are implicit along FK edges, as in the query AST.
WHERE expressions are normalised: NOT is pushed to the atoms (De
Morgan; SQL three-valued logic preserved), then the tree is converted
to CNF whose singleton clauses become plain predicates and whose
multi-atom clauses become the query's OR groups (answered via
inclusion-exclusion).
"""

from __future__ import annotations

import re

from repro.engine.query import Aggregate, Having, Predicate, Query

_TOKEN = re.compile(
    r"\s*(?:(?P<num>-?\d+\.\d+|-?\d+)|(?P<str>'[^']*')|(?P<id>[A-Za-z_][\w.]*)"
    r"|(?P<op><>|<=|>=|!=|=|<|>|\(|\)|,|\*))"
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "group", "by", "join", "natural",
    "on", "count", "sum", "avg", "in", "between", "is", "not", "null",
    "inner", "left", "full", "outer", "as", "having", "order", "limit",
    "asc", "desc",
}

_MAX_CNF_CLAUSES = 128


def tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            if text[pos:].strip() in ("", ";"):
                break
            raise SyntaxError(f"cannot tokenize near: {text[pos:pos + 20]!r}")
        pos = match.end()
        if match.lastgroup == "num":
            value = match.group("num")
            tokens.append(("num", float(value) if "." in value else int(value)))
        elif match.lastgroup == "str":
            tokens.append(("str", match.group("str")[1:-1]))
        elif match.lastgroup == "id":
            word = match.group("id")
            if word.lower() in _KEYWORDS and "." not in word:
                tokens.append(("kw", word.lower()))
            else:
                tokens.append(("id", word))
        else:
            tokens.append(("op", match.group("op")))
    return tokens


class _Parser:
    def __init__(self, tokens, schema):
        self.tokens = tokens
        self.schema = schema
        self.pos = 0
        self.aliases = {}

    def peek(self, offset=0):
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else (None, None)

    def next(self):
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, kind, value=None):
        token_kind, token_value = self.next()
        if token_kind != kind or (value is not None and token_value != value):
            raise SyntaxError(f"expected {value or kind}, got {token_value!r}")
        return token_value

    # -- column references -------------------------------------------------
    def resolve_column(self, name):
        if "." in name:
            qualifier, column = name.split(".", 1)
            table = self.aliases.get(qualifier, qualifier)
            if table not in self.schema.tables:
                raise SyntaxError(f"unknown table or alias {qualifier!r}")
            return table, column
        candidates = [
            t for t in self.aliases.values()
            if self.schema.tables[t].has_attribute(name)
        ]
        if len(candidates) != 1:
            raise SyntaxError(f"ambiguous or unknown column {name!r}")
        return candidates[0], name

    # -- clauses -----------------------------------------------------------
    def parse(self):
        self.expect("kw", "select")
        agg_spec = self.parse_aggregate()
        self.expect("kw", "from")
        self.parse_tables()
        aggregate = self.finish_aggregate(agg_spec)
        predicates, disjunctions = [], []
        if self.peek() == ("kw", "where"):
            self.next()
            predicates, disjunctions = self.parse_where()
        group_by = []
        if self.peek() == ("kw", "group"):
            self.next()
            self.expect("kw", "by")
            group_by.append(self.resolve_column(self.expect("id")))
            while self.peek() == ("op", ","):
                self.next()
                group_by.append(self.resolve_column(self.expect("id")))
        having = self.parse_having()
        order = self.parse_order(aggregate)
        limit = self.parse_limit()
        tables = tuple(dict.fromkeys(self.aliases.values()))
        return Query(
            tables=tables,
            aggregate=aggregate,
            predicates=tuple(predicates),
            group_by=tuple(group_by),
            disjunctions=tuple(disjunctions),
            having=tuple(having),
            order=order,
            limit=limit,
        )

    def parse_having(self):
        if self.peek() != ("kw", "having"):
            return []
        self.next()
        clauses = [self.parse_having_condition()]
        while self.peek() == ("kw", "and"):
            self.next()
            clauses.append(self.parse_having_condition())
        return clauses

    def parse_having_condition(self):
        aggregate = self.finish_aggregate(self.parse_aggregate())
        kind, op = self.next()
        if kind != "op" or op not in ("=", "<>", "!=", "<", "<=", ">", ">="):
            raise SyntaxError(f"unsupported HAVING operator {op!r}")
        literal = self.parse_literal()
        if not isinstance(literal, (int, float)):
            raise SyntaxError("HAVING requires a numeric constant")
        return Having(aggregate, "<>" if op == "!=" else op, float(literal))

    def parse_order(self, aggregate):
        if self.peek() != ("kw", "order"):
            return None
        self.next()
        self.expect("kw", "by")
        ordered_on = self.finish_aggregate(self.parse_aggregate())
        if ordered_on != aggregate:
            raise SyntaxError(
                "ORDER BY must name the selected aggregate "
                f"({aggregate.describe()})"
            )
        direction = "asc"
        if self.peek() in (("kw", "asc"), ("kw", "desc")):
            direction = self.next()[1]
        return direction

    def parse_limit(self):
        if self.peek() != ("kw", "limit"):
            return None
        self.next()
        kind, value = self.next()
        if kind != "num" or not isinstance(value, int) or value < 1:
            raise SyntaxError("LIMIT requires a positive integer")
        return value

    def parse_aggregate(self):
        kind, value = self.next()
        if kind != "kw" or value not in ("count", "sum", "avg"):
            raise SyntaxError(f"expected aggregate, got {value!r}")
        self.expect("op", "(")
        if value == "count":
            if self.peek() == ("op", "*"):
                self.next()
            self.expect("op", ")")
            return ("COUNT", None)
        column = self.expect("id")
        self.expect("op", ")")
        return (value.upper(), column)

    def finish_aggregate(self, spec):
        function, column = spec
        if function == "COUNT":
            return Aggregate.count()
        table, column = self.resolve_column(column)
        return Aggregate(function, table, column)

    def parse_tables(self):
        self.parse_table_ref()
        while True:
            token = self.peek()
            if token == ("op", ","):
                self.next()
                self.parse_table_ref()
            elif token == ("kw", "natural"):
                self.next()
                self.expect("kw", "join")
                self.parse_table_ref()
            elif token == ("kw", "join") or token in (
                ("kw", "inner"), ("kw", "left"), ("kw", "full"),
            ):
                if token[1] in ("inner", "left", "full"):
                    self.next()
                    if self.peek() == ("kw", "outer"):
                        self.next()
                self.expect("kw", "join")
                self.parse_table_ref()
                if self.peek() == ("kw", "on"):
                    self.next()
                    self.parse_join_condition()
            else:
                break

    def parse_table_ref(self):
        name = self.expect("id")
        if name not in self.schema.tables:
            raise SyntaxError(f"unknown table {name!r}")
        alias = name
        if self.peek() == ("kw", "as"):
            self.next()
            alias = self.expect("id")
        elif self.peek()[0] == "id":
            alias = self.expect("id")
        self.aliases[alias] = name
        self.aliases.setdefault(name, name)

    def parse_join_condition(self):
        left_table, left_column = self.resolve_column(self.expect("id"))
        self.expect("op", "=")
        right_table, right_column = self.resolve_column(self.expect("id"))
        for fk in self.schema.foreign_keys:
            pair = {(fk.parent, fk.pk_column), (fk.child, fk.fk_column)}
            if pair == {(left_table, left_column), (right_table, right_column)}:
                return
        raise SyntaxError(
            f"join condition {left_table}.{left_column} = "
            f"{right_table}.{right_column} does not match a foreign key"
        )

    def parse_where(self):
        """Parse the WHERE clause into ``(predicates, disjunctions)``.

        The boolean expression (AND / OR / parentheses over atomic
        predicates) is normalised to conjunctive normal form; singleton
        clauses become plain predicates, multi-atom clauses become OR
        groups answered via inclusion-exclusion.
        """
        expression = _push_negations(self.parse_or_expression())
        clauses = _to_cnf(expression)
        predicates, disjunctions = [], []
        for clause in clauses:
            atoms = [a for a in clause if not isinstance(a, _JoinConditionMarker)]
            if len(atoms) < len(clause) and len(clause) > 1:
                raise SyntaxError("join conditions cannot appear inside OR")
            if not atoms:
                continue
            if len(atoms) == 1:
                predicates.append(atoms[0])
            else:
                disjunctions.append(tuple(dict.fromkeys(atoms)))
        return predicates, disjunctions

    def parse_or_expression(self):
        parts = [self.parse_and_expression()]
        while self.peek() == ("kw", "or"):
            self.next()
            parts.append(self.parse_and_expression())
        return parts[0] if len(parts) == 1 else ("or", parts)

    def parse_and_expression(self):
        parts = [self.parse_boolean_unit()]
        while self.peek() == ("kw", "and"):
            self.next()
            parts.append(self.parse_boolean_unit())
        return parts[0] if len(parts) == 1 else ("and", parts)

    def parse_boolean_unit(self):
        if self.peek() == ("kw", "not"):
            self.next()
            return ("not", self.parse_boolean_unit())
        if self.peek() == ("op", "("):
            self.next()
            inner = self.parse_or_expression()
            self.expect("op", ")")
            return inner
        return ("atom", self.parse_predicate())

    def parse_predicate(self):
        table, column = self.resolve_column(self.expect("id"))
        kind, value = self.next()
        if kind == "kw" and value == "is":
            if self.peek() == ("kw", "not"):
                self.next()
                self.expect("kw", "null")
                return Predicate(table, column, "IS NOT NULL")
            self.expect("kw", "null")
            return Predicate(table, column, "IS NULL")
        if kind == "kw" and value == "in":
            self.expect("op", "(")
            literals = [self.parse_literal()]
            while self.peek() == ("op", ","):
                self.next()
                literals.append(self.parse_literal())
            self.expect("op", ")")
            return Predicate(table, column, "IN", tuple(literals))
        if kind == "kw" and value == "between":
            low = self.parse_literal()
            self.expect("kw", "and")
            high = self.parse_literal()
            return Predicate(table, column, "BETWEEN", (low, high))
        if kind == "op" and value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = "<>" if value == "!=" else value
            # A column on the right-hand side is a join condition in the
            # WHERE clause (e.g. JOB-light style t.id = ci.movie_id).
            next_kind, next_value = self.peek()
            if op == "=" and next_kind == "id":
                probe = self.pos
                try:
                    self.resolve_column(next_value)
                except SyntaxError:
                    pass
                else:
                    self.pos = probe + 1
                    right = self.resolve_column(next_value)
                    self._validate_fk_pair((table, column), right)
                    return None_PREDICATE
            literal = self.parse_literal()
            return Predicate(table, column, op, literal)
        raise SyntaxError(f"unsupported predicate operator {value!r}")

    def _validate_fk_pair(self, left, right):
        for fk in self.schema.foreign_keys:
            pair = {(fk.parent, fk.pk_column), (fk.child, fk.fk_column)}
            if pair == {left, right}:
                return
        raise SyntaxError(f"equality {left} = {right} does not match a foreign key")

    def parse_literal(self):
        kind, value = self.next()
        if kind in ("num", "str"):
            return value
        if kind == "kw" and value == "null":
            return None
        raise SyntaxError(f"expected literal, got {value!r}")


class _JoinConditionMarker:
    """Sentinel for WHERE-clause join conditions (dropped after check)."""


None_PREDICATE = _JoinConditionMarker()


def _push_negations(expression):
    """Eliminate ``not`` nodes: De Morgan over AND/OR, negated atoms.

    Atom negation follows SQL three-valued logic -- a negated comparison
    still excludes NULL rows (``NOT (x < 5)`` is not true for NULL x),
    which the negated operators' ranges encode already.  ``NOT IN``
    becomes a conjunction of ``<>`` atoms; ``NOT BETWEEN`` becomes a
    disjunction of the two outside ranges.
    """
    kind = expression[0]
    if kind == "atom":
        return expression
    if kind in ("and", "or"):
        return (kind, [_push_negations(child) for child in expression[1]])
    if kind == "not":
        inner = expression[1]
        inner_kind = inner[0]
        if inner_kind == "not":
            return _push_negations(inner[1])
        if inner_kind == "and":
            return _push_negations(("or", [("not", c) for c in inner[1]]))
        if inner_kind == "or":
            return _push_negations(("and", [("not", c) for c in inner[1]]))
        return _negate_atom(inner[1])
    raise SyntaxError(f"unknown boolean node {kind!r}")


_NEGATED_OPS = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def _negate_atom(predicate):
    """Negation of one predicate, as a boolean expression tree."""
    if isinstance(predicate, _JoinConditionMarker):
        raise SyntaxError("join conditions cannot be negated")
    op = predicate.op
    if op in _NEGATED_OPS:
        return ("atom", Predicate(
            predicate.table, predicate.column, _NEGATED_OPS[op], predicate.value
        ))
    if op == "IS NULL":
        return ("atom", Predicate(predicate.table, predicate.column, "IS NOT NULL"))
    if op == "IS NOT NULL":
        return ("atom", Predicate(predicate.table, predicate.column, "IS NULL"))
    if op == "IN":
        return (
            "and",
            [
                ("atom", Predicate(predicate.table, predicate.column, "<>", v))
                for v in predicate.value
            ],
        )
    if op == "BETWEEN":
        low, high = predicate.value
        return (
            "or",
            [
                ("atom", Predicate(predicate.table, predicate.column, "<", low)),
                ("atom", Predicate(predicate.table, predicate.column, ">", high)),
            ],
        )
    raise SyntaxError(f"cannot negate operator {op!r}")


def _to_cnf(expression):
    """Boolean expression tree -> list of clauses (each a list of atoms).

    ``or`` distributes over the children's clause lists, which can grow
    multiplicatively; expressions needing more than ``_MAX_CNF_CLAUSES``
    clauses are rejected.
    """
    kind = expression[0]
    if kind == "atom":
        return [[expression[1]]]
    if kind == "and":
        clauses = []
        for child in expression[1]:
            clauses.extend(_to_cnf(child))
        return clauses
    if kind == "or":
        clauses = [[]]
        for child in expression[1]:
            child_clauses = _to_cnf(child)
            clauses = [
                existing + extra
                for existing in clauses
                for extra in child_clauses
            ]
            if len(clauses) > _MAX_CNF_CLAUSES:
                raise SyntaxError("WHERE clause is too complex to normalise")
        return clauses
    raise SyntaxError(f"unknown boolean node {kind!r}")


def parse_query(sql, schema):
    """Parse ``sql`` into a :class:`~repro.engine.query.Query`.

    Join conditions (explicit ``ON`` or WHERE-clause key equalities) are
    validated against the schema's FK edges and then represented
    implicitly, matching the engine's query model.
    """
    parser = _Parser(tokenize(sql), schema)
    query = parser.parse()
    predicates = tuple(
        p for p in query.predicates if not isinstance(p, _JoinConditionMarker)
    )
    return Query(
        tables=query.tables,
        aggregate=query.aggregate,
        predicates=predicates,
        group_by=query.group_by,
        disjunctions=query.disjunctions,
        having=query.having,
        order=query.order,
        limit=query.limit,
    )
