"""Vectorised predicate evaluation on encoded columns.

Comparisons follow SQL three-valued logic: a predicate on a NULL value
is not true, so NULL rows never satisfy ``=``, ``<>``, ranges or ``IN``;
they only satisfy ``IS NULL``.
"""

from __future__ import annotations

import numpy as np


def predicate_mask(table, predicate):
    """Boolean mask of rows of ``table`` satisfying ``predicate``."""
    values = table.columns[predicate.column]
    not_null = ~np.isnan(values)
    op = predicate.op
    if op == "IS NULL":
        return ~not_null
    if op == "IS NOT NULL":
        return not_null

    if op == "IN":
        codes = [table.encode_value(predicate.column, v) for v in predicate.value]
        codes = [c for c in codes if c is not None]
        if not codes:
            return np.zeros(table.n_rows, dtype=bool)
        mask = np.isin(values, np.asarray(codes, dtype=float))
        return mask & not_null
    if op == "BETWEEN":
        low = table.encode_value(predicate.column, predicate.value[0])
        high = table.encode_value(predicate.column, predicate.value[1])
        if low is None or high is None:
            return np.zeros(table.n_rows, dtype=bool)
        with np.errstate(invalid="ignore"):
            return (values >= low) & (values <= high)

    constant = table.encode_value(predicate.column, predicate.value)
    if constant is None:
        # Unknown categorical constant: '=' selects nothing, '<>' selects
        # every non-NULL row.
        if op == "<>":
            return not_null.copy()
        return np.zeros(table.n_rows, dtype=bool)
    with np.errstate(invalid="ignore"):
        if op == "=":
            return values == constant
        if op == "<>":
            return not_null & (values != constant)
        if op == "<":
            return values < constant
        if op == "<=":
            return values <= constant
        if op == ">":
            return values > constant
        if op == ">=":
            return values >= constant
    raise ValueError(f"unsupported operator {op!r}")


def conjunction_mask(table, predicates):
    """Mask of rows satisfying all ``predicates`` (empty list = all rows)."""
    mask = np.ones(table.n_rows, dtype=bool)
    for predicate in predicates:
        mask &= predicate_mask(table, predicate)
    return mask
