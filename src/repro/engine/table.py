"""Dictionary-encoded column-store tables and the database container.

Every column is stored as a ``float64`` numpy array.  Categorical values
are dictionary-encoded to integer codes (exact in float64 far beyond any
vocabulary size used here); ``NaN`` represents SQL NULL uniformly for
both categorical and numeric columns.  This single representation keeps
the exact executor, the RSPN learner and all baselines on one data path.
"""

from __future__ import annotations

import numpy as np

from repro.schema.schema import Attribute, TableSchema


class Table:
    """One table: a :class:`TableSchema` plus encoded column arrays."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.columns: dict[str, np.ndarray] = {}
        self.vocabularies: dict[str, list] = {}
        self._vocab_index: dict[str, dict] = {}
        self.n_rows = 0

    @property
    def name(self):
        return self.schema.name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, schema: TableSchema, columns: dict):
        """Build a table from raw (unencoded) column data.

        ``columns`` maps attribute name to a sequence; ``None`` entries
        and ``NaN`` floats become NULL.  Categorical columns may contain
        arbitrary hashable values (strings, ints); they are dictionary
        encoded in order of first appearance.
        """
        table = cls(schema)
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ValueError("all columns must have equal length")
        table.n_rows = lengths.pop() if lengths else 0
        for attr in schema.attributes:
            if attr.name not in columns:
                raise KeyError(f"missing column {attr.name!r} for table {schema.name!r}")
            raw = columns[attr.name]
            if attr.kind == "categorical":
                table._set_categorical(attr.name, raw)
            else:
                table.columns[attr.name] = _to_float_array(raw)
        return table

    def _set_categorical(self, name, raw):
        vocab = self.vocabularies.setdefault(name, [])
        index = self._vocab_index.setdefault(name, {})
        codes = np.empty(len(raw), dtype=float)
        for i, value in enumerate(raw):
            if value is None or (isinstance(value, float) and np.isnan(value)):
                codes[i] = np.nan
                continue
            code = index.get(value)
            if code is None:
                code = len(vocab)
                vocab.append(value)
                index[value] = code
            codes[i] = code
        self.columns[name] = codes

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    def is_categorical(self, column):
        return column in self.vocabularies

    def encode_value(self, column, value):
        """Encode one raw constant for use in predicates.

        Returns ``None`` when a categorical constant does not occur in
        the vocabulary (the predicate then selects nothing for ``=`` /
        everything for ``<>``).
        """
        if value is None:
            return None
        if column in self.vocabularies:
            return self._vocab_index[column].get(value)
        return float(value)

    def decode_value(self, column, code):
        if code is None or (isinstance(code, float) and np.isnan(code)):
            return None
        if column in self.vocabularies:
            return self.vocabularies[column][int(code)]
        return code

    def distinct_values(self, column, decoded=False):
        """Sorted distinct non-NULL values of a column."""
        values = self.columns[column]
        codes = np.unique(values[~np.isnan(values)])
        if decoded and column in self.vocabularies:
            return [self.vocabularies[column][int(c)] for c in codes]
        return codes

    def null_fraction(self, column):
        if self.n_rows == 0:
            return 0.0
        return float(np.isnan(self.columns[column]).mean())

    # ------------------------------------------------------------------
    # Mutation (used by the update experiments)
    # ------------------------------------------------------------------
    def add_column(self, name, values, kind="numeric"):
        """Attach a derived column (e.g. a tuple factor) to this table."""
        values = _to_float_array(values)
        if self.n_rows and len(values) != self.n_rows:
            raise ValueError("column length mismatch")
        if not self.schema.has_attribute(name):
            self.schema.attributes.append(Attribute(name, kind))
        self.columns[name] = values

    def append_rows(self, columns: dict):
        """Append raw rows (same format as :meth:`from_columns`)."""
        new_sizes = {len(values) for values in columns.values()}
        if len(new_sizes) != 1:
            raise ValueError("all appended columns must have equal length")
        extra = new_sizes.pop()
        for attr in self.schema.attributes:
            if attr.name not in columns:
                raise KeyError(f"missing column {attr.name!r} in append")
            raw = columns[attr.name]
            if attr.name in self.vocabularies:
                old = self.columns[attr.name]
                self._append_categorical(attr.name, raw)
                assert len(self.columns[attr.name]) == len(old) + extra
            else:
                self.columns[attr.name] = np.concatenate(
                    [self.columns[attr.name], _to_float_array(raw)]
                )
        self.n_rows += extra

    def _append_categorical(self, name, raw):
        vocab = self.vocabularies[name]
        index = self._vocab_index[name]
        codes = np.empty(len(raw), dtype=float)
        for i, value in enumerate(raw):
            if value is None or (isinstance(value, float) and np.isnan(value)):
                codes[i] = np.nan
                continue
            code = index.get(value)
            if code is None:
                code = len(vocab)
                vocab.append(value)
                index[value] = code
            codes[i] = code
        self.columns[name] = np.concatenate([self.columns[name], codes])

    def select(self, mask_or_rows):
        """New table holding the selected rows (shares schema/vocabs)."""
        selected = Table(self.schema)
        selected.vocabularies = self.vocabularies
        selected._vocab_index = self._vocab_index
        for name, values in self.columns.items():
            selected.columns[name] = values[mask_or_rows]
        any_column = next(iter(selected.columns.values()), np.empty(0))
        selected.n_rows = len(any_column)
        return selected

    def row(self, i, columns=None):
        names = columns if columns is not None else list(self.columns)
        return {name: self.columns[name][i] for name in names}

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return f"Table({self.name!r}, rows={self.n_rows}, cols={len(self.columns)})"


class Database:
    """A schema graph plus the tables holding its data."""

    def __init__(self, schema_graph):
        self.schema = schema_graph
        self.tables: dict[str, Table] = {}

    def add_table(self, table: Table):
        if table.name not in self.schema.tables:
            raise KeyError(f"table {table.name!r} not in schema")
        self.tables[table.name] = table
        return table

    def table(self, name) -> Table:
        return self.tables[name]

    def __contains__(self, name):
        return name in self.tables

    def table_names(self):
        return list(self.tables)

    def total_rows(self):
        return sum(t.n_rows for t in self.tables.values())

    def __repr__(self):
        parts = ", ".join(f"{t.name}={t.n_rows}" for t in self.tables.values())
        return f"Database({parts})"


def _to_float_array(raw):
    if isinstance(raw, np.ndarray) and raw.dtype == float:
        return raw.astype(float, copy=True)
    values = np.empty(len(raw), dtype=float)
    for i, value in enumerate(raw):
        values[i] = np.nan if value is None else float(value)
    return values
