"""Query AST for the query class supported by the paper.

Supported (Section 4.1/4.2 of the paper): COUNT/SUM/AVG aggregates,
conjunctions of predicates of the form ``attribute op constant`` with
``op`` one of ``= <> < <= > >= IN BETWEEN IS NULL / IS NOT NULL``,
equi-joins along foreign-key edges, GROUP BY, and left/right/full outer
joins.  String pattern matching, arithmetic expressions and UDFs are out
of scope, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=", "IN", "BETWEEN", "IS NULL", "IS NOT NULL")

INNER = "inner"
FULL_OUTER = "full_outer"
LEFT_OUTER = "left_outer"


@dataclass(frozen=True)
class Predicate:
    """One filter condition ``table.column op value``.

    ``value`` holds the raw (unencoded) constant: a scalar for comparison
    operators, a tuple/list for ``IN``, a ``(low, high)`` pair for
    ``BETWEEN`` and ``None`` for the NULL tests.
    """

    table: str
    column: str
    op: str
    value: object = None

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if self.op == "IN" and not isinstance(self.value, (tuple, list, set, frozenset)):
            raise ValueError("IN predicate requires a collection value")
        if self.op == "BETWEEN":
            if not isinstance(self.value, (tuple, list)) or len(self.value) != 2:
                raise ValueError("BETWEEN requires a (low, high) pair")

    @property
    def qualified_column(self):
        return f"{self.table}.{self.column}"

    def describe(self):
        if self.op in ("IS NULL", "IS NOT NULL"):
            return f"{self.qualified_column} {self.op}"
        return f"{self.qualified_column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Aggregate:
    """Aggregate function: COUNT(*), SUM(t.c) or AVG(t.c)."""

    function: str
    table: str | None = None
    column: str | None = None

    def __post_init__(self):
        if self.function not in ("COUNT", "SUM", "AVG"):
            raise ValueError(f"unsupported aggregate {self.function!r}")
        if self.function != "COUNT" and (self.table is None or self.column is None):
            raise ValueError(f"{self.function} requires a target column")

    @property
    def qualified_column(self):
        if self.table is None:
            return None
        return f"{self.table}.{self.column}"

    def describe(self):
        if self.function == "COUNT":
            return "COUNT(*)"
        return f"{self.function}({self.qualified_column})"

    @classmethod
    def count(cls):
        return cls("COUNT")

    @classmethod
    def sum(cls, table, column):
        return cls("SUM", table, column)

    @classmethod
    def avg(cls, table, column):
        return cls("AVG", table, column)


_HAVING_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Having:
    """One HAVING condition: ``aggregate op constant``.

    The aggregate may differ from the query's selected aggregate (e.g.
    ``SELECT AVG(x) ... GROUP BY g HAVING COUNT(*) > 10``); several
    Having clauses are combined with AND.
    """

    aggregate: Aggregate
    op: str
    value: float

    def __post_init__(self):
        if self.op not in _HAVING_OPS:
            raise ValueError(f"unsupported HAVING operator {self.op!r}")

    def accepts(self, aggregate_value):
        """SQL comparison; NULL aggregate values never qualify."""
        if aggregate_value is None:
            return False
        comparators = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return comparators[self.op](aggregate_value, self.value)

    def describe(self):
        return f"{self.aggregate.describe()} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Query:
    """One aggregate query over a connected set of tables.

    Joins are implicit: the FK edges of the schema graph induced by
    ``tables`` define the (tree-shaped) join.  ``join_kind`` applies to
    all joins of the query; the paper's outer-join extension (Section
    4.2) only changes which NULL-extended tuples are filtered out.

    ``disjunctions`` extends the conjunctive predicate class with OR:
    each entry is a tuple of predicates combined with OR, and all entries
    are combined with AND with each other and with ``predicates`` (i.e.
    the WHERE clause is in conjunctive normal form with atomic literals).
    The query compiler answers such queries through the
    inclusion-exclusion principle, as the paper suggests in Section 4.1.

    Group-by queries additionally support ``having`` (AND of
    :class:`Having` conditions on per-group aggregates), ordering of the
    groups by the selected aggregate value (``order`` of ``"asc"`` /
    ``"desc"``) and ``limit`` (top-k groups after ordering).
    """

    tables: tuple
    aggregate: Aggregate = field(default_factory=Aggregate.count)
    predicates: tuple = ()
    group_by: tuple = ()
    join_kind: str = INNER
    disjunctions: tuple = ()
    having: tuple = ()
    order: str | None = None
    limit: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "tables", tuple(self.tables))
        object.__setattr__(self, "predicates", tuple(self.predicates))
        object.__setattr__(self, "group_by", tuple(self.group_by))
        object.__setattr__(
            self, "disjunctions", tuple(tuple(group) for group in self.disjunctions)
        )
        if self.join_kind not in (INNER, FULL_OUTER, LEFT_OUTER):
            raise ValueError(f"unsupported join kind {self.join_kind!r}")
        for predicate in self.predicates:
            if predicate.table not in self.tables:
                raise ValueError(
                    f"predicate on {predicate.table!r} but query tables are {self.tables}"
                )
        for group in self.disjunctions:
            if not group:
                raise ValueError("empty OR group")
            for predicate in group:
                if predicate.table not in self.tables:
                    raise ValueError(
                        f"predicate on {predicate.table!r} but query tables "
                        f"are {self.tables}"
                    )
        for table, _column in self.group_by:
            if table not in self.tables:
                raise ValueError(f"group-by on {table!r} not in query tables")
        object.__setattr__(self, "having", tuple(self.having))
        if (self.having or self.order or self.limit is not None) and not self.group_by:
            raise ValueError("HAVING / ORDER / LIMIT require GROUP BY")
        for clause in self.having:
            table = clause.aggregate.table
            if table is not None and table not in self.tables:
                raise ValueError(f"HAVING on {table!r} not in query tables")
        if self.order not in (None, "asc", "desc"):
            raise ValueError(f"unsupported order {self.order!r}")
        if self.limit is not None and self.limit < 1:
            raise ValueError("LIMIT must be positive")

    @property
    def has_disjunctions(self):
        return bool(self.disjunctions)

    def predicates_on(self, table):
        return [p for p in self.predicates if p.table == table]

    def with_extra_predicates(self, extra):
        return Query(
            tables=self.tables,
            aggregate=self.aggregate,
            predicates=tuple(self.predicates) + tuple(extra),
            group_by=(),
            join_kind=self.join_kind,
            disjunctions=self.disjunctions,
        )

    def without_group_by(self):
        if not self.group_by:
            return self
        return Query(
            tables=self.tables,
            aggregate=self.aggregate,
            predicates=self.predicates,
            group_by=(),
            join_kind=self.join_kind,
            disjunctions=self.disjunctions,
        )

    def without_disjunctions(self):
        if not self.disjunctions:
            return self
        return Query(
            tables=self.tables,
            aggregate=self.aggregate,
            predicates=self.predicates,
            group_by=self.group_by,
            join_kind=self.join_kind,
            having=self.having,
            order=self.order,
            limit=self.limit,
        )

    def with_aggregate(self, aggregate):
        return Query(
            tables=self.tables,
            aggregate=aggregate,
            predicates=self.predicates,
            group_by=self.group_by,
            join_kind=self.join_kind,
            disjunctions=self.disjunctions,
            having=self.having,
            order=self.order,
            limit=self.limit,
        )

    def describe(self):
        parts = [f"SELECT {self.aggregate.describe()}"]
        parts.append("FROM " + ", ".join(self.tables))
        clauses = [p.describe() for p in self.predicates]
        clauses += [
            "(" + " OR ".join(p.describe() for p in group) + ")"
            for group in self.disjunctions
        ]
        if clauses:
            parts.append("WHERE " + " AND ".join(clauses))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(f"{t}.{c}" for t, c in self.group_by))
        if self.having:
            parts.append("HAVING " + " AND ".join(h.describe() for h in self.having))
        if self.order:
            parts.append(f"ORDER BY {self.aggregate.describe()} {self.order.upper()}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    def __str__(self):
        return self.describe()


def count_query(tables, predicates=(), join_kind=INNER):
    """Convenience constructor for cardinality-style COUNT queries."""
    return Query(tables=tuple(tables), predicates=tuple(predicates), join_kind=join_kind)
