"""The RSPN facade: a learned model of one relation (table or join).

An RSPN wraps an SPN tree with everything the paper layers on top
(Section 3.2):

- qualified column names mapped to scope indices,
- NULL-aware leaves (handled inside :mod:`repro.core.leaves`),
- functional dependency dictionaries (columns determined by another
  column are kept out of the model and predicates on them translated),
- direct updates (insert/delete) that also maintain the represented
  full relation size, honouring the sampling rate used for learning,
- the table metadata the probabilistic query compiler needs: which
  tables the model spans, the FK edges internal to its join, tuple
  factor columns and NULL indicator columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import inference
from repro.core.inference import EvaluationSpec
from repro.core.learning import LearningConfig, learn_structure
from repro.core.nodes import count_nodes
from repro.core.ranges import Range
from repro.core.updates import update_tuple


@dataclass
class RspnConfig:
    """User-facing hyperparameters (paper defaults in parentheses)."""

    rdc_threshold: float = 0.3          # (0.3)
    min_instances_fraction: float = 0.01  # (1% of the input data)
    max_distinct_leaf: int = 512
    n_bins: int = 128
    rdc_sample: int = 5_000
    seed: int = 0

    def learning_config(self):
        return LearningConfig(
            rdc_threshold=self.rdc_threshold,
            min_instances_fraction=self.min_instances_fraction,
            max_distinct_leaf=self.max_distinct_leaf,
            n_bins=self.n_bins,
            rdc_sample=self.rdc_sample,
            seed=self.seed,
        )


@dataclass
class FunctionalDependency:
    """``source -> dependent``: the dependent column is determined by source.

    ``mapping`` maps encoded source values to encoded dependent values;
    it is learned from the data when the RSPN is built.
    """

    source: str
    dependent: str
    mapping: dict = field(default_factory=dict)

    def translate(self, dependent_range: Range) -> Range:
        """Translate a range over the dependent column into source values."""
        sources = [s for s, d in self.mapping.items() if dependent_range.contains(d)]
        translated = Range.points(sources) if sources else Range.nothing()
        if dependent_range.include_null:
            translated = Range(translated.intervals, include_null=True)
        return translated


class RSPN:
    """A learned SPN over one relation, with relational metadata."""

    def __init__(
        self,
        root,
        column_names,
        tables,
        full_size,
        sample_size,
        internal_edges=(),
        functional_dependencies=(),
        config=None,
    ):
        self.root = root
        self.column_names = list(column_names)
        self.column_index = {name: i for i, name in enumerate(self.column_names)}
        self.tables = frozenset(tables)
        self.full_size = float(full_size)
        self.sample_size = float(sample_size)
        self.internal_edges = list(internal_edges)
        self.functional_dependencies = {
            fd.dependent: fd for fd in functional_dependencies
        }
        self.config = config or RspnConfig()
        # Shared batch executor (e.g. a ShardedEvaluator) used by
        # :meth:`expectation_batch` when no explicit one is passed;
        # attached via :meth:`repro.core.ensemble.SPNEnsemble.set_evaluator`.
        self.evaluator = None

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    @classmethod
    def learn(
        cls,
        data,
        column_names,
        discrete_flags,
        tables,
        full_size=None,
        internal_edges=(),
        functional_dependencies=(),
        config=None,
    ):
        """Learn an RSPN from a data matrix (rows x columns, NaN = NULL).

        ``full_size`` is the size of the represented relation (the full
        table or full outer join); when the matrix is a sample, pass the
        true size so query compilation scales correctly.  Columns listed
        as functional-dependency dependents are excluded from the SPN and
        served through the learned dictionary instead.
        """
        data = np.asarray(data, dtype=float)
        column_names = list(column_names)
        config = config or RspnConfig()
        fds = []
        dependents = set()
        for fd in functional_dependencies:
            fd = _learn_fd(fd, data, column_names)
            fds.append(fd)
            dependents.add(fd.dependent)
        keep = [i for i, name in enumerate(column_names) if name not in dependents]
        kept_names = [column_names[i] for i in keep]
        kept_flags = [discrete_flags[i] for i in keep]
        kept_data = data[:, keep]
        root = learn_structure(kept_data, kept_flags, config.learning_config())
        return cls(
            root=root,
            column_names=kept_names,
            tables=tables,
            full_size=float(full_size if full_size is not None else data.shape[0]),
            sample_size=float(data.shape[0]),
            internal_edges=internal_edges,
            functional_dependencies=fds,
            config=config,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_join_model(self):
        return len(self.tables) > 1

    @property
    def sample_fraction(self):
        if self.full_size <= 0:
            return 1.0
        return min(1.0, self.sample_size / self.full_size)

    def has_column(self, name):
        return name in self.column_index or name in self.functional_dependencies

    def node_counts(self):
        return count_nodes(self.root)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _build_spec(self, conditions=None, transforms=None):
        spec = EvaluationSpec()
        for name, rng in (conditions or {}).items():
            fd = self.functional_dependencies.get(name)
            if fd is not None:
                name, rng = fd.source, fd.translate(rng)
            if name not in self.column_index:
                raise KeyError(f"RSPN over {sorted(self.tables)} has no column {name!r}")
            spec.condition(self.column_index[name], rng)
        for name, transform_list in (transforms or {}).items():
            if name not in self.column_index:
                raise KeyError(f"RSPN over {sorted(self.tables)} has no column {name!r}")
            for transform in transform_list:
                spec.transform(self.column_index[name], transform)
        return spec

    def evaluate_specs(self, specs, executor=None):
        """Evaluate prepared :class:`EvaluationSpec`\\ s in one sweep.

        The single funnel every expectation takes to the compiled form;
        :class:`~repro.core.modelstore.MappedRSPN` overrides it to serve
        from the store-restored compiled form without materialising the
        node tree.
        """
        return inference.evaluate_batch(self.root, specs, executor=executor)

    def expectation(self, conditions=None, transforms=None):
        """E[ prod h_i(X_i) * 1_{conditions} ] under the model."""
        spec = self._build_spec(conditions, transforms)
        return float(self.evaluate_specs([spec])[0])

    def expectation_batch(self, requests, executor=None):
        """Batched :meth:`expectation`: one compiled bottom-up sweep.

        ``requests`` is a sequence of ``(conditions, transforms)`` pairs
        (either element may be ``None``); returns an array of
        ``len(requests)`` floats.  This is the entry point the
        probabilistic query compiler uses to evaluate all expectation
        sub-queries of one SQL query -- and all GROUP BY groups -- in a
        single pass over this RSPN.

        ``executor`` shards the sweep across worker processes; when
        omitted the ensemble-attached :attr:`evaluator` (if any)
        applies, so consumers that batch -- the compiler, the ML heads,
        each coalesced serving flush -- fan out without signature
        changes.  Sharded results are bit-identical to serial under
        either spec transport (the zero-copy shared-memory default or
        the pickle fallback; see :mod:`repro.core.sharding`).
        """
        specs = [
            self._build_spec(conditions, transforms)
            for conditions, transforms in requests
        ]
        if executor is None:
            executor = self.evaluator
        return self.evaluate_specs(specs, executor=executor)

    def invalidate_compiled(self):
        """Mark the cached flat-array form stale after out-of-band tree
        mutations by bumping :attr:`generation`.
        :meth:`insert`/:meth:`delete` invalidate implicitly through
        :func:`repro.core.updates.update_tuple`."""
        from repro.core import compiled

        compiled.invalidate(self.root)

    @property
    def generation(self):
        """Monotonic mutation counter of this model (0 when untouched).

        Every :meth:`insert`/:meth:`delete` (and any out-of-band
        :meth:`invalidate_compiled`) bumps it.  Consumers that cache
        anything derived from this RSPN -- the compiled flat-array form,
        a serving-layer result cache -- compare generations instead of
        guessing when to invalidate.
        """
        from repro.core import compiled

        return compiled.generation(self.root)

    def compiled_peek(self):
        """The cached compiled form if present and current, else ``None``
        (never compiles -- the telemetry-safe accessor
        :meth:`~repro.deepdb.DeepDB.kernel_stats` aggregates over)."""
        from repro.core import compiled

        return compiled.peek(self.root)

    def probability(self, conditions):
        """P(conditions) under the model."""
        return self.expectation(conditions=conditions)

    def estimate_count(self, conditions):
        """Estimated number of rows of the represented relation matching."""
        return self.full_size * self.probability(conditions)

    # ------------------------------------------------------------------
    # Updates (Section 5.2)
    # ------------------------------------------------------------------
    def _row_vector(self, row: dict):
        vector = np.full(len(self.column_names), np.nan)
        for name, value in row.items():
            if name in self.functional_dependencies:
                continue
            index = self.column_index.get(name)
            if index is None:
                raise KeyError(f"unknown column {name!r}")
            vector[index] = np.nan if value is None else float(value)
        return vector

    def insert(self, row: dict):
        """Absorb one inserted tuple (encoded values, keyed by column name).

        The represented full size grows by ``1 / sample_fraction`` so a
        model learned on a p%-sample stays calibrated when updated with a
        p%-sample of the inserted tuples, as in Section 6.1.
        """
        update_tuple(self.root, self._row_vector(row), sign=+1)
        self.sample_size += 1
        self.full_size += 1.0 / self.sample_fraction if self.sample_fraction > 0 else 1.0

    def delete(self, row: dict):
        """Remove one tuple (encoded values, keyed by column name)."""
        update_tuple(self.root, self._row_vector(row), sign=-1)
        growth = 1.0 / self.sample_fraction if self.sample_fraction > 0 else 1.0
        self.sample_size = max(0.0, self.sample_size - 1)
        self.full_size = max(0.0, self.full_size - growth)

    # -- batched updates (streaming ingest) ----------------------------
    def stage_batch(self, ops):
        """Stage many ``(row, sign)`` tuple updates without mutating.

        ``ops`` is an iterable of ``(row dict, +1/-1)``.  Routing and
        histogram arithmetic run now, against copy-on-write shadows
        (:class:`repro.core.updates.TreeBatch`), so concurrent readers
        keep sweeping one consistent tree.  Returns an opaque pending
        batch for :meth:`commit_batch`.  Staging and committing must be
        serialized against other writers (the serving session's ingest
        lock does this); readers need no coordination.
        """
        from repro.core.updates import TreeBatch

        batch = TreeBatch(self.root)
        signs = []
        for row, sign in ops:
            batch.stage(self._row_vector(row), sign)
            signs.append(sign)
        return (batch, signs)

    def commit_batch(self, pending):
        """Publish a staged batch: one generation bump for the whole
        batch, size bookkeeping replayed per tuple exactly as the
        serial :meth:`insert`/:meth:`delete` would have.  Returns the
        :class:`repro.core.updates.BatchDelta` of touched rows
        (``None`` for an empty batch)."""
        batch, signs = pending
        delta = batch.commit()
        for sign in signs:
            if sign > 0:
                self.sample_size += 1
                self.full_size += (
                    1.0 / self.sample_fraction
                    if self.sample_fraction > 0 else 1.0
                )
            else:
                growth = (
                    1.0 / self.sample_fraction
                    if self.sample_fraction > 0 else 1.0
                )
                self.sample_size = max(0.0, self.sample_size - 1)
                self.full_size = max(0.0, self.full_size - growth)
        return delta

    def apply_batch(self, ops):
        """Stage and immediately commit ``(row, sign)`` updates; the
        single-caller convenience over
        :meth:`stage_batch`/:meth:`commit_batch`."""
        return self.commit_batch(self.stage_batch(ops))

    def __repr__(self):
        counts = self.node_counts()
        return (
            f"RSPN(tables={sorted(self.tables)}, rows={self.full_size:.0f}, "
            f"cols={len(self.column_names)}, nodes={counts})"
        )


def _learn_fd(fd, data, column_names):
    """Fill a FunctionalDependency's mapping from the data."""
    if fd.mapping:
        return fd
    if fd.source not in column_names or fd.dependent not in column_names:
        raise KeyError(f"functional dependency {fd.source} -> {fd.dependent} "
                       "references unknown columns")
    source = data[:, column_names.index(fd.source)]
    dependent = data[:, column_names.index(fd.dependent)]
    mapping = {}
    mask = ~np.isnan(source)
    for s, d in zip(source[mask], dependent[mask]):
        mapping.setdefault(float(s), None if np.isnan(d) else float(d))
    return FunctionalDependency(fd.source, fd.dependent, mapping)
