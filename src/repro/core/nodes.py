"""SPN node structure: sum nodes, product nodes, leaves.

Tree-structured SPNs as reviewed in Section 3.1 of the paper: sum nodes
mix row clusters, product nodes factorise independent column groups,
leaves model single attributes.  Sum nodes keep their KMeans cluster
centers and per-child row counts so Algorithm 1 can route updates and
renormalise weights.
"""

from __future__ import annotations

import numpy as np


class Node:
    """Base node; ``scope`` is the tuple of attribute indices it models."""

    def __init__(self, scope):
        self.scope = tuple(scope)

    @property
    def scope_set(self):
        return frozenset(self.scope)


class SumNode(Node):
    """Mixture over row clusters.

    ``counts[i]`` is the (possibly fractional after weighted learning)
    number of training rows routed to child ``i``; weights are derived.
    ``kmeans`` retains the clustering model used to split the rows so
    that inserted/deleted tuples can be routed to the nearest cluster.
    """

    def __init__(self, scope, children, counts, kmeans=None):
        super().__init__(scope)
        self.children = list(children)
        self.counts = np.asarray(counts, dtype=float)
        if self.counts.shape[0] != len(self.children):
            raise ValueError("one count per child required")
        self.kmeans = kmeans
        self._weights = None

    @property
    def weights(self):
        """Normalised mixture weights, cached until the counts change.

        Callers must treat the returned array as read-only; mutate the
        counts through :meth:`adjust_count` so the cache (and any
        compiled form of the tree) can be invalidated.
        """
        if self._weights is None:
            total = self.counts.sum()
            if total <= 0:
                self._weights = np.full(
                    self.counts.shape[0], 1.0 / self.counts.shape[0]
                )
            else:
                self._weights = self.counts / total
        return self._weights

    def adjust_count(self, index, delta):
        """Route ``delta`` tuples to child ``index`` (Algorithm 1)."""
        self.counts[index] = max(0.0, self.counts[index] + delta)
        self._weights = None

    def route(self, row_values):
        """Child index for an inserted/deleted tuple (Algorithm 1, line 5)."""
        if self.kmeans is None:
            return int(np.argmax(self.counts))
        return self.kmeans.nearest_center(row_values)


class ProductNode(Node):
    """Factorisation over independent column groups (disjoint child scopes)."""

    def __init__(self, scope, children):
        super().__init__(scope)
        self.children = list(children)
        covered = [i for child in self.children for i in child.scope]
        if sorted(covered) != sorted(scope) or len(set(covered)) != len(covered):
            raise ValueError("product children must partition the scope")


class LeafNode(Node):
    """Univariate leaf; concrete distributions live in :mod:`repro.core.leaves`."""

    def __init__(self, scope_index, attribute):
        super().__init__((scope_index,))
        self.attribute = attribute

    @property
    def scope_index(self):
        return self.scope[0]


def iter_nodes(root):
    """All nodes of the tree, depth-first."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (SumNode, ProductNode)):
            stack.extend(node.children)


def count_nodes(root):
    counts = {"sum": 0, "product": 0, "leaf": 0}
    for node in iter_nodes(root):
        if isinstance(node, SumNode):
            counts["sum"] += 1
        elif isinstance(node, ProductNode):
            counts["product"] += 1
        else:
            counts["leaf"] += 1
    return counts
