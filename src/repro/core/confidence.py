"""Confidence intervals for compiled estimates (Section 5.1 of the paper).

Every compiled estimate is a product (and, for expansions and averages,
a ratio) of expectations of the form ``E[T * 1_C]``.  Following the
paper:

1. each expectation is split into ``P(C) * E[T | C]``;
2. the probability part is treated as a binomial proportion with
   ``n = sample size of the RSPN``, giving variance ``p(1-p)/n``;
3. the conditional expectation part uses the Koenig-Huygens formula
   ``V(T | C) = E[T^2 | C] - E[T | C]^2`` (squares push down to the
   leaves), scaled to the variance of a sample mean over the ``n * p``
   conditioned samples;
4. products of (assumed independent) estimates combine with
   ``V(XY) = V(X)V(Y) + V(X)E(Y)^2 + V(Y)E(X)^2``;
5. ratios use the first-order delta method (the paper only needs
   products; ratios arise in our Theorem-2 expansion terms and AVG);
6. the final estimate is treated as normally distributed.
"""

from __future__ import annotations

import math

from scipy import stats


def expectation_moments(expectation):
    """(mean, variance) of one ``E[T * 1_C]`` estimate.

    ``expectation`` is a ``_Expectation`` from the compiler: it can
    evaluate itself normally (``E[T * 1_C]``), with squared transforms
    (``E[T^2 * 1_C]``), and expose its RSPN's training sample size.
    """
    n = max(expectation.rspn.sample_size, 1.0)
    value = expectation.evaluate()
    if not expectation.has_factors:
        p = value
        return p, max(p * (1.0 - p), 0.0) / n
    conditions_only = type(expectation)(
        rspn=expectation.rspn, conditions=expectation.conditions, factors=[]
    )
    p = conditions_only.evaluate()
    if p <= 0.0:
        return 0.0, 0.0
    t1 = value / p
    t2 = expectation.evaluate(squared=True) / p
    conditional_variance = max(t2 - t1 * t1, 0.0)
    mean_variance = conditional_variance / max(n * p, 1.0)
    p_variance = max(p * (1.0 - p), 0.0) / n
    return product_moments([(p, p_variance), (t1, mean_variance)])


def product_moments(moments):
    """Moments of a product of independent estimates."""
    mean, variance = 1.0, 0.0
    for m, v in moments:
        variance = variance * v + variance * m * m + v * mean * mean
        mean *= m
    return mean, variance


def ratio_moments(nominator, denominator):
    """First-order delta-method moments of ``X / Y``."""
    mn, vn = nominator
    md, vd = denominator
    if md == 0.0:
        return 0.0, 0.0
    mean = mn / md
    rel = 0.0
    if mn != 0.0:
        rel += vn / (mn * mn)
    rel += vd / (md * md)
    return mean, mean * mean * rel


def interval(mean, variance, confidence=0.95):
    """Normal confidence interval around ``mean``."""
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    half = z * math.sqrt(max(variance, 0.0))
    return mean - half, mean + half


def relative_interval_length(value, lower):
    """The paper's Figure-11 metric ``(a_pred - a_lower) / a_pred``."""
    if value == 0:
        return 0.0
    return (value - lower) / value
