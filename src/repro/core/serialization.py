"""Persistence for RSPNs and ensembles (save / load without retraining).

The paper treats RSPN ensembles like indexes: built offline, used at
runtime, maintained incrementally.  An index that cannot survive a
process restart is of little use, so this module serialises everything a
learned ensemble holds -- node trees, leaf histograms, KMeans routing
state, functional-dependency dictionaries, RDC caches -- into a plain
JSON document.  JSON (rather than pickle) keeps the format inspectable,
diff-able and independent of Python class layout.

The database itself is *not* serialised: a loaded ensemble is re-attached
to a :class:`~repro.engine.table.Database` the same way a rebuilt DBMS
re-opens its base tables before its indexes.

Usage::

    save_ensemble(ensemble, "ensemble.json")
    ensemble = load_ensemble("ensemble.json", database)
"""

from __future__ import annotations

import json
import math

import numpy as np

from repro.core.ensemble import SPNEnsemble
from repro.core.leaves import BinnedLeaf, DiscreteLeaf
from repro.core.nodes import ProductNode, SumNode
from repro.core.rspn import RSPN, FunctionalDependency, RspnConfig
from repro.schema.schema import ForeignKey
from repro.stats.kmeans import KMeans

FORMAT_NAME = "repro-rspn"
FORMAT_VERSION = 1


class SerializationError(RuntimeError):
    """Raised when a document cannot be decoded into a model."""


# ----------------------------------------------------------------------
# Scalars and arrays
# ----------------------------------------------------------------------


def _encode_float(value):
    """JSON-safe float: NaN -> None, +/-inf -> sentinel strings."""
    value = float(value)
    if math.isnan(value):
        return None
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value):
    if value is None:
        return math.nan
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def _encode_array(array):
    return [_encode_float(v) for v in np.asarray(array, dtype=float).ravel()]


def _decode_array(values):
    return np.array([_decode_float(v) for v in values], dtype=float)


# ----------------------------------------------------------------------
# KMeans routing state
# ----------------------------------------------------------------------


def _encode_kmeans(kmeans):
    if kmeans is None:
        return None
    if kmeans.centers_ is None:
        raise SerializationError("cannot serialise an unfitted KMeans")
    return {
        "n_clusters": kmeans.n_clusters,
        "n_init": kmeans.n_init,
        "max_iter": kmeans.max_iter,
        "seed": kmeans.seed,
        "shape": list(kmeans.centers_.shape),
        "centers": _encode_array(kmeans.centers_),
        "mean": _encode_array(kmeans.mean_),
        "scale": _encode_array(kmeans.scale_),
        "impute": _encode_array(kmeans.impute_),
    }


def _decode_kmeans(document):
    if document is None:
        return None
    kmeans = KMeans(
        n_clusters=document["n_clusters"],
        n_init=document["n_init"],
        max_iter=document["max_iter"],
        seed=document["seed"],
    )
    shape = tuple(document["shape"])
    kmeans.centers_ = _decode_array(document["centers"]).reshape(shape)
    kmeans.mean_ = _decode_array(document["mean"])
    kmeans.scale_ = _decode_array(document["scale"])
    kmeans.impute_ = _decode_array(document["impute"])
    return kmeans


# ----------------------------------------------------------------------
# Node trees
# ----------------------------------------------------------------------


def node_to_dict(node):
    """Recursively encode an SPN node tree."""
    if isinstance(node, SumNode):
        return {
            "type": "sum",
            "scope": list(node.scope),
            "counts": _encode_array(node.counts),
            "kmeans": _encode_kmeans(node.kmeans),
            "children": [node_to_dict(child) for child in node.children],
        }
    if isinstance(node, ProductNode):
        return {
            "type": "product",
            "scope": list(node.scope),
            "children": [node_to_dict(child) for child in node.children],
        }
    if isinstance(node, DiscreteLeaf):
        return {
            "type": "discrete_leaf",
            "scope_index": node.scope_index,
            "attribute": node.attribute,
            "values": _encode_array(node.values),
            "counts": _encode_array(node.counts),
            "null_count": node.null_count,
        }
    if isinstance(node, BinnedLeaf):
        return {
            "type": "binned_leaf",
            "scope_index": node.scope_index,
            "attribute": node.attribute,
            "edges": _encode_array(node.edges),
            "counts": _encode_array(node.counts),
            "sums": _encode_array(node.sums),
            "distinct": _encode_array(node.distinct),
            "null_count": node.null_count,
        }
    raise SerializationError(f"cannot serialise node type {type(node)!r}")


def node_from_dict(document):
    """Recursively decode an SPN node tree."""
    kind = document.get("type")
    if kind == "sum":
        children = [node_from_dict(child) for child in document["children"]]
        return SumNode(
            tuple(document["scope"]),
            children,
            _decode_array(document["counts"]),
            kmeans=_decode_kmeans(document["kmeans"]),
        )
    if kind == "product":
        children = [node_from_dict(child) for child in document["children"]]
        return ProductNode(tuple(document["scope"]), children)
    if kind == "discrete_leaf":
        return DiscreteLeaf(
            document["scope_index"],
            document["attribute"],
            _decode_array(document["values"]),
            _decode_array(document["counts"]),
            document["null_count"],
        )
    if kind == "binned_leaf":
        return BinnedLeaf(
            document["scope_index"],
            document["attribute"],
            _decode_array(document["edges"]),
            _decode_array(document["counts"]),
            _decode_array(document["sums"]),
            _decode_array(document["distinct"]),
            document["null_count"],
        )
    raise SerializationError(f"unknown node type {kind!r}")


# ----------------------------------------------------------------------
# RSPNs
# ----------------------------------------------------------------------


def _encode_config(config: RspnConfig):
    return {
        "rdc_threshold": config.rdc_threshold,
        "min_instances_fraction": config.min_instances_fraction,
        "max_distinct_leaf": config.max_distinct_leaf,
        "n_bins": config.n_bins,
        "rdc_sample": config.rdc_sample,
        "seed": config.seed,
    }


def _decode_config(document):
    return RspnConfig(**document)


def _encode_fd(fd: FunctionalDependency):
    return {
        "source": fd.source,
        "dependent": fd.dependent,
        "mapping": [
            [_encode_float(k), None if v is None else _encode_float(v)]
            for k, v in fd.mapping.items()
        ],
    }


def _decode_fd(document):
    mapping = {}
    for key, value in document["mapping"]:
        mapping[_decode_float(key)] = None if value is None else _decode_float(value)
    return FunctionalDependency(document["source"], document["dependent"], mapping)


def _encode_edge(fk: ForeignKey):
    return {
        "parent": fk.parent,
        "child": fk.child,
        "fk_column": fk.fk_column,
        "pk_column": fk.pk_column,
    }


def _decode_edge(document):
    return ForeignKey(**document)


def rspn_to_dict(rspn: RSPN):
    """Encode one RSPN (tree + relational metadata) as a plain dict."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "column_names": list(rspn.column_names),
        "tables": sorted(rspn.tables),
        "full_size": rspn.full_size,
        "sample_size": rspn.sample_size,
        "internal_edges": [_encode_edge(fk) for fk in rspn.internal_edges],
        "functional_dependencies": [
            _encode_fd(fd) for fd in rspn.functional_dependencies.values()
        ],
        "config": _encode_config(rspn.config),
        "root": node_to_dict(rspn.root),
    }


def rspn_from_dict(document):
    """Decode a dict produced by :func:`rspn_to_dict`."""
    _check_header(document)
    return RSPN(
        root=node_from_dict(document["root"]),
        column_names=document["column_names"],
        tables=set(document["tables"]),
        full_size=document["full_size"],
        sample_size=document["sample_size"],
        internal_edges=[_decode_edge(e) for e in document["internal_edges"]],
        functional_dependencies=[
            _decode_fd(fd) for fd in document["functional_dependencies"]
        ],
        config=_decode_config(document["config"]),
    )


# ----------------------------------------------------------------------
# Store-format metadata (tree shipped separately as flat arrays)
# ----------------------------------------------------------------------


def rspn_metadata_to_dict(rspn: RSPN):
    """Everything :func:`rspn_to_dict` carries *except* the node tree.

    The model store persists the tree itself as a specpack blob of flat
    arrays (``compiled.export_tree_arrays``); this function captures the
    relational metadata that rides alongside it.  The per-sum-node
    KMeans routing state travels separately
    (:func:`routing_state_to_document`) so that opening a store never
    pays for decoding update-only state.
    """
    return {
        "column_names": list(rspn.column_names),
        "tables": sorted(rspn.tables),
        "full_size": rspn.full_size,
        "sample_size": rspn.sample_size,
        "internal_edges": [_encode_edge(fk) for fk in rspn.internal_edges],
        "functional_dependencies": [
            _encode_fd(fd) for fd in rspn.functional_dependencies.values()
        ],
        "config": _encode_config(rspn.config),
    }


def routing_state_to_document(rspn: RSPN):
    """Per-sum-node KMeans routing state, keyed by post-order row.

    Post order is the canonical row numbering ``export_tree_arrays``
    assigns and import preserves, so the state re-attaches to an
    imported twin without any tree diffing
    (:func:`attach_routing_state`).  This is update-only state -- the
    model store parks it in its own checksummed section, decoded only
    when a mapped tree actually materialises for an insert/delete.
    """
    from repro.core import compiled

    routing = []
    for row, node in enumerate(compiled.post_order(rspn.root)):
        kmeans = getattr(node, "kmeans", None)
        if kmeans is not None:
            routing.append([row, _encode_kmeans(kmeans)])
    return routing


def rspn_kwargs_from_metadata(document):
    """RSPN constructor kwargs (minus ``root``) from store metadata."""
    return {
        "column_names": document["column_names"],
        "tables": set(document["tables"]),
        "full_size": document["full_size"],
        "sample_size": document["sample_size"],
        "internal_edges": [_decode_edge(e) for e in document["internal_edges"]],
        "functional_dependencies": [
            _decode_fd(fd) for fd in document["functional_dependencies"]
        ],
        "config": _decode_config(document["config"]),
    }


def attach_routing_state(root, document):
    """Re-attach persisted KMeans routing state to an imported tree."""
    from repro.core import compiled

    routing = document.get("routing") or []
    if not routing:
        return
    nodes = list(compiled.post_order(root))
    for row, encoded in routing:
        nodes[int(row)].kmeans = _decode_kmeans(encoded)


def ensemble_metadata_to_dict(ensemble: SPNEnsemble):
    """Ensemble-level metadata (everything but the RSPNs themselves)."""
    return {
        "attribute_rdc": [
            [sorted(pair)[0], sorted(pair)[1], value]
            for pair, value in sorted(
                ensemble.attribute_rdc.items(), key=lambda kv: sorted(kv[0])
            )
        ],
        "table_dependency": [
            [sorted(pair)[0], sorted(pair)[1], value]
            for pair, value in sorted(
                ensemble.table_dependency.items(), key=lambda kv: sorted(kv[0])
            )
        ],
        "training_seconds": ensemble.training_seconds,
        "rspn_training_seconds": list(ensemble.rspn_training_seconds),
    }


def apply_ensemble_metadata(ensemble, document):
    """Counterpart of :func:`ensemble_metadata_to_dict` for a fresh ensemble."""
    ensemble.attribute_rdc = {
        frozenset((a, b)): value for a, b, value in document["attribute_rdc"]
    }
    ensemble.table_dependency = {
        frozenset((a, b)): value for a, b, value in document["table_dependency"]
    }
    ensemble.training_seconds = document["training_seconds"]
    ensemble.rspn_training_seconds = list(document["rspn_training_seconds"])


# ----------------------------------------------------------------------
# Ensembles
# ----------------------------------------------------------------------


def ensemble_to_dict(ensemble: SPNEnsemble):
    """Encode an ensemble: RSPNs plus correlation metadata."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "rspns": [rspn_to_dict(rspn) for rspn in ensemble.rspns],
        "attribute_rdc": [
            [sorted(pair)[0], sorted(pair)[1], value]
            for pair, value in sorted(
                ensemble.attribute_rdc.items(), key=lambda kv: sorted(kv[0])
            )
        ],
        "table_dependency": [
            [sorted(pair)[0], sorted(pair)[1], value]
            for pair, value in sorted(
                ensemble.table_dependency.items(), key=lambda kv: sorted(kv[0])
            )
        ],
        "training_seconds": ensemble.training_seconds,
        "rspn_training_seconds": list(ensemble.rspn_training_seconds),
    }


def ensemble_from_dict(document, database):
    """Decode an ensemble dict, re-attaching it to ``database``."""
    _check_header(document)
    ensemble = SPNEnsemble(database)
    for rspn_doc in document["rspns"]:
        ensemble.rspns.append(rspn_from_dict(rspn_doc))
    ensemble.attribute_rdc = {
        frozenset((a, b)): value for a, b, value in document["attribute_rdc"]
    }
    ensemble.table_dependency = {
        frozenset((a, b)): value for a, b, value in document["table_dependency"]
    }
    ensemble.training_seconds = document["training_seconds"]
    ensemble.rspn_training_seconds = list(document["rspn_training_seconds"])
    return ensemble


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------


def save_rspn(rspn, path):
    """Write one RSPN to a JSON file."""
    with open(path, "w") as handle:
        json.dump(rspn_to_dict(rspn), handle)


def load_rspn(path):
    """Read one RSPN from a JSON file."""
    with open(path) as handle:
        return rspn_from_dict(json.load(handle))


def save_ensemble(ensemble, path):
    """Write a full ensemble to a JSON file."""
    with open(path, "w") as handle:
        json.dump(ensemble_to_dict(ensemble), handle)


def load_ensemble(path, database):
    """Read an ensemble from a JSON file and attach it to ``database``."""
    with open(path) as handle:
        return ensemble_from_dict(json.load(handle), database)


def _check_header(document):
    if document.get("format") != FORMAT_NAME:
        raise SerializationError(
            f"not a {FORMAT_NAME} document: format={document.get('format')!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported version {document.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
