"""Compiled flat-array RSPN inference with batched evaluation.

The recursive tree walk of :mod:`repro.core.inference` evaluates one
:class:`~repro.core.inference.EvaluationSpec` per call, paying Python
dispatch for every node it visits.  DeepDB's runtime workload is the
opposite shape: one SQL query compiles into *several* expectation
sub-queries over the same RSPN, and a GROUP BY multiplies that by the
number of groups (Section 4 of the paper).  This module lowers the node
tree into flat NumPy arrays once and evaluates a whole batch of specs in
a single bottom-up sweep.

Lowering (:class:`CompiledRSPN`):

- Nodes are laid out in **topological (post) order** -- every child
  precedes its parent -- so one forward pass over the order is a valid
  bottom-up evaluation.  The root is the last row.
- Each internal node stores a contiguous *child range* into a flat
  child-index array; sum nodes additionally bake their (cached) mixture
  weights next to the child indices.
- Internal nodes are grouped by **height** (leaves = 0, parent = 1 + max
  child height).  All sums of one level become one ``np.add.reduceat``
  over a ``(children_at_level, n_queries)`` matrix of weighted child
  values; all products become one ``np.multiply.reduceat``.  The whole
  tree evaluates in ``O(depth)`` NumPy calls instead of
  ``O(nodes * queries)`` Python calls.
- Leaves keep pointers to the live leaf objects: their histograms are
  *not* baked, so leaf-level inserts/deletes never stale the compiled
  form.  Only structure and sum-node weights are frozen, which is why
  :func:`invalidate` must be called whenever sum counts change
  (:mod:`repro.core.updates` does this).

Batched evaluation (:meth:`CompiledRSPN.evaluate_batch`):

- Untouched leaves contribute an exact ``1.0`` (the marginalisation
  identity), so the values matrix is initialised to ones and only
  touched ``(leaf, query)`` entries are filled.
- Per leaf, the batch's ``(range, transform)`` pairs are **deduplicated**
  before calling the leaf's vectorised
  :meth:`~repro.core.leaves.DiscreteLeaf.evaluate_batch`; a GROUP BY over
  ``k`` groups touches the grouped column with ``k`` distinct ranges but
  every other predicate column with exactly one.
- Large batches are evaluated in bounded-memory chunks.

The compiled form is cached per root in a :class:`weakref` mapping; the
owning :class:`~repro.core.rspn.RSPN` (and
:func:`repro.core.updates.update_tuple`) call :func:`invalidate` after
mutations that change sum-node weights.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.leaves import BinnedLeaf, DiscreteLeaf, product_transform
from repro.core.nodes import LeafNode, ProductNode, SumNode

# Soft cap on the size (floats) of one values matrix; batches are split
# into chunks of ``max(16, _CHUNK_BUDGET // n_nodes)`` queries.
_CHUNK_BUDGET = 8_000_000


class _Level:
    """All internal nodes of one height, split by kind, as flat arrays."""

    __slots__ = (
        "sum_rows", "sum_starts", "sum_child_index", "sum_weights",
        "prod_rows", "prod_starts", "prod_child_index",
    )

    def __init__(self, sums, products, index_of):
        self.sum_rows = np.array([index_of[id(n)] for n in sums], dtype=np.intp)
        self.prod_rows = np.array([index_of[id(n)] for n in products], dtype=np.intp)
        sum_children, sum_starts, sum_weights = [], [], []
        for node in sums:
            sum_starts.append(len(sum_children))
            sum_children.extend(index_of[id(c)] for c in node.children)
            sum_weights.extend(node.weights)
        self.sum_starts = np.array(sum_starts, dtype=np.intp)
        self.sum_child_index = np.array(sum_children, dtype=np.intp)
        self.sum_weights = np.array(sum_weights, dtype=float)
        prod_children, prod_starts = [], []
        for node in products:
            prod_starts.append(len(prod_children))
            prod_children.extend(index_of[id(c)] for c in node.children)
        self.prod_starts = np.array(prod_starts, dtype=np.intp)
        self.prod_child_index = np.array(prod_children, dtype=np.intp)


class CompiledRSPN:
    """A node tree lowered to topologically-ordered flat arrays."""

    def __init__(self, root):
        order = _post_order(root)
        index_of = {id(node): i for i, node in enumerate(order)}
        self.n_nodes = len(order)
        self.root_row = index_of[id(root)]
        # Root generation this form was lowered at; maintained by
        # :func:`compiled_for` for its staleness check.
        self.generation = 0
        # Weak back-reference to the live tree: the sharded evaluator
        # needs the root (to serialize it for worker processes) and must
        # not keep it alive past its owner.
        self.root_ref = weakref.ref(root)

        heights = [0] * self.n_nodes
        for i, node in enumerate(order):
            if isinstance(node, (SumNode, ProductNode)):
                heights[i] = 1 + max(heights[index_of[id(c)]] for c in node.children)

        self._leaf_at = {
            i: node for i, node in enumerate(order) if isinstance(node, LeafNode)
        }
        self.leaf_rows_by_scope: dict[int, tuple] = {}
        for row, leaf in self._leaf_at.items():
            self.leaf_rows_by_scope.setdefault(leaf.scope_index, []).append(row)
        self.leaf_rows_by_scope = {
            scope: tuple(rows) for scope, rows in self.leaf_rows_by_scope.items()
        }

        max_height = max(heights) if heights else 0
        self.levels = []
        for height in range(1, max_height + 1):
            sums = [
                order[i] for i in range(self.n_nodes)
                if heights[i] == height and isinstance(order[i], SumNode)
            ]
            products = [
                order[i] for i in range(self.n_nodes)
                if heights[i] == height and isinstance(order[i], ProductNode)
            ]
            self.levels.append(_Level(sums, products, index_of))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_batch(self, specs, executor=None):
        """Evaluate a batch of :class:`EvaluationSpec`-like objects.

        Returns an array of ``len(specs)`` values
        ``E[ prod_i h_i(X_i) * 1_{X_i in R_i} ]``, one per spec; specs
        with an empty selection evaluate to exactly ``0.0``.

        ``executor`` plugs in a batch executor such as
        :class:`repro.core.sharding.ShardedEvaluator`: batches of at
        least its ``min_shard_size`` are split into per-worker column
        slices of the values matrix and evaluated by worker processes
        (per-query columns are independent, so sharding is
        bit-identical to this serial sweep).  ``None`` -- and any
        executor failure, which falls back internally -- evaluates
        in-process.
        """
        if executor is not None and executor.should_shard(len(specs)):
            return executor.evaluate_batch(self, specs)
        results = np.zeros(len(specs), dtype=float)
        live = [
            (col, spec)
            for col, spec in enumerate(specs)
            if not spec.is_empty_selection()
        ]
        if not live:
            return results
        chunk = max(16, _CHUNK_BUDGET // max(self.n_nodes, 1))
        for start in range(0, len(live), chunk):
            part = live[start:start + chunk]
            values = self._sweep([spec for _, spec in part])
            results[[col for col, _ in part]] = values
        return results

    def evaluate(self, spec):
        """Scalar evaluation as a batch of one."""
        return float(self.evaluate_batch([spec])[0])

    def _sweep(self, specs):
        """One bottom-up sweep; returns the root row for ``specs``."""
        n_queries = len(specs)
        values = np.ones((self.n_nodes, n_queries), dtype=float)
        for row, qcols in self._touched_leaves(specs).items():
            self._fill_leaf_row(values, row, qcols, specs)
        for level in self.levels:
            if level.prod_rows.size:
                child = values[level.prod_child_index]
                values[level.prod_rows] = np.multiply.reduceat(
                    child, level.prod_starts, axis=0
                )
            if level.sum_rows.size:
                child = values[level.sum_child_index] * level.sum_weights[:, None]
                values[level.sum_rows] = np.add.reduceat(
                    child, level.sum_starts, axis=0
                )
        return values[self.root_row]

    def _touched_leaves(self, specs):
        """Map ``row -> [query column, ...]`` of leaf entries to fill."""
        pending: dict[int, list[int]] = {}
        for qcol, spec in enumerate(specs):
            for scope_index in set(spec.ranges) | set(spec.transforms):
                for row in self.leaf_rows_by_scope.get(scope_index, ()):
                    pending.setdefault(row, []).append(qcol)
        return pending

    def _fill_leaf_row(self, values, row, qcols, specs):
        """Deduplicate the specs hitting one leaf and evaluate them."""
        leaf = self._leaf_at[row]
        scope = leaf.scope_index
        slots: dict = {}
        composed: dict = {}  # share one composed transform per id-tuple
        ranges, transforms = [], []
        assign = np.empty(len(qcols), dtype=np.intp)
        for k, qcol in enumerate(qcols):
            spec = specs[qcol]
            rng = spec.ranges.get(scope)
            transform_list = spec.transforms.get(scope)
            transform_key = (
                tuple(id(t) for t in transform_list) if transform_list else None
            )
            key = (rng, transform_key)
            slot = slots.get(key)
            if slot is None:
                slot = len(ranges)
                slots[key] = slot
                ranges.append(rng)
                if transform_list is None:
                    transforms.append(None)
                else:
                    transform = composed.get(transform_key)
                    if transform is None:
                        transform = product_transform(transform_list)
                        composed[transform_key] = transform
                    transforms.append(transform)
            assign[k] = slot
        batch = getattr(leaf, "evaluate_batch", None)
        if batch is not None:
            distinct = np.asarray(batch(ranges, transforms), dtype=float)
        else:  # generic leaf without a vectorised kernel
            distinct = np.array(
                [leaf.evaluate(r, t) for r, t in zip(ranges, transforms)],
                dtype=float,
            )
        values[row, qcols] = distinct[assign]


def _post_order(root):
    """Iterative post-order: children always precede their parent."""
    order, stack = [], [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded or isinstance(node, LeafNode):
            order.append(node)
            continue
        stack.append((node, True))
        for child in node.children:
            stack.append((child, False))
    return order


# ----------------------------------------------------------------------
# Flat-array export / import (shared-memory tree transport)
# ----------------------------------------------------------------------
# A node tree lowered to plain arrays plus a small JSON-able structure
# header, so the sharded evaluator can publish the whole model into one
# shared-memory segment and workers can rebuild an evaluation twin whose
# leaf histograms are zero-copy views into the externally-owned buffer.
# Only what evaluation needs is exported: node kinds, child topology,
# sum-node counts (weights are derived exactly as the live tree derives
# them) and the leaf payload arrays.  Update-only state (KMeans routing
# models, FD dictionaries) stays behind -- imported trees are read-only
# evaluation twins, which is all a sharding worker ever runs.

_KIND_SUM, _KIND_PRODUCT, _KIND_DISCRETE, _KIND_BINNED = 0, 1, 2, 3


def export_tree_arrays(root):
    """Lower a node tree to ``(meta, arrays)`` for an external buffer.

    ``arrays`` values are flat NumPy arrays (shippable through the
    segment codec of :mod:`repro.core.specpack`); ``meta`` carries the
    structure header (root row, per-leaf attribute names and payload
    offsets).  All float payloads travel as raw float64 bytes, so
    :func:`import_tree_arrays` reproduces evaluation bit-for-bit.
    """
    order = _post_order(root)
    index_of = {id(node): i for i, node in enumerate(order)}
    kinds = np.empty(len(order), dtype=np.int8)
    leaf_scope = np.full(len(order), -1, dtype=np.int64)
    child_offsets = [0]
    child_index: list[int] = []
    child_counts: list[float] = []
    leaf_meta = []
    leaf_chunks: list[np.ndarray] = []
    leaf_offset = 0
    for i, node in enumerate(order):
        if isinstance(node, SumNode):
            kinds[i] = _KIND_SUM
            child_index.extend(index_of[id(c)] for c in node.children)
            child_counts.extend(np.asarray(node.counts, dtype=float))
        elif isinstance(node, ProductNode):
            kinds[i] = _KIND_PRODUCT
            child_index.extend(index_of[id(c)] for c in node.children)
            child_counts.extend(0.0 for _ in node.children)
        elif isinstance(node, DiscreteLeaf):
            kinds[i] = _KIND_DISCRETE
            leaf_scope[i] = node.scope_index
            payload = [
                np.asarray(node.values, dtype=np.float64),
                np.asarray(node.counts, dtype=np.float64),
                np.asarray([node.null_count], dtype=np.float64),
            ]
            leaf_meta.append(
                {
                    "row": i,
                    "attribute": node.attribute,
                    "offset": leaf_offset,
                    "n": int(node.values.shape[0]),
                }
            )
            leaf_chunks.extend(payload)
            leaf_offset += sum(chunk.shape[0] for chunk in payload)
        elif isinstance(node, BinnedLeaf):
            kinds[i] = _KIND_BINNED
            leaf_scope[i] = node.scope_index
            payload = [
                np.asarray(node.edges, dtype=np.float64),
                np.asarray(node.counts, dtype=np.float64),
                np.asarray(node.sums, dtype=np.float64),
                np.asarray(node.distinct, dtype=np.float64),
                np.asarray([node.null_count], dtype=np.float64),
            ]
            leaf_meta.append(
                {
                    "row": i,
                    "attribute": node.attribute,
                    "offset": leaf_offset,
                    "n": int(node.counts.shape[0]),
                }
            )
            leaf_chunks.extend(payload)
            leaf_offset += sum(chunk.shape[0] for chunk in payload)
        else:
            raise TypeError(
                f"cannot export {type(node).__name__}: only sum/product "
                "nodes and the histogram leaves have a flat-array form"
            )
        child_offsets.append(len(child_index))
    meta = {
        "kind": "rspn-tree",
        "root_row": index_of[id(root)],
        "leaves": leaf_meta,
    }
    arrays = {
        "kinds": kinds,
        "leaf_scope": leaf_scope,
        "child_offsets": np.asarray(child_offsets, dtype=np.int64),
        "child_index": np.asarray(child_index, dtype=np.int64),
        "child_counts": np.asarray(child_counts, dtype=np.float64),
        "leaf_data": (
            np.concatenate(leaf_chunks)
            if leaf_chunks else np.empty(0, dtype=np.float64)
        ),
    }
    return meta, arrays


def import_tree_arrays(meta, arrays):
    """Rebuild an evaluation twin from :func:`export_tree_arrays` output.

    Leaf histogram arrays are **views into the caller's buffer** -- no
    copies -- so the buffer (e.g. an attached shared-memory segment)
    must outlive the returned tree.  The twin evaluates bit-identically
    to the exported tree; it is read-only (no KMeans routing state), so
    never route updates at it.
    """
    kinds = arrays["kinds"]
    leaf_scope = arrays["leaf_scope"]
    child_offsets = arrays["child_offsets"]
    child_index = arrays["child_index"]
    child_counts = arrays["child_counts"]
    leaf_data = arrays["leaf_data"]
    leaf_meta = {entry["row"]: entry for entry in meta["leaves"]}
    nodes: list = [None] * len(kinds)
    for i in range(len(kinds)):
        kind = int(kinds[i])
        if kind in (_KIND_SUM, _KIND_PRODUCT):
            a, b = int(child_offsets[i]), int(child_offsets[i + 1])
            children = [nodes[int(j)] for j in child_index[a:b]]
            scope = tuple(sorted({s for c in children for s in c.scope}))
            if kind == _KIND_SUM:
                nodes[i] = SumNode(scope, children, child_counts[a:b])
            else:
                nodes[i] = ProductNode(scope, children)
            continue
        entry = leaf_meta[i]
        offset, n = int(entry["offset"]), int(entry["n"])
        scope_index = int(leaf_scope[i])
        if kind == _KIND_DISCRETE:
            nodes[i] = DiscreteLeaf(
                scope_index,
                entry["attribute"],
                leaf_data[offset:offset + n],
                leaf_data[offset + n:offset + 2 * n],
                float(leaf_data[offset + 2 * n]),
            )
        elif kind == _KIND_BINNED:
            edges_end = offset + n + 1
            nodes[i] = BinnedLeaf(
                scope_index,
                entry["attribute"],
                leaf_data[offset:edges_end],
                leaf_data[edges_end:edges_end + n],
                leaf_data[edges_end + n:edges_end + 2 * n],
                leaf_data[edges_end + 2 * n:edges_end + 3 * n],
                float(leaf_data[edges_end + 3 * n]),
            )
        else:
            raise ValueError(f"unknown node kind {kind} at row {i}")
    return nodes[int(meta["root_row"])]


# ----------------------------------------------------------------------
# Per-root compilation cache, guarded by a generation counter
# ----------------------------------------------------------------------
# Mutations never pop the cache directly; they bump the root's
# *generation* and the next ``compiled_for`` notices the mismatch and
# re-lowers.  The same counter is the invalidation hook the serving
# layer's result cache rides (surfaced as ``RSPN.generation`` and
# ``SPNEnsemble.generation``), so one mechanism answers both "is this
# compiled form stale?" and "are cached query results stale?".
_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_GENERATIONS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def generation(root) -> int:
    """Monotonic mutation counter of a node tree (0 for untouched)."""
    return _GENERATIONS.get(root, 0)


def compiled_for(root) -> CompiledRSPN:
    """The (cached) compiled form of a node tree.

    Stale forms are detected by comparing the cache entry's recorded
    generation against the root's current one, so out-of-date entries
    are replaced lazily on the next evaluation.
    """
    compiled = _CACHE.get(root)
    current = generation(root)
    if compiled is None or compiled.generation != current:
        compiled = CompiledRSPN(root)
        compiled.generation = current
        _CACHE[root] = compiled
    return compiled


def invalidate(root):
    """Mark the compiled form stale after a mutation of sum-node weights
    or tree structure by bumping the root's generation; the next
    evaluation re-lowers the tree.  The stale entry is dropped eagerly
    so write-heavy phases don't retain dead flat arrays; the generation
    check in :func:`compiled_for` stays as the correctness backstop."""
    _GENERATIONS[root] = generation(root) + 1
    _CACHE.pop(root, None)
