"""Compiled flat-array RSPN inference with batched evaluation.

The recursive tree walk of :mod:`repro.core.inference` evaluates one
:class:`~repro.core.inference.EvaluationSpec` per call, paying Python
dispatch for every node it visits.  DeepDB's runtime workload is the
opposite shape: one SQL query compiles into *several* expectation
sub-queries over the same RSPN, and a GROUP BY multiplies that by the
number of groups (Section 4 of the paper).  This module lowers the node
tree into flat NumPy arrays once and evaluates a whole batch of specs in
a single bottom-up sweep.

Lowering (:class:`CompiledRSPN`):

- Nodes are laid out in **topological (post) order** -- every child
  precedes its parent -- so one forward pass over the order is a valid
  bottom-up evaluation.  The root is the last row.
- Internal nodes are grouped by **height** (leaves = 0, parent = 1 + max
  child height), giving a level schedule where every level only reads
  rows produced by strictly lower levels.
- On top of that schedule a **fused sweep plan** (:class:`_FusedPlan`)
  is computed at compile time:

  * nodes of one (level, kind) become one *op* whose segments are
    sorted by descending child count, so the op's position-``p`` slice
    always covers a contiguous prefix of segments -- each position is
    a single gather + elementwise kernel call over contiguous rows;
  * a liveness pass register-allocates rows into a small reusable
    **arena**: a child's row is dead the moment its parent's op
    consumes it, so the values "matrix" shrinks from ``n_nodes`` rows
    to peak-live rows (``plan.arena_rows``) and is leased from a pool
    instead of reallocated per chunk;
  * each op fuses the sum-weighting multiply with the accumulate into
    pre-planned ``np.take`` / ``np.multiply`` / ``np.add`` calls, or --
    under the ``numba`` kernel (:mod:`repro.core.kernels`) -- into one
    jitted tape interpreter over the plan's flattened instruction
    stream.

- Leaves keep pointers to the live leaf objects: their histograms are
  *not* baked, so leaf-level inserts/deletes never stale the compiled
  form.  Only structure and sum-node weights are frozen, which is why
  :func:`invalidate` must be called whenever sum counts change
  (:mod:`repro.core.updates` does this).

Accumulation order is **pinned** (see :mod:`repro.core.kernels`): sum
and product nodes accumulate children left to right with the weight
multiply rounding before the add.  Every kernel -- the fused NumPy
executor, the numba tape, and the retained ``legacy`` full-matrix
reference sweep -- performs those same elementwise operations in the
same order, which is what makes the three bit-identical (``==``), and
what lets sharded workers (whose twins recompile the same plan from the
same post-order; checked via :meth:`CompiledRSPN.plan_signature`)
return bit-identical slices.

Batched evaluation (:meth:`CompiledRSPN.evaluate_batch`):

- Untouched leaves contribute an exact ``1.0`` (the marginalisation
  identity), so the arena's leaf block is reset to ones and only
  touched ``(leaf, query)`` entries are filled.
- The batch's ``(range, transform)`` pairs are deduplicated **once per
  scope** (every leaf row of a scope sees the same pairs), the shared
  interval flattening is computed once per scope
  (:class:`~repro.core.leaves.PreparedBatch`), and each leaf then
  evaluates only the distinct pairs; a GROUP BY over ``k`` groups
  touches the grouped column with ``k`` distinct ranges but every other
  predicate column with exactly one.
- Large batches are evaluated in bounded-memory chunks that *reuse* one
  leased arena (no per-chunk allocation; ``arena_allocations`` counts
  pool misses).

The compiled form is cached per root in a :class:`weakref` mapping; the
owning :class:`~repro.core.rspn.RSPN` (and
:func:`repro.core.updates.update_tuple`) call :func:`invalidate` after
mutations that change sum-node weights.
"""

from __future__ import annotations

import hashlib
import threading
import time
import weakref

import numpy as np

from repro.core import kernels
from repro.core.leaves import (
    BinnedLeaf,
    DiscreteLeaf,
    PreparedBatch,
    product_transform,
    transform_dedup_key,
)
from repro.core.nodes import LeafNode, ProductNode, SumNode

# Soft cap on the size (floats) of one chunk's working set; batches are
# split into chunks of ``max(16, _CHUNK_BUDGET // rows)`` queries where
# ``rows`` is the sweep's row footprint (``n_nodes`` for the legacy
# full-matrix kernel, ``arena_rows + stage_rows`` for the fused ones --
# the arena being much smaller, fused chunks are correspondingly wider
# for the same memory budget).
_CHUNK_BUDGET = 8_000_000

# Leased (arena, stage) buffer pairs kept per compiled form for reuse
# across batches (and across concurrent serving readers).
_ARENA_POOL_CAP = 4


def _positions(starts, total):
    """Per-position index arrays for one level's segment list.

    ``starts`` are segment offsets into a flat child array of length
    ``total``.  Returns, for each child position ``p``, the segment
    indices that have a ``p``-th child and the flat offsets of those
    children -- the access pattern of the pinned left-to-right
    accumulation (the legacy kernel's replacement for ``reduceat``,
    whose intra-segment order is a SIMD implementation detail).
    """
    counts = np.diff(np.append(starts, total))
    out = []
    for p in range(int(counts.max()) if counts.size else 0):
        segs = np.flatnonzero(counts > p).astype(np.intp)
        out.append((segs, (starts[segs] + p).astype(np.intp)))
    return out


class _Level:
    """All internal nodes of one height, split by kind, as flat arrays."""

    __slots__ = (
        "sum_rows", "sum_starts", "sum_child_index", "sum_weights", "sum_pos",
        "prod_rows", "prod_starts", "prod_child_index", "prod_pos",
    )

    def __init__(self, sums, products, index_of):
        self.sum_rows = np.array([index_of[id(n)] for n in sums], dtype=np.intp)
        self.prod_rows = np.array([index_of[id(n)] for n in products], dtype=np.intp)
        sum_children, sum_starts, sum_weights = [], [], []
        for node in sums:
            sum_starts.append(len(sum_children))
            sum_children.extend(index_of[id(c)] for c in node.children)
            sum_weights.extend(node.weights)
        self.sum_starts = np.array(sum_starts, dtype=np.intp)
        self.sum_child_index = np.array(sum_children, dtype=np.intp)
        self.sum_weights = np.array(sum_weights, dtype=float)
        prod_children, prod_starts = [], []
        for node in products:
            prod_starts.append(len(prod_children))
            prod_children.extend(index_of[id(c)] for c in node.children)
        self.prod_starts = np.array(prod_starts, dtype=np.intp)
        self.prod_child_index = np.array(prod_children, dtype=np.intp)
        self.sum_pos = _positions(self.sum_starts, self.sum_child_index.shape[0])
        self.prod_pos = _positions(self.prod_starts, self.prod_child_index.shape[0])


# ----------------------------------------------------------------------
# Fused sweep plan
# ----------------------------------------------------------------------
class _SlotAllocator:
    """First-fit allocator of contiguous arena row blocks.

    ``size`` is the high-water mark -- the arena height the plan needs.
    Freed single rows are merged back into gaps so sibling levels reuse
    the rows of nodes that just died.
    """

    def __init__(self):
        self._free: list[tuple[int, int]] = []  # sorted disjoint [start, end)
        self.size = 0

    def alloc(self, k):
        for i, (start, end) in enumerate(self._free):
            if end - start >= k:
                if end - start == k:
                    self._free.pop(i)
                else:
                    self._free[i] = (start + k, end)
                return start
        start = self.size
        self.size += k
        return start

    def release(self, slot):
        import bisect

        start, end = slot, slot + 1
        i = bisect.bisect_left(self._free, (start, start))
        if i > 0 and self._free[i - 1][1] == start:
            start = self._free[i - 1][0]
            self._free.pop(i - 1)
            i -= 1
        if i < len(self._free) and self._free[i][0] == end:
            end = self._free[i][1]
            self._free.pop(i)
        self._free.insert(i, (start, end))


class _FusedOp:
    """One fused kernel call: all same-kind nodes of one level.

    Segments (nodes) are sorted by descending child count, so position
    ``p`` covers segments ``[0, len(pos_slots[p]))`` -- a contiguous
    prefix of the op's destination block ``[dst_lo, dst_lo + n_seg)``.
    ``pos_slots[p]`` holds the arena rows of every segment's ``p``-th
    child; for sum ops ``pos_weights[p]`` holds the matching mixture
    weights as a ``(k, 1)`` column.
    """

    __slots__ = ("is_sum", "dst_lo", "n_seg", "pos_slots", "pos_weights")

    def __init__(self, is_sum, dst_lo, n_seg, pos_slots, pos_weights):
        self.is_sum = is_sum
        self.dst_lo = dst_lo
        self.n_seg = n_seg
        self.pos_slots = pos_slots
        self.pos_weights = pos_weights


class _FusedPlan:
    """The compile-time sweep plan: ops over a liveness-sized arena.

    Derived deterministically from the tree's post-order alone, so a
    sharded worker that recompiles an imported twin
    (:func:`import_tree_arrays` preserves post-order) produces the
    *same* plan -- asserted end-to-end via :meth:`signature`.
    """

    __slots__ = (
        "arena_rows", "stage_rows", "root_slot", "n_leaves",
        "leaf_slots_by_scope", "leaf_slot_of_row", "ops", "op_nodes",
        "_tape", "_signature", "_scope_slots",
    )

    def __init__(self, order, index_of, heights, root_row):
        self._scope_slots = None
        alloc = _SlotAllocator()
        slot_of: dict[int, int] = {}
        leaf_rows = []
        for i, node in enumerate(order):
            if isinstance(node, LeafNode):
                slot_of[i] = alloc.alloc(1)
                leaf_rows.append(i)
        self.n_leaves = len(leaf_rows)
        # Allocated from an empty free list, leaves land in arena rows
        # 0..n_leaves-1 in post order; the per-chunk reset to the
        # marginalisation identity is one contiguous fill.
        self.leaf_slot_of_row = dict(zip(leaf_rows, range(self.n_leaves)))
        by_scope: dict[int, list] = {}
        for row in leaf_rows:
            leaf = order[row]
            by_scope.setdefault(leaf.scope_index, []).append(
                (self.leaf_slot_of_row[row], leaf)
            )
        self.leaf_slots_by_scope = {
            scope: tuple(entries) for scope, entries in by_scope.items()
        }

        self.ops = []
        # Per-op node back-references in segment order (sum ops only;
        # None for products): what refresh_weights() walks to re-bake
        # pos_weights after a batch of count mutations without a full
        # replan.  Tape-restored plans have no nodes (op_nodes is None
        # there) and fall back to a full recompile.
        self.op_nodes = []
        max_height = max(heights) if heights else 0
        n = len(order)
        for height in range(1, max_height + 1):
            for node_type in (ProductNode, SumNode):
                group = [
                    (i, order[i]) for i in range(n)
                    if heights[i] == height and type(order[i]) is node_type
                ]
                if not group:
                    continue
                # Stable sort by descending child count: positions are
                # prefixes, ties keep post order (determinism).
                segs = sorted(group, key=lambda entry: -len(entry[1].children))
                n_seg = len(segs)
                # Destination block allocated while every child is still
                # live, so it can never alias a row the op reads.
                dst_lo = alloc.alloc(n_seg)
                is_sum = node_type is SumNode
                max_children = len(segs[0][1].children)
                pos_slots, pos_weights = [], []
                for p in range(max_children):
                    k = 0
                    while k < n_seg and len(segs[k][1].children) > p:
                        k += 1
                    slots = np.array(
                        [
                            slot_of[index_of[id(segs[s][1].children[p])]]
                            for s in range(k)
                        ],
                        dtype=np.intp,
                    )
                    pos_slots.append(slots)
                    if is_sum:
                        weights = np.array(
                            [float(segs[s][1].weights[p]) for s in range(k)],
                            dtype=float,
                        )
                        pos_weights.append(weights[:, None])
                    else:
                        pos_weights.append(None)
                for s, (row, node) in enumerate(segs):
                    for child in node.children:
                        child_slot = slot_of.pop(index_of[id(child)], None)
                        if child_slot is not None:  # strict trees only
                            alloc.release(child_slot)
                    slot_of[row] = dst_lo + s
                self.ops.append(
                    _FusedOp(is_sum, dst_lo, n_seg, pos_slots, pos_weights)
                )
                self.op_nodes.append(
                    [node for _, node in segs] if is_sum else None
                )
        self.root_slot = slot_of[root_row]
        self.arena_rows = max(alloc.size, 1)
        self.stage_rows = max((op.n_seg for op in self.ops), default=1)
        self._tape = None
        self._signature = None

    @classmethod
    def from_tape(cls, tape, scalars, leaf_slots_by_scope, scope_slots):
        """Restore a plan from its persisted tape -- no allocator pass.

        ``tape`` is the 7-tuple :meth:`tape` produces (typically
        read-only views into a model store mapping), ``scalars`` the
        dict the store's writer saved from this plan's attributes.
        Rebuilding the numpy-kernel ops is pure slicing of the tape
        arrays -- O(ops + positions), not O(nodes) -- which is what
        makes a store cold start independent of model size.
        ``scope_slots`` supplies the sorted ``(scope, [slots])`` items
        :meth:`signature` hashes -- either the list itself or a
        zero-argument callable producing it on first use -- so the
        restored plan's digest can be computed (and compared against
        the saved one) without instantiating a single leaf object.
        """
        plan = object.__new__(cls)
        plan.arena_rows = int(scalars["arena_rows"])
        plan.stage_rows = int(scalars["stage_rows"])
        plan.root_slot = int(scalars["root_slot"])
        plan.n_leaves = int(scalars["n_leaves"])
        plan.leaf_slots_by_scope = leaf_slots_by_scope
        # Leaf slots are post-order ranks by construction; the dict is
        # only used while *building* a plan, so the restored form keeps
        # the invariant implicitly.
        plan.leaf_slot_of_row = None
        op_is_sum, op_dst, op_pos_off, pos_count, pos_child_off, \
            child_slots, weights = tape
        plan.ops = []
        for o in range(op_is_sum.shape[0]):
            is_sum = bool(op_is_sum[o])
            p0, p1 = int(op_pos_off[o]), int(op_pos_off[o + 1])
            pos_slots, pos_weights = [], []
            for p in range(p0, p1):
                c0, c1 = int(pos_child_off[p]), int(pos_child_off[p + 1])
                pos_slots.append(child_slots[c0:c1])
                pos_weights.append(weights[c0:c1][:, None] if is_sum else None)
            # Segments are sorted by descending child count, so the
            # first position covers every segment of the op.
            n_seg = int(pos_count[p0]) if p1 > p0 else 0
            plan.ops.append(
                _FusedOp(is_sum, int(op_dst[o]), n_seg, pos_slots, pos_weights)
            )
        plan.op_nodes = None
        plan._tape = tuple(tape)
        plan._signature = None
        plan._scope_slots = scope_slots
        return plan

    def refresh_weights(self):
        """Re-bake ``pos_weights`` from the live sum nodes.

        The in-place analogue of a replan after sum-count mutations:
        topology, slots and the liveness allocation are functions of
        structure alone (which updates never change), so only the baked
        weight columns -- and the cached tape/signature derived from
        them -- go stale.  Returns ``False`` for tape-restored plans
        (no node back-references; the caller must recompile).
        """
        if self.op_nodes is None:
            return False
        for op, nodes in zip(self.ops, self.op_nodes):
            if not op.is_sum:
                continue
            for p in range(len(op.pos_slots)):
                k = op.pos_slots[p].shape[0]
                weights = np.array(
                    [float(nodes[s].weights[p]) for s in range(k)],
                    dtype=float,
                )
                op.pos_weights[p] = weights[:, None]
        self._tape = None
        self._signature = None
        return True

    def tape(self):
        """The plan flattened into the numba tape interpreter's arrays."""
        if self._tape is None:
            op_is_sum, op_dst, op_pos_off = [], [], [0]
            pos_count, pos_child_off = [], [0]
            child_slots: list[int] = []
            weights: list[float] = []
            for op in self.ops:
                op_is_sum.append(1 if op.is_sum else 0)
                op_dst.append(op.dst_lo)
                for p, slots in enumerate(op.pos_slots):
                    pos_count.append(slots.shape[0])
                    child_slots.extend(int(s) for s in slots)
                    if op.is_sum:
                        weights.extend(float(w) for w in op.pos_weights[p].ravel())
                    else:
                        weights.extend(0.0 for _ in range(slots.shape[0]))
                    pos_child_off.append(len(child_slots))
                op_pos_off.append(len(pos_count))
            self._tape = (
                np.asarray(op_is_sum, dtype=np.int8),
                np.asarray(op_dst, dtype=np.int64),
                np.asarray(op_pos_off, dtype=np.int64),
                np.asarray(pos_count, dtype=np.int64),
                np.asarray(pos_child_off, dtype=np.int64),
                np.asarray(child_slots, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            )
        return self._tape

    def signature(self) -> str:
        """A stable digest of the whole plan (ops, slots, weights bits).

        Equal signatures mean bit-identical sweeps for the same leaf
        values; the sharded evaluator ships the parent's signature with
        the tree so workers can verify their recompiled plan matches.
        """
        if self._signature is None:
            digest = hashlib.sha1()
            digest.update(
                np.asarray(
                    [self.arena_rows, self.stage_rows, self.root_slot,
                     self.n_leaves],
                    dtype=np.int64,
                ).tobytes()
            )
            if self._scope_slots is not None:
                if callable(self._scope_slots):
                    self._scope_slots = self._scope_slots()
                slot_items = self._scope_slots
            else:
                slot_items = [
                    (scope,
                     [slot for slot, _ in self.leaf_slots_by_scope[scope]])
                    for scope in sorted(self.leaf_slots_by_scope)
                ]
            for scope, slots in slot_items:
                digest.update(
                    np.asarray([scope, *slots], dtype=np.int64).tobytes()
                )
            for array in self.tape():
                digest.update(array.tobytes())
            self._signature = digest.hexdigest()
        return self._signature


class CompiledRSPN:
    """A node tree lowered to topologically-ordered flat arrays."""

    def __init__(self, root):
        order = _post_order(root)
        index_of = {id(node): i for i, node in enumerate(order)}
        self.n_nodes = len(order)
        self.root_row = index_of[id(root)]
        # Root generation this form was lowered at; maintained by
        # :func:`compiled_for` for its staleness check.
        self.generation = 0
        # Weak back-reference to the live tree: the sharded evaluator
        # needs the root (to serialize it for worker processes) and must
        # not keep it alive past its owner.
        self.root_ref = weakref.ref(root)

        heights = [0] * self.n_nodes
        for i, node in enumerate(order):
            if isinstance(node, (SumNode, ProductNode)):
                heights[i] = 1 + max(heights[index_of[id(c)]] for c in node.children)

        self._leaf_at = {
            i: node for i, node in enumerate(order) if isinstance(node, LeafNode)
        }
        self.leaf_rows_by_scope: dict[int, tuple] = {}
        for row, leaf in self._leaf_at.items():
            self.leaf_rows_by_scope.setdefault(leaf.scope_index, []).append(row)
        self.leaf_rows_by_scope = {
            scope: tuple(rows) for scope, rows in self.leaf_rows_by_scope.items()
        }

        max_height = max(heights) if heights else 0
        self.levels = []
        # Per-level sum-node lists (same order _Level bakes sum_weights
        # in), kept so refresh_weights() can re-bake the legacy sweep's
        # weight arrays without re-lowering.
        self._level_sums = []
        for height in range(1, max_height + 1):
            sums = [
                order[i] for i in range(self.n_nodes)
                if heights[i] == height and isinstance(order[i], SumNode)
            ]
            products = [
                order[i] for i in range(self.n_nodes)
                if heights[i] == height and isinstance(order[i], ProductNode)
            ]
            self.levels.append(_Level(sums, products, index_of))
            self._level_sums.append(sums)

        self.plan = _FusedPlan(order, index_of, heights, self.root_row)

        # Arena pool + sweep telemetry (kernel_stats / serving /stats).
        self._pool_lock = threading.Lock()
        self._arena_pool: list[tuple[int, np.ndarray, np.ndarray]] = []
        self.arena_allocations = 0
        self.sweep_count = 0
        self.sweep_ns = 0
        self.sweep_queries = 0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_batch(self, specs, executor=None):
        """Evaluate a batch of :class:`EvaluationSpec`-like objects.

        Returns an array of ``len(specs)`` values
        ``E[ prod_i h_i(X_i) * 1_{X_i in R_i} ]``, one per spec; specs
        with an empty selection evaluate to exactly ``0.0``.

        ``executor`` plugs in a batch executor such as
        :class:`repro.core.sharding.ShardedEvaluator`: batches of at
        least its ``min_shard_size`` are split into per-worker column
        slices and evaluated by worker processes (per-query columns are
        independent, so sharding is bit-identical to this serial
        sweep).  ``None`` -- and any executor failure, which falls back
        internally -- evaluates in-process.

        The executing kernel is the process-wide knob of
        :mod:`repro.core.kernels`; all kernels are bit-identical.
        """
        if executor is not None and executor.should_shard(len(specs)):
            return executor.evaluate_batch(self, specs)
        results = np.zeros(len(specs), dtype=float)
        live = [
            (col, spec)
            for col, spec in enumerate(specs)
            if not spec.is_empty_selection()
        ]
        if not live:
            return results
        kernel = kernels.resolve()
        if kernel == "legacy":
            chunk = max(16, _CHUNK_BUDGET // max(self.n_nodes, 1))
            for start in range(0, len(live), chunk):
                part = live[start:start + chunk]
                values = self._sweep_legacy([spec for _, spec in part])
                results[[col for col, _ in part]] = values
            return results
        rows = self.plan.arena_rows + self.plan.stage_rows
        chunk = max(16, _CHUNK_BUDGET // max(rows, 1))
        width = min(chunk, len(live))
        arena, stage = self._lease(width)
        try:
            for start in range(0, len(live), chunk):
                part = live[start:start + chunk]
                values = self._sweep_fused(
                    [spec for _, spec in part], arena, stage, kernel
                )
                results[[col for col, _ in part]] = values
        finally:
            self._release(width, arena, stage)
        return results

    def evaluate(self, spec):
        """Scalar evaluation as a batch of one."""
        return float(self.evaluate_batch([spec])[0])

    def _sweep_fused(self, specs, arena, stage, kernel):
        """One arena sweep over the fused plan; returns the root row.

        The arena may be wider than ``len(specs)`` (a reused lease whose
        trailing columns belong to a previous, larger chunk): kernels
        always sweep the full width -- the leaf block is reset to the
        all-ones marginalisation identity across it, so spare columns
        compute a harmless (and discarded) full marginal.
        """
        started = time.perf_counter_ns()
        n_queries = len(specs)
        plan = self.plan
        arena[: plan.n_leaves].fill(1.0)
        self._fill_leaves(arena, specs)
        if kernel == "numba":
            kernels.pick(kernels.sweep_tape, kernels.sweep_tape_py)(
                arena, *plan.tape()
            )
        else:
            for op in plan.ops:
                dst = arena[op.dst_lo: op.dst_lo + op.n_seg]
                if op.is_sum:
                    for p, slots in enumerate(op.pos_slots):
                        k = slots.shape[0]
                        buf = stage[:k]
                        np.take(arena, slots, axis=0, out=buf)
                        if p == 0:
                            np.multiply(buf, op.pos_weights[0], out=dst)
                        else:
                            np.multiply(buf, op.pos_weights[p], out=buf)
                            np.add(dst[:k], buf, out=dst[:k])
                else:
                    for p, slots in enumerate(op.pos_slots):
                        k = slots.shape[0]
                        buf = stage[:k]
                        np.take(arena, slots, axis=0, out=buf)
                        if p == 0:
                            np.copyto(dst, buf)
                        else:
                            np.multiply(dst[:k], buf, out=dst[:k])
        out = arena[plan.root_slot, :n_queries].copy()
        self.sweep_count += 1
        self.sweep_queries += n_queries
        self.sweep_ns += time.perf_counter_ns() - started
        return out

    def _sweep_legacy(self, specs):
        """The pre-fusion reference sweep: full ``(n_nodes, n_queries)``
        matrix, per-leaf-row fills, per-level gathers -- with the same
        pinned left-to-right accumulation as the fused kernels, so it
        stays bit-identical while remaining the memory/speed baseline
        the kernel bench compares against."""
        started = time.perf_counter_ns()
        n_queries = len(specs)
        values = np.ones((self.n_nodes, n_queries), dtype=float)
        for row, qcols in self._touched_leaves(specs).items():
            self._fill_leaf_row(values, row, qcols, specs)
        for level in self.levels:
            if level.prod_rows.size:
                segs0, flat0 = level.prod_pos[0]
                out = values[level.prod_child_index[flat0]]
                for segs, flat in level.prod_pos[1:]:
                    out[segs] *= values[level.prod_child_index[flat]]
                values[level.prod_rows] = out
            if level.sum_rows.size:
                segs0, flat0 = level.sum_pos[0]
                out = (
                    values[level.sum_child_index[flat0]]
                    * level.sum_weights[flat0][:, None]
                )
                for segs, flat in level.sum_pos[1:]:
                    out[segs] += (
                        values[level.sum_child_index[flat]]
                        * level.sum_weights[flat][:, None]
                    )
                values[level.sum_rows] = out
        result = values[self.root_row]
        self.sweep_count += 1
        self.sweep_queries += n_queries
        self.sweep_ns += time.perf_counter_ns() - started
        return result

    # ------------------------------------------------------------------
    # Leaf filling
    # ------------------------------------------------------------------
    def _touched_scopes(self, specs):
        """Map ``scope_index -> [query column, ...]`` needing leaf fills."""
        pending: dict[int, list[int]] = {}
        by_scope = self.plan.leaf_slots_by_scope
        for qcol, spec in enumerate(specs):
            for scope_index in set(spec.ranges) | set(spec.transforms):
                if scope_index in by_scope:
                    pending.setdefault(scope_index, []).append(qcol)
        return pending

    def _fill_leaves(self, arena, specs):
        """Fill every touched leaf row of the arena.

        The ``(range, transform)`` dedup runs **once per scope** -- all
        leaf rows of a scope see identical pairs, the legacy per-row
        dedup recomputed (and re-hashed) them for every row -- and the
        flattened interval arrays are shared across the scope's rows
        via :class:`~repro.core.leaves.PreparedBatch`.
        """
        for scope_index, qcols in self._touched_scopes(specs).items():
            entries = self.plan.leaf_slots_by_scope[scope_index]
            slots_map: dict = {}
            composed: dict = {}
            ranges, transforms = [], []
            assign = np.empty(len(qcols), dtype=np.intp)
            for k, qcol in enumerate(qcols):
                spec = specs[qcol]
                rng = spec.ranges.get(scope_index)
                transform_list = spec.transforms.get(scope_index)
                transform_key = (
                    tuple(transform_dedup_key(t) for t in transform_list)
                    if transform_list else None
                )
                key = (rng, transform_key)
                slot = slots_map.get(key)
                if slot is None:
                    slot = len(ranges)
                    slots_map[key] = slot
                    ranges.append(rng)
                    if transform_list is None:
                        transforms.append(None)
                    else:
                        transform = composed.get(transform_key)
                        if transform is None:
                            transform = product_transform(transform_list)
                            composed[transform_key] = transform
                        transforms.append(transform)
                assign[k] = slot
            prepared = PreparedBatch(ranges, transforms)
            cols = np.asarray(qcols, dtype=np.intp)
            for leaf_slot, leaf in entries:
                batch = getattr(leaf, "evaluate_batch", None)
                if batch is not None:
                    try:
                        distinct = np.asarray(
                            batch(ranges, transforms, prepared=prepared),
                            dtype=float,
                        )
                    except TypeError:  # a leaf predating the prepared API
                        distinct = np.asarray(batch(ranges, transforms), dtype=float)
                else:  # generic leaf without a vectorised kernel
                    distinct = np.array(
                        [leaf.evaluate(r, t) for r, t in zip(ranges, transforms)],
                        dtype=float,
                    )
                arena[leaf_slot, cols] = distinct[assign]

    def _touched_leaves(self, specs):
        """Map ``row -> [query column, ...]`` of leaf entries to fill."""
        pending: dict[int, list[int]] = {}
        for qcol, spec in enumerate(specs):
            for scope_index in set(spec.ranges) | set(spec.transforms):
                for row in self.leaf_rows_by_scope.get(scope_index, ()):
                    pending.setdefault(row, []).append(qcol)
        return pending

    def _fill_leaf_row(self, values, row, qcols, specs):
        """Deduplicate the specs hitting one leaf and evaluate them
        (the legacy kernel's per-row fill)."""
        leaf = self._leaf_at[row]
        scope = leaf.scope_index
        slots: dict = {}
        composed: dict = {}  # share one composed transform per key-tuple
        ranges, transforms = [], []
        assign = np.empty(len(qcols), dtype=np.intp)
        for k, qcol in enumerate(qcols):
            spec = specs[qcol]
            rng = spec.ranges.get(scope)
            transform_list = spec.transforms.get(scope)
            # Key on the well-known label where the transform IS the
            # registered singleton (labels are str, ids are int -- the
            # key spaces cannot collide): equal well-known transforms
            # always share a dedup slot, ad-hoc ones stay id-keyed.
            transform_key = (
                tuple(transform_dedup_key(t) for t in transform_list)
                if transform_list else None
            )
            key = (rng, transform_key)
            slot = slots.get(key)
            if slot is None:
                slot = len(ranges)
                slots[key] = slot
                ranges.append(rng)
                if transform_list is None:
                    transforms.append(None)
                else:
                    transform = composed.get(transform_key)
                    if transform is None:
                        transform = product_transform(transform_list)
                        composed[transform_key] = transform
                    transforms.append(transform)
            assign[k] = slot
        batch = getattr(leaf, "evaluate_batch", None)
        if batch is not None:
            distinct = np.asarray(batch(ranges, transforms), dtype=float)
        else:  # generic leaf without a vectorised kernel
            distinct = np.array(
                [leaf.evaluate(r, t) for r, t in zip(ranges, transforms)],
                dtype=float,
            )
        values[row, qcols] = distinct[assign]

    # ------------------------------------------------------------------
    # Arena pool
    # ------------------------------------------------------------------
    def _lease(self, width):
        """A (arena, stage) buffer pair for sweeps of ``width`` columns.

        Reused across chunks, batches and concurrent readers (each
        lease is exclusive); a pool miss allocates fresh buffers and
        bumps ``arena_allocations`` -- the no-new-large-allocations
        tests pin that steady-state evaluation stops allocating.
        """
        with self._pool_lock:
            for i, (w, arena, stage) in enumerate(self._arena_pool):
                if w == width:
                    self._arena_pool.pop(i)
                    return arena, stage
            self.arena_allocations += 1
        arena = np.empty((self.plan.arena_rows, width), dtype=float)
        stage = np.empty((self.plan.stage_rows, width), dtype=float)
        return arena, stage

    def _release(self, width, arena, stage):
        with self._pool_lock:
            if len(self._arena_pool) < _ARENA_POOL_CAP:
                self._arena_pool.append((width, arena, stage))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def plan_signature(self) -> str:
        """Digest of the fused plan; see :meth:`_FusedPlan.signature`."""
        return self.plan.signature()

    def refresh_weights(self):
        """Re-bake every baked sum-weight array from the live nodes.

        The incremental-invalidation fast path: after a batch of count
        mutations the structure, slots and leaf wiring of this form are
        all still exact -- only the frozen mixture weights (fused-plan
        ``pos_weights`` and the legacy levels' ``sum_weights``) drifted.
        Patching them in place is O(sum nodes) instead of the O(nodes)
        re-lowering ``compiled_for`` would do.  Returns ``False`` when
        this form has no node back-references (tape-restored mapped
        forms): the caller falls back to a full recompile.
        """
        level_sums = getattr(self, "_level_sums", None)
        if level_sums is None or not self.plan.refresh_weights():
            return False
        for level, sums in zip(self.levels, level_sums):
            if not sums:
                continue
            weights: list[float] = []
            for node in sums:
                weights.extend(node.weights)
            level.sum_weights = np.array(weights, dtype=float)
        return True

    def kernel_stats(self) -> dict:
        """Kernel + sweep telemetry for benches and serving ``/stats``."""
        with self._pool_lock:
            allocations = self.arena_allocations
            pooled = len(self._arena_pool)
        queries = self.sweep_queries
        return {
            **kernels.describe(),
            "n_nodes": self.n_nodes,
            "arena_rows": self.plan.arena_rows,
            "stage_rows": self.plan.stage_rows,
            "arena_bytes_per_column": 8 * (self.plan.arena_rows + self.plan.stage_rows),
            "legacy_bytes_per_column": 8 * self.n_nodes,
            "arena_allocations": allocations,
            "arena_pooled": pooled,
            "sweeps": self.sweep_count,
            "sweep_queries": queries,
            "sweep_ns_total": self.sweep_ns,
            "sweep_ns_per_query": (self.sweep_ns / queries) if queries else None,
        }


def _post_order(root):
    """Iterative post-order: children always precede their parent."""
    order, stack = [], [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded or isinstance(node, LeafNode):
            order.append(node)
            continue
        stack.append((node, True))
        for child in node.children:
            stack.append((child, False))
    return order


# ----------------------------------------------------------------------
# Flat-array export / import (shared-memory tree transport)
# ----------------------------------------------------------------------
# A node tree lowered to plain arrays plus a small JSON-able structure
# header, so the sharded evaluator can publish the whole model into one
# shared-memory segment and workers can rebuild an evaluation twin whose
# leaf histograms are zero-copy views into the externally-owned buffer.
# Only what evaluation needs is exported: node kinds, child topology,
# sum-node counts (weights are derived exactly as the live tree derives
# them) and the leaf payload arrays.  Update-only state (KMeans routing
# models, FD dictionaries) stays behind -- imported trees are read-only
# evaluation twins, which is all a sharding worker ever runs.
#
# The fused sweep plan itself is NOT exported: it is a pure function of
# the post order, which export/import preserve exactly, so the worker's
# recompiled plan is identical (the transport ships the parent's
# ``plan_signature`` and the worker verifies the match).

_KIND_SUM, _KIND_PRODUCT, _KIND_DISCRETE, _KIND_BINNED = 0, 1, 2, 3


def _build_leaf(kind, scope_index, attribute, offset, n, leaf_data):
    """One histogram leaf over views into a flat payload array."""
    if kind == _KIND_DISCRETE:
        return DiscreteLeaf(
            scope_index,
            attribute,
            leaf_data[offset:offset + n],
            leaf_data[offset + n:offset + 2 * n],
            float(leaf_data[offset + 2 * n]),
        )
    if kind == _KIND_BINNED:
        edges_end = offset + n + 1
        return BinnedLeaf(
            scope_index,
            attribute,
            leaf_data[offset:edges_end],
            leaf_data[edges_end:edges_end + n],
            leaf_data[edges_end + n:edges_end + 2 * n],
            leaf_data[edges_end + 2 * n:edges_end + 3 * n],
            float(leaf_data[edges_end + 3 * n]),
        )
    raise ValueError(f"unknown leaf kind {kind}")


def export_tree_arrays(root):
    """Lower a node tree to ``(meta, arrays)`` for an external buffer.

    ``arrays`` values are flat NumPy arrays (shippable through the
    segment codec of :mod:`repro.core.specpack`); ``meta`` carries the
    structure header (root row, per-leaf attribute names and payload
    offsets) plus the compiled form's ``plan_signature``.  All float
    payloads travel as raw float64 bytes, so :func:`import_tree_arrays`
    reproduces evaluation bit-for-bit.
    """
    order = _post_order(root)
    index_of = {id(node): i for i, node in enumerate(order)}
    kinds = np.empty(len(order), dtype=np.int8)
    leaf_scope = np.full(len(order), -1, dtype=np.int64)
    child_offsets = [0]
    child_index: list[int] = []
    child_counts: list[float] = []
    leaf_meta = []
    leaf_chunks: list[np.ndarray] = []
    leaf_offset = 0
    for i, node in enumerate(order):
        if isinstance(node, SumNode):
            kinds[i] = _KIND_SUM
            child_index.extend(index_of[id(c)] for c in node.children)
            child_counts.extend(np.asarray(node.counts, dtype=float))
        elif isinstance(node, ProductNode):
            kinds[i] = _KIND_PRODUCT
            child_index.extend(index_of[id(c)] for c in node.children)
            child_counts.extend(0.0 for _ in node.children)
        elif isinstance(node, DiscreteLeaf):
            kinds[i] = _KIND_DISCRETE
            leaf_scope[i] = node.scope_index
            payload = [
                np.asarray(node.values, dtype=np.float64),
                np.asarray(node.counts, dtype=np.float64),
                np.asarray([node.null_count], dtype=np.float64),
            ]
            leaf_meta.append(
                {
                    "row": i,
                    "attribute": node.attribute,
                    "offset": leaf_offset,
                    "n": int(node.values.shape[0]),
                }
            )
            leaf_chunks.extend(payload)
            leaf_offset += sum(chunk.shape[0] for chunk in payload)
        elif isinstance(node, BinnedLeaf):
            kinds[i] = _KIND_BINNED
            leaf_scope[i] = node.scope_index
            payload = [
                np.asarray(node.edges, dtype=np.float64),
                np.asarray(node.counts, dtype=np.float64),
                np.asarray(node.sums, dtype=np.float64),
                np.asarray(node.distinct, dtype=np.float64),
                np.asarray([node.null_count], dtype=np.float64),
            ]
            leaf_meta.append(
                {
                    "row": i,
                    "attribute": node.attribute,
                    "offset": leaf_offset,
                    "n": int(node.counts.shape[0]),
                }
            )
            leaf_chunks.extend(payload)
            leaf_offset += sum(chunk.shape[0] for chunk in payload)
        else:
            raise TypeError(
                f"cannot export {type(node).__name__}: only sum/product "
                "nodes and the histogram leaves have a flat-array form"
            )
        child_offsets.append(len(child_index))
    meta = {
        "kind": "rspn-tree",
        "root_row": index_of[id(root)],
        "leaves": leaf_meta,
        # The worker recompiles the plan from the (preserved) post
        # order; shipping the parent's digest lets it prove the plans
        # match before answering (plan drift -> error -> serial
        # fallback, never a wrong answer).
        "plan_signature": compiled_for(root).plan_signature(),
    }
    arrays = {
        "kinds": kinds,
        "leaf_scope": leaf_scope,
        "child_offsets": np.asarray(child_offsets, dtype=np.int64),
        "child_index": np.asarray(child_index, dtype=np.int64),
        "child_counts": np.asarray(child_counts, dtype=np.float64),
        "leaf_data": (
            np.concatenate(leaf_chunks)
            if leaf_chunks else np.empty(0, dtype=np.float64)
        ),
    }
    return meta, arrays


def import_tree_arrays(meta, arrays):
    """Rebuild an evaluation twin from :func:`export_tree_arrays` output.

    Leaf histogram arrays are **views into the caller's buffer** -- no
    copies -- so the buffer (e.g. an attached shared-memory segment)
    must outlive the returned tree.  The twin evaluates bit-identically
    to the exported tree (post order, and therefore the fused sweep
    plan, are preserved exactly); it is read-only (no KMeans routing
    state), so never route updates at it.
    """
    kinds = arrays["kinds"]
    leaf_scope = arrays["leaf_scope"]
    child_offsets = arrays["child_offsets"]
    child_index = arrays["child_index"]
    child_counts = arrays["child_counts"]
    leaf_data = arrays["leaf_data"]
    leaf_meta = {entry["row"]: entry for entry in meta["leaves"]}
    nodes: list = [None] * len(kinds)
    for i in range(len(kinds)):
        kind = int(kinds[i])
        if kind in (_KIND_SUM, _KIND_PRODUCT):
            a, b = int(child_offsets[i]), int(child_offsets[i + 1])
            children = [nodes[int(j)] for j in child_index[a:b]]
            scope = tuple(sorted({s for c in children for s in c.scope}))
            if kind == _KIND_SUM:
                nodes[i] = SumNode(scope, children, child_counts[a:b])
            else:
                nodes[i] = ProductNode(scope, children)
            continue
        entry = leaf_meta[i]
        nodes[i] = _build_leaf(
            kind,
            int(leaf_scope[i]),
            entry["attribute"],
            int(entry["offset"]),
            int(entry["n"]),
            leaf_data,
        )
    return nodes[int(meta["root_row"])]


# Per-root ``id(node) -> post-order row`` maps.  Updates never change
# structure, so the map stays valid for the life of the tree; keyed
# weakly by root so it dies with its owner (the root keeps every node
# alive, so the stored ids cannot be recycled while the entry lives).
_ROW_INDEX: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def row_index(root) -> dict:
    """Cached ``id(node) -> post-order row`` map of a tree.

    The batch applier (:mod:`repro.core.updates`) uses it to name the
    nodes it touched by their canonical rows, which is the vocabulary
    :func:`export_tree_delta` and the shard transport speak.
    """
    index = _ROW_INDEX.get(root)
    if index is None:
        index = {
            id(node): i for i, node in enumerate(_post_order(root))
        }
        _ROW_INDEX[root] = index
    return index


def export_tree_delta(root, sum_rows, leaf_rows, from_generation,
                      to_generation):
    """Lower the *touched* rows of a tree to a ``(meta, arrays)`` patch.

    The delta is **absolute state, not diffs**: for every touched sum
    row it carries the full current counts array, for every touched
    leaf row the full current payload (same per-kind layout as
    :func:`export_tree_arrays`).  Applying it therefore lands any twin
    whose *untouched* rows match the base state exactly on
    ``to_generation`` -- workers lagging at any generation in
    ``[from_generation, to_generation)`` patch with the same blob.
    ``meta`` ships the parent's post-refresh ``plan_signature`` so the
    patched worker can prove its re-baked plan matches.
    """
    order = _post_order(root)
    sum_rows = sorted(int(row) for row in set(sum_rows))
    leaf_rows = sorted(int(row) for row in set(leaf_rows))
    sum_offsets = [0]
    sum_chunks: list[np.ndarray] = []
    for row in sum_rows:
        node = order[row]
        if not isinstance(node, SumNode):
            raise TypeError(f"delta row {row} is not a sum node")
        counts = np.asarray(node.counts, dtype=np.float64)
        sum_chunks.append(counts)
        sum_offsets.append(sum_offsets[-1] + counts.shape[0])
    leaf_kinds = np.empty(len(leaf_rows), dtype=np.int8)
    leaf_ns = np.empty(len(leaf_rows), dtype=np.int64)
    leaf_offsets = [0]
    leaf_chunks: list[np.ndarray] = []
    for slot, row in enumerate(leaf_rows):
        node = order[row]
        if isinstance(node, DiscreteLeaf):
            leaf_kinds[slot] = _KIND_DISCRETE
            leaf_ns[slot] = int(node.values.shape[0])
            payload = [
                np.asarray(node.values, dtype=np.float64),
                np.asarray(node.counts, dtype=np.float64),
                np.asarray([node.null_count], dtype=np.float64),
            ]
        elif isinstance(node, BinnedLeaf):
            leaf_kinds[slot] = _KIND_BINNED
            leaf_ns[slot] = int(node.counts.shape[0])
            payload = [
                np.asarray(node.edges, dtype=np.float64),
                np.asarray(node.counts, dtype=np.float64),
                np.asarray(node.sums, dtype=np.float64),
                np.asarray(node.distinct, dtype=np.float64),
                np.asarray([node.null_count], dtype=np.float64),
            ]
        else:
            raise TypeError(f"delta row {row} is not a histogram leaf")
        leaf_chunks.extend(payload)
        leaf_offsets.append(
            leaf_offsets[-1] + sum(chunk.shape[0] for chunk in payload)
        )
    meta = {
        "kind": "rspn-tree-delta",
        "from_generation": int(from_generation),
        "to_generation": int(to_generation),
        "plan_signature": compiled_for(root).plan_signature(),
    }
    arrays = {
        "sum_rows": np.asarray(sum_rows, dtype=np.int64),
        "sum_offsets": np.asarray(sum_offsets, dtype=np.int64),
        "sum_counts": (
            np.concatenate(sum_chunks)
            if sum_chunks else np.empty(0, dtype=np.float64)
        ),
        "leaf_rows": np.asarray(leaf_rows, dtype=np.int64),
        "leaf_kinds": leaf_kinds,
        "leaf_ns": leaf_ns,
        "leaf_offsets": np.asarray(leaf_offsets, dtype=np.int64),
        "leaf_data": (
            np.concatenate(leaf_chunks)
            if leaf_chunks else np.empty(0, dtype=np.float64)
        ),
    }
    return meta, arrays


def apply_tree_delta(root, meta, arrays):
    """Patch a tree in place from an :func:`export_tree_delta` blob.

    Touched arrays are replaced with private **copies** (never views),
    so the delta's backing buffer can be released immediately after the
    call.  Does not touch the generation machinery: the caller decides
    whether the patched tree's compiled form can be weight-refreshed
    (:meth:`CompiledRSPN.refresh_weights`) or must recompile.  Returns
    ``(sum nodes patched, leaves patched)``.
    """
    if meta.get("kind") != "rspn-tree-delta":
        raise ValueError(f"not a tree delta: {meta.get('kind')!r}")
    order = _post_order(root)
    sum_rows = arrays["sum_rows"]
    sum_offsets = arrays["sum_offsets"]
    sum_counts = arrays["sum_counts"]
    for i in range(sum_rows.shape[0]):
        node = order[int(sum_rows[i])]
        if not isinstance(node, SumNode):
            raise TypeError(f"delta row {int(sum_rows[i])} is not a sum node")
        a, b = int(sum_offsets[i]), int(sum_offsets[i + 1])
        node.counts = sum_counts[a:b].copy()
        node._weights = None
    leaf_rows = arrays["leaf_rows"]
    leaf_kinds = arrays["leaf_kinds"]
    leaf_ns = arrays["leaf_ns"]
    leaf_offsets = arrays["leaf_offsets"]
    leaf_data = arrays["leaf_data"]
    for i in range(leaf_rows.shape[0]):
        node = order[int(leaf_rows[i])]
        kind = int(leaf_kinds[i])
        n = int(leaf_ns[i])
        offset = int(leaf_offsets[i])
        if kind == _KIND_DISCRETE:
            if not isinstance(node, DiscreteLeaf):
                raise TypeError(
                    f"delta row {int(leaf_rows[i])} is not a DiscreteLeaf"
                )
            node.values = leaf_data[offset:offset + n].copy()
            node.counts = leaf_data[offset + n:offset + 2 * n].copy()
            node.null_count = float(leaf_data[offset + 2 * n])
        elif kind == _KIND_BINNED:
            if not isinstance(node, BinnedLeaf):
                raise TypeError(
                    f"delta row {int(leaf_rows[i])} is not a BinnedLeaf"
                )
            edges_end = offset + n + 1
            node.edges = leaf_data[offset:edges_end].copy()
            node.counts = leaf_data[edges_end:edges_end + n].copy()
            node.sums = leaf_data[edges_end + n:edges_end + 2 * n].copy()
            node.distinct = (
                leaf_data[edges_end + 2 * n:edges_end + 3 * n].copy()
            )
            node.null_count = float(leaf_data[edges_end + 3 * n])
        else:
            raise ValueError(f"unknown leaf kind {kind}")
    return int(sum_rows.shape[0]), int(leaf_rows.shape[0])


def post_order(root):
    """The tree's nodes in post order (children before parents).

    This ordering is the tree's canonical row numbering: it is the order
    :func:`export_tree_arrays` assigns rows in, import preserves it
    exactly, and the fused sweep plan (and thus ``plan_signature``) is a
    pure function of it.  External metadata keyed "by row" -- the model
    store's per-sum-node KMeans routing state in particular -- resolves
    through this function on either side of an export/import round trip.
    """
    return _post_order(root)


# Node-array attributes an update path may mutate in place; thawing
# copies exactly these (SumNode.counts plus every leaf payload array).
_MUTABLE_ARRAY_ATTRS = ("counts", "values", "edges", "sums", "distinct")


def thaw_tree(root):
    """Copy-on-write release of a tree from its backing buffer.

    An :func:`import_tree_arrays` twin aliases the exporter's buffer
    (a shared-memory segment or a file mapping) through read-only array
    views; in-place updates would fail on them, and the buffer cannot
    be unmapped while they live.  Thawing replaces every read-only
    array in the tree with a private writable copy -- bit-identical, so
    evaluation and the fused plan are unchanged -- after which the tree
    no longer references the buffer at all.  Returns the number of
    arrays copied (0 when the tree was never frozen).
    """
    copied = 0
    for node in _post_order(root):
        for attr in _MUTABLE_ARRAY_ATTRS:
            array = getattr(node, attr, None)
            if isinstance(array, np.ndarray) and not array.flags.writeable:
                setattr(node, attr, array.copy())
                copied += 1
    return copied


# ----------------------------------------------------------------------
# Compiled form restored from exported arrays (model store cold start)
# ----------------------------------------------------------------------
# A tree lowered by ``CompiledRSPN.__init__`` costs an O(nodes) Python
# pass -- fine after learning, fatal for cold start: a restarting server
# would pay it before the first answer even though the sweep itself only
# ever reads the *plan* (flat arrays) and the touched scopes' leaf
# histograms.  The model store therefore persists the plan tape next to
# the tree arrays, and this section rebuilds an evaluation-equivalent
# compiled form straight from those buffers: O(ops) plan restore, leaf
# objects built lazily per scope on first touch, and the Python node
# tree not built at all until something actually needs it (the legacy
# kernel, the sharded transport, or an update).

# Array names the model store persists for the plan tape, in
# ``_FusedPlan.tape()`` order.
PLAN_TAPE_KEYS = (
    "plan_op_kind", "plan_op_dst", "plan_op_pos_off", "plan_pos_count",
    "plan_pos_child_off", "plan_child_slots", "plan_weights",
)


def plan_store_payload(form):
    """``(scalars, tape_arrays)`` of a compiled form for persistence.

    ``scalars`` is a JSON-able dict for the store's blob header;
    ``tape_arrays`` maps :data:`PLAN_TAPE_KEYS` to the plan's flattened
    instruction stream (the exact arrays the numba kernel interprets).
    :func:`restore_compiled` inverts both.
    """
    plan = form.plan
    scalars = {
        "arena_rows": plan.arena_rows,
        "stage_rows": plan.stage_rows,
        "root_slot": plan.root_slot,
        "n_leaves": plan.n_leaves,
    }
    return scalars, dict(zip(PLAN_TAPE_KEYS, plan.tape()))


# Array names the model store persists for the leaf table (indexed by
# leaf slot, i.e. post-order rank among leaves).
LEAF_TABLE_KEYS = ("leaf_rows", "leaf_offsets", "leaf_ns")


def leaf_table_arrays(leaf_meta):
    """``(arrays, attributes)`` columnar form of an exported leaf table.

    The store persists the numeric columns as int64 arrays (mmap views
    at load, so a cold start touches no per-leaf Python objects) and the
    attribute names as one flat JSON list.  Inverted by
    :func:`leaf_entries_from_arrays`.
    """
    count = len(leaf_meta)
    arrays = {
        "leaf_rows": np.fromiter(
            (entry["row"] for entry in leaf_meta), np.int64, count
        ),
        "leaf_offsets": np.fromiter(
            (entry["offset"] for entry in leaf_meta), np.int64, count
        ),
        "leaf_ns": np.fromiter(
            (entry["n"] for entry in leaf_meta), np.int64, count
        ),
    }
    return arrays, [entry["attribute"] for entry in leaf_meta]


def leaf_entries_from_arrays(arrays, attributes):
    """Rebuild :func:`export_tree_arrays`-shaped leaf entries.

    O(leaves) Python -- used only when a mapped tree materialises, never
    on the cold-start path.
    """
    return [
        {"row": int(row), "attribute": attribute,
         "offset": int(offset), "n": int(n)}
        for row, attribute, offset, n in zip(
            arrays["leaf_rows"], attributes,
            arrays["leaf_offsets"], arrays["leaf_ns"],
        )
    ]


class _LazyLeafSlots:
    """``scope -> ((slot, leaf), ...)``, leaves built on first touch.

    The eager equivalent (``_FusedPlan.leaf_slots_by_scope``) holds live
    leaf objects for every scope; here a scope's leaves materialise from
    the flat payload only when a query actually conditions on it, so a
    cold start instantiates a handful of leaves instead of thousands.
    Built leaves are cached -- repeated queries see identical objects,
    like the eager map.

    Backed entirely by the persisted leaf-table arrays (no per-leaf
    Python work at construction): ``order`` holds leaf slots grouped by
    scope (ascending slot within a scope, matching the eager map's post
    order), ``scopes``/``starts`` delimit the groups.
    """

    __slots__ = ("_scopes", "_starts", "_order", "_kinds", "_attributes",
                 "_offsets", "_ns", "_leaf_data", "_built")

    def __init__(self, scopes, starts, order, kinds, attributes, offsets,
                 ns, leaf_data):
        self._scopes = scopes          # unique scope indices, ascending
        self._starts = starts          # group start index into order
        self._order = order            # leaf slots grouped by scope
        self._kinds = kinds            # per-slot leaf kind
        self._attributes = attributes  # per-slot attribute name
        self._offsets = offsets        # per-slot payload offset
        self._ns = ns                  # per-slot histogram size
        self._leaf_data = leaf_data
        self._built = {}

    def _group(self, position):
        lo = int(self._starts[position])
        hi = (
            int(self._starts[position + 1])
            if position + 1 < self._starts.shape[0]
            else self._order.shape[0]
        )
        return self._order[lo:hi]

    def _position(self, scope):
        position = int(np.searchsorted(self._scopes, scope))
        if (position >= self._scopes.shape[0]
                or int(self._scopes[position]) != scope):
            return None
        return position

    def __contains__(self, scope):
        return self._position(scope) is not None

    def __iter__(self):
        return (int(scope) for scope in self._scopes)

    def __len__(self):
        return self._scopes.shape[0]

    def slot_items(self):
        """Sorted ``(scope, [slot, ...])`` pairs without building leaves
        (what :meth:`_FusedPlan.signature` hashes)."""
        return [
            (int(self._scopes[position]),
             [int(slot) for slot in self._group(position)])
            for position in range(self._scopes.shape[0])
        ]

    def __getitem__(self, scope):
        built = self._built.get(scope)
        if built is None:
            position = self._position(scope)
            if position is None:
                raise KeyError(scope)
            built = tuple(
                (int(slot),
                 _build_leaf(int(self._kinds[slot]), scope,
                             self._attributes[slot], int(self._offsets[slot]),
                             int(self._ns[slot]), self._leaf_data))
                for slot in self._group(position)
            )
            self._built[scope] = built
        return built


class MappedCompiledRSPN(CompiledRSPN):
    """A compiled form over exported tree arrays -- no Python tree.

    Construction is O(plan ops + leaf count) cheap slicing over buffers
    that typically live in a model store mapping; nothing is copied.
    Evaluation through the fused numpy/numba kernels is bit-identical to
    the tree-lowered form (same plan tape, same leaf payloads).  Paths
    that genuinely need the node tree -- the ``legacy`` reference
    kernel, the sharded evaluator's transport, updates -- call
    ``materialize()``, which imports the twin and re-homes this form
    onto it (see :func:`adopt`).
    """

    def __init__(self, meta, arrays, materialize):
        kinds = arrays["kinds"]
        leaf_scope = arrays["leaf_scope"]
        leaf_data = arrays["leaf_data"]
        self.n_nodes = int(kinds.shape[0])
        self.root_row = int(meta["root_row"])
        self.generation = 0
        # ``materialize`` must not strongly reference the owning RSPN
        # (the owner references this form: a cycle would defeat the
        # refcount cascade DeepDB.close() relies on for a deterministic
        # unmap) -- the model store passes a weak-method closure.
        self._materialize = materialize

        # Group leaf slots by scope with array ops only -- per-leaf
        # Python work here would put O(leaves) back on the cold-start
        # path.  The stable sort keeps slots ascending within a scope,
        # matching the eager map's post order (signature parity).
        leaf_rows = arrays["leaf_rows"]
        slot_scopes = leaf_scope[leaf_rows]
        order = np.argsort(slot_scopes, kind="stable")
        scopes, starts = np.unique(slot_scopes[order], return_index=True)
        lazy = _LazyLeafSlots(
            scopes, starts, order, kinds[leaf_rows],
            meta["leaf_attributes"], arrays["leaf_offsets"],
            arrays["leaf_ns"], leaf_data,
        )
        tape = tuple(arrays[key] for key in PLAN_TAPE_KEYS)
        self.plan = _FusedPlan.from_tape(
            tape, meta["plan"], lazy, lazy.slot_items,
        )

        self._pool_lock = threading.Lock()
        self._arena_pool = []
        self.arena_allocations = 0
        self.sweep_count = 0
        self.sweep_ns = 0
        self.sweep_queries = 0

    def root_ref(self):
        # Class-level counterpart of CompiledRSPN's ``root_ref``
        # instance attribute (a weakref to the tree): the sharded
        # transport calls it, and for a mapped form that means
        # materialising the tree on demand.  :func:`adopt` shadows this
        # with a real weakref once the twin exists.  A method (not a
        # stored bound method) so the form never references itself.
        return self._materialize()

    def evaluate_batch(self, specs, executor=None):
        # The legacy reference kernel sweeps the full node-value matrix
        # and needs the tree; build the real lowered form for it.
        if kernels.resolve() == "legacy":
            return self._full_form().evaluate_batch(specs, executor=executor)
        return super().evaluate_batch(specs, executor=executor)

    def _full_form(self):
        root = self._materialize()
        form = _CACHE.get(root)
        if form is None or form is self or form.generation != generation(root):
            form = CompiledRSPN(root)
            form.generation = generation(root)
            _CACHE[root] = form
        return form


# ----------------------------------------------------------------------
# Per-root compilation cache, guarded by a generation counter
# ----------------------------------------------------------------------
# Mutations never pop the cache directly; they bump the root's
# *generation* and the next ``compiled_for`` notices the mismatch and
# re-lowers.  The same counter is the invalidation hook the serving
# layer's result cache rides (surfaced as ``RSPN.generation`` and
# ``SPNEnsemble.generation``), so one mechanism answers both "is this
# compiled form stale?" and "are cached query results stale?".
_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_GENERATIONS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def generation(root) -> int:
    """Monotonic mutation counter of a node tree (0 for untouched)."""
    return _GENERATIONS.get(root, 0)


def compiled_for(root) -> CompiledRSPN:
    """The (cached) compiled form of a node tree.

    Stale forms are detected by comparing the cache entry's recorded
    generation against the root's current one, so out-of-date entries
    are replaced lazily on the next evaluation.
    """
    compiled = _CACHE.get(root)
    current = generation(root)
    if compiled is None or compiled.generation != current:
        compiled = CompiledRSPN(root)
        compiled.generation = current
        _CACHE[root] = compiled
    return compiled


def adopt(root, form):
    """Seed the compilation cache: ``form`` becomes ``root``'s compiled
    form.

    Used when a :class:`MappedCompiledRSPN` materialises its node tree:
    the restored form evaluates bit-identically to what
    ``CompiledRSPN(root)`` would lower (same plan, same leaf payloads),
    so adopting it avoids an immediate O(nodes) recompile.  The normal
    generation machinery takes over from here -- the first mutation
    bumps the root's generation and :func:`compiled_for` re-lowers from
    the (by then thawed) tree.
    """
    form.generation = generation(root)
    form.root_ref = weakref.ref(root)
    _CACHE[root] = form


def peek(root):
    """The cached compiled form if present and current, else ``None``
    (never compiles; for telemetry like ``DeepDB.kernel_stats``)."""
    compiled = _CACHE.get(root)
    if compiled is not None and compiled.generation == generation(root):
        return compiled
    return None


def invalidate(root):
    """Mark the compiled form stale after a mutation of sum-node weights
    or tree structure by bumping the root's generation; the next
    evaluation re-lowers the tree.  The stale entry is dropped eagerly
    so write-heavy phases don't retain dead flat arrays; the generation
    check in :func:`compiled_for` stays as the correctness backstop."""
    _GENERATIONS[root] = generation(root) + 1
    _CACHE.pop(root, None)


def refresh_weights(root) -> int:
    """Incremental invalidation: bump the generation but *keep* the
    compiled form, patching its baked sum weights in place.

    The contract every cache rides (generation moved == answers may
    have changed) is preserved -- only the recovery cost changes: where
    :func:`invalidate` schedules an O(nodes) re-lowering,
    this re-bakes O(sum nodes) weight arrays and leaves the plan,
    arena allocation and leaf wiring untouched.  Only valid after
    mutations that change **sum counts and leaf payloads** (the batch
    applier's footprint); anything structural must use
    :func:`invalidate`.  Falls back to dropping the cache entry when
    the form cannot be patched (mapped forms).  Returns the new
    generation.
    """
    current = generation(root) + 1
    _GENERATIONS[root] = current
    form = _CACHE.get(root)
    if form is not None:
        if form.refresh_weights():
            form.generation = current
        else:
            _CACHE.pop(root, None)
    return current
