"""Inclusion-exclusion expansion of disjunctive predicates.

The paper's query class is conjunctive, but Section 4.1 notes that
"disjunctions could be realized using the inclusion-exclusion
principle".  This module implements that: a query whose WHERE clause is
a conjunction of OR groups (CNF with atomic literals) is expanded into a
signed sum of purely conjunctive queries::

    1_{A or B} = 1_A + 1_B - 1_{A and B}

and, for several OR groups, the cross product of each group's expansion.
COUNT and SUM are linear in the row indicator, so the signed sum of the
conjunctive answers is the exact disjunctive answer; AVG follows as
SUM / COUNT.

The expansion has ``prod_g (2^|G_g| - 1)`` terms; queries beyond
``max_terms`` are rejected rather than silently truncated.
"""

from __future__ import annotations

import itertools

from repro.engine.query import Query


class ExpansionError(ValueError):
    """Raised when an inclusion-exclusion expansion would be too large."""


def expansion_size(query: Query):
    """Number of conjunctive terms the expansion will produce."""
    size = 1
    for group in query.disjunctions:
        size *= 2 ** len(group) - 1
    return size


def _group_expansion(group):
    """Signed subsets of one OR group: ``[(sign, predicates), ...]``.

    By inclusion-exclusion, ``P(A1 or ... or An)`` is the sum over all
    non-empty subsets ``S`` of ``(-1)^(|S|+1) * P(and of S)``.
    """
    terms = []
    for size in range(1, len(group) + 1):
        sign = 1 if size % 2 == 1 else -1
        for subset in itertools.combinations(group, size):
            terms.append((sign, subset))
    return terms


def expand(query: Query, max_terms=1024):
    """Expand a disjunctive query into signed conjunctive queries.

    Returns ``[(sign, conjunctive_query), ...]`` whose signed COUNT/SUM
    answers sum to the disjunctive answer.  A query without disjunctions
    expands to itself with sign ``+1``.
    """
    if not query.disjunctions:
        return [(1, query)]
    size = expansion_size(query)
    if size > max_terms:
        raise ExpansionError(
            f"inclusion-exclusion expansion has {size} terms (> {max_terms})"
        )
    base = query.without_disjunctions()
    per_group = [_group_expansion(group) for group in query.disjunctions]
    terms = []
    for combination in itertools.product(*per_group):
        sign = 1
        extra = []
        for group_sign, subset in combination:
            sign *= group_sign
            extra.extend(subset)
        conjunctive = Query(
            tables=base.tables,
            aggregate=base.aggregate,
            predicates=base.predicates + tuple(extra),
            group_by=base.group_by,
            join_kind=base.join_kind,
        )
        terms.append((sign, conjunctive))
    return terms


def cardinality_via_expansion(estimator, query: Query, max_terms=1024):
    """Disjunctive cardinality through any conjunctive-only estimator.

    Estimators that model selectivities (Postgres-style, Chow-Liu, the
    exact executor) answer disjunctive queries exactly as the signed sum
    of their conjunctive answers; the result is clamped to >= 1 like
    every cardinality interface in this repository.
    """
    if not query.has_disjunctions:
        return max(float(estimator.cardinality(query)), 1.0)
    total = sum(
        sign * float(estimator.cardinality(term))
        for sign, term in expand(query, max_terms=max_terms)
    )
    return max(total, 1.0)
