"""Execution kernels for compiled RSPN inference.

One process-wide knob -- ``kernel={auto, numpy, numba, legacy}`` --
selects how :class:`~repro.core.compiled.CompiledRSPN` executes its
bottom-up sweep and how the histogram leaves execute their batched
kernels:

- ``numpy``  -- the fused arena sweep (pre-planned ``np.take`` /
  ``np.multiply`` / ``np.add`` calls over a small reusable arena).
- ``numba``  -- the same sweep plan lowered to one ``@njit`` tape
  interpreter, plus ``@njit`` lowerings of both leaf kernels.  Falls
  back **silently** to ``numpy`` when numba is not installed.
- ``auto``   -- ``numba`` when available, ``numpy`` otherwise (default).
- ``legacy`` -- the pre-fusion full-``(n_nodes, n_queries)`` matrix
  sweep.  Kept as the differential/bench baseline
  (``benchmarks/bench_kernels.py`` measures fused vs legacy).

Bit-identity contract
---------------------
All kernels produce **bit-identical** results (``==``, not allclose).
That is only possible because every reduction in the hot path has an
*explicitly pinned accumulation order*:

- sum/product nodes accumulate their children **left to right** (the
  weight multiply rounds first, then the add), expressed in NumPy as
  position-sliced elementwise ops -- never ``ufunc.reduceat`` or
  ``ndarray.sum``, whose intra-segment accumulation order is a SIMD
  implementation detail of the NumPy build (verified empirically: it is
  neither sequential nor the classic pairwise scheme, and it varies
  with both operand shape and stride);
- the binned leaf's per-query bin reduction uses the explicit halving
  fold of :func:`ordered_rowsum`;
- the discrete leaf's prefix sums ride ``np.cumsum`` / ``np.add.at``,
  which are sequential and therefore exactly replicable in a scalar
  loop.

Elementwise binary operations are fully defined by IEEE-754 regardless
of vectorisation, so any kernel that performs the same elementwise ops
in the same order produces the same bits.  The numba twins below are
written as scalar loops performing exactly those ops; numba's default
``fastmath=False`` keeps IEEE semantics (no FMA contraction, no
reassociation).

Every ``@njit`` kernel also exists as its pure-Python twin (the
``*_py`` name): when numba is absent the twin *is* the kernel, and the
test suite exercises the numba code path through the twins even on
hosts without numba.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

try:  # pragma: no cover - exercised only on hosts with numba installed
    import numba as _numba

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the no-numba default container
    _numba = None
    HAVE_NUMBA = False

KERNELS = ("auto", "numpy", "numba", "legacy")

_DEFAULT = os.environ.get("REPRO_KERNEL", "auto")
_KERNEL = _DEFAULT if _DEFAULT in KERNELS else "auto"
_PYTHON_TWINS = False  # test hook: run numba code paths as pure Python


def set_kernel(name):
    """Select the process-wide execution kernel (``auto`` by default).

    ``numba`` on a host without numba resolves to ``numpy`` silently --
    the knob records intent, :func:`resolve` reports what actually runs.
    """
    global _KERNEL
    if name is None:
        return
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of {KERNELS}")
    _KERNEL = name


def get_kernel() -> str:
    """The requested kernel name (``set_kernel``'s last value)."""
    return _KERNEL


def resolve(requested=None) -> str:
    """The kernel that will actually execute: ``numpy``, ``numba`` or
    ``legacy``.  ``auto``/``numba`` degrade silently to ``numpy`` when
    numba is absent (unless the pure-Python twins are forced by the
    test hook :func:`python_twins`)."""
    name = requested or _KERNEL
    if name == "legacy":
        return "legacy"
    if name in ("auto", "numba") and (HAVE_NUMBA or _PYTHON_TWINS):
        if name == "numba" or HAVE_NUMBA:
            return "numba"
    return "numpy"


@contextmanager
def use(name):
    """Temporarily select a kernel (tests and benches)."""
    global _KERNEL
    previous = _KERNEL
    set_kernel(name)
    try:
        yield
    finally:
        _KERNEL = previous


@contextmanager
def python_twins():
    """Force the numba code paths to run as their pure-Python twins.

    Lets the differential suite exercise the exact code numba would
    compile -- same loops, same per-element operations -- on hosts
    without numba (and, on hosts with it, to check jit == twin)."""
    global _PYTHON_TWINS
    previous = _PYTHON_TWINS
    _PYTHON_TWINS = True
    try:
        yield
    finally:
        _PYTHON_TWINS = previous


def _jit(fn):
    """``numba.njit`` when available, identity otherwise.

    ``cache=False`` (kernels are tiny, compile once per process) and
    numba's defaults keep strict IEEE float semantics (``fastmath``
    off), which the bit-identity contract depends on."""
    if _numba is None:
        return fn
    return _numba.njit(cache=False)(fn)


def pick(jitted, python_twin):
    """The callable to execute for a numba code path right now."""
    if HAVE_NUMBA and not _PYTHON_TWINS:
        return jitted
    return python_twin


# ----------------------------------------------------------------------
# Ordered row reduction (shared by the binned leaf and its numba twin)
# ----------------------------------------------------------------------
def ordered_rowsum(matrix):
    """Per-row sum with an explicit halving-fold accumulation order.

    Repeatedly folds the upper half onto the lower half
    (``a[:, j] += a[:, j + ceil(m/2)]``), so the reduction tree is a
    function of the row length alone -- unlike ``sum(axis=1)``, whose
    accumulation order is a SIMD implementation detail.  **Consumes**
    ``matrix`` as scratch; pass a fresh array.
    """
    a = np.ascontiguousarray(matrix, dtype=float)
    if a.ndim != 2:
        raise ValueError("ordered_rowsum expects a 2-D matrix")
    m = a.shape[1]
    if m == 0:
        return np.zeros(a.shape[0], dtype=float)
    while m > 1:
        h = (m + 1) // 2
        np.add(a[:, : m - h], a[:, h:m], out=a[:, : m - h])
        m = h
    return a[:, 0].copy()


def rowsum_fold_py(a):
    """Scalar twin of :func:`ordered_rowsum` (consumes ``a`` too)."""
    n_rows, m = a.shape
    out = np.zeros(n_rows, dtype=np.float64)
    if m == 0:
        return out
    for r in range(n_rows):
        mm = m
        while mm > 1:
            h = (mm + 1) // 2
            for j in range(mm - h):
                a[r, j] = a[r, j] + a[r, j + h]
            mm = h
        out[r] = a[r, 0]
    return out


rowsum_fold = _jit(rowsum_fold_py)


# ----------------------------------------------------------------------
# Fused sweep tape interpreter (numba lowering of the level sweep)
# ----------------------------------------------------------------------
def sweep_tape_py(
    arena, op_is_sum, op_dst, op_pos_off, pos_count, pos_child_off,
    child_slots, weights,
):
    """Execute a fused sweep plan's flattened instruction tape.

    Mirrors the NumPy fused executor exactly: per op, position 0
    initialises the destination block (``dst = w * child`` for sums,
    ``dst = child`` for products); later positions accumulate
    ``dst += w * child`` / ``dst *= child``.  The weight multiply
    rounds before the accumulate, matching the two separate NumPy
    ufunc calls -- and numba does not contract them into an FMA.
    """
    n_cols = arena.shape[1]
    for o in range(op_is_sum.shape[0]):
        dst0 = op_dst[o]
        p_lo, p_hi = op_pos_off[o], op_pos_off[o + 1]
        for p in range(p_lo, p_hi):
            k = pos_count[p]
            c0 = pos_child_off[p]
            first = p == p_lo
            if op_is_sum[o] == 1:
                for s in range(k):
                    src = child_slots[c0 + s]
                    w = weights[c0 + s]
                    d = dst0 + s
                    if first:
                        for j in range(n_cols):
                            arena[d, j] = w * arena[src, j]
                    else:
                        for j in range(n_cols):
                            arena[d, j] = arena[d, j] + w * arena[src, j]
            else:
                for s in range(k):
                    src = child_slots[c0 + s]
                    d = dst0 + s
                    if first:
                        for j in range(n_cols):
                            arena[d, j] = arena[src, j]
                    else:
                        for j in range(n_cols):
                            arena[d, j] = arena[d, j] * arena[src, j]


sweep_tape = _jit(sweep_tape_py)


# ----------------------------------------------------------------------
# Discrete leaf kernel (numba lowering of searchsorted + prefix masses)
# ----------------------------------------------------------------------
def discrete_masses_py(values, cum, lows, highs, low_inc, high_inc, k_idx, out):
    """Accumulate per-query interval masses from a weighted prefix sum.

    Twin of the NumPy path's four ``searchsorted`` calls plus
    ``np.add.at(out, k_idx, cum[right] - cum[left])``: binary searches
    are index-exact, the subtraction rounds once, and ``np.add.at`` is
    sequential per occurrence -- so the scalar loop reproduces it
    bit-for-bit.
    """
    n = values.shape[0]
    for i in range(k_idx.shape[0]):
        lo = lows[i]
        hi = highs[i]
        # searchsorted(values, lo, side='left'/'right')
        a, b = 0, n
        while a < b:
            mid = (a + b) // 2
            if values[mid] < lo or (not low_inc[i] and values[mid] == lo):
                a = mid + 1
            else:
                b = mid
        left = a
        a, b = 0, n
        while a < b:
            mid = (a + b) // 2
            if values[mid] < hi or (high_inc[i] and values[mid] == hi):
                a = mid + 1
            else:
                b = mid
        right = a
        if right < left:
            right = left
        k = k_idx[i]
        out[k] = out[k] + (cum[right] - cum[left])


discrete_masses = _jit(discrete_masses_py)


# ----------------------------------------------------------------------
# Binned leaf kernel (numba lowering of the coverage matrix build)
# ----------------------------------------------------------------------
def binned_coverage_py(
    lows, highs, low_inc, high_inc, k_idx,
    low_edges, high_edges, last_edge, distinct, coverage,
):
    """Accumulate per-(query, bin) coverage fractions, then cap at 1.

    Twin of ``BinnedLeaf._coverage_batch``: identical per-element
    formulas (clip = min/max composition, guarded division, degenerate
    zero-width bins, the point-interval ``1/distinct`` share) applied
    in the same order, with the per-query interval accumulation
    sequential in ``k_idx`` order like ``np.add.at``.
    """
    n_bins = low_edges.shape[0]
    for i in range(k_idx.shape[0]):
        k = k_idx[i]
        lo = lows[i]
        hi = highs[i]
        point = lo == hi and low_inc[i] and high_inc[i]
        for b in range(n_bins):
            le = low_edges[b]
            he = high_edges[b]
            if point:
                inside = lo >= le and (
                    lo < he or (lo <= he and he == last_edge)
                )
                span = 1.0 / distinct[b] if inside else 0.0
            else:
                width = he - le
                if width > 0:
                    left = min(max(lo, le), he)
                    right = min(max(hi, le), he)
                    fraction = (right - left) / width
                    span = min(max(fraction, 0.0), 1.0)
                else:
                    span = 1.0 if (lo <= le and he <= hi) else 0.0
            coverage[k, b] = coverage[k, b] + span
    n_queries = coverage.shape[0]
    for k in range(n_queries):
        for b in range(n_bins):
            if coverage[k, b] > 1.0:
                coverage[k, b] = 1.0


binned_coverage = _jit(binned_coverage_py)


def weighted_fold_py(coverage, rows, weights, out_vals):
    """Per-row ``fold(coverage[row] * weights)`` for a group of rows.

    Twin of ``ordered_rowsum(coverage[group] * weights)``: the weight
    multiply rounds per element first, then the halving fold reduces
    with the pinned order.
    """
    m = weights.shape[0]
    tmp = np.empty(m, dtype=np.float64)
    for r in range(rows.shape[0]):
        row = rows[r]
        for j in range(m):
            tmp[j] = coverage[row, j] * weights[j]
        mm = m
        while mm > 1:
            h = (mm + 1) // 2
            for j in range(mm - h):
                tmp[j] = tmp[j] + tmp[j + h]
            mm = h
        out_vals[r] = tmp[0] if m > 0 else 0.0


weighted_fold = _jit(weighted_fold_py)


def describe() -> dict:
    """Kernel configuration for ``/stats`` and the CLI banner."""
    return {
        "requested": get_kernel(),
        "active": resolve(),
        "numba_available": HAVE_NUMBA,
    }
