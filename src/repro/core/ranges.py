"""Predicate ranges: the conditions RSPN leaves evaluate.

A :class:`Range` is a union of disjoint intervals over the encoded value
domain of one attribute plus a flag whether NULL belongs to the range.
Every predicate of the paper's query class (= <> < <= > >= IN BETWEEN
IS [NOT] NULL) maps to a Range, and conjunctions of predicates on the
same attribute map to Range intersection.  SQL three-valued logic is
encoded directly: comparison predicates never include NULL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_EPS = 1e-9


@dataclass(frozen=True)
class Interval:
    """One interval with explicit bound inclusivity."""

    low: float
    high: float
    low_inclusive: bool = True
    high_inclusive: bool = True

    def is_empty(self):
        if self.low > self.high:
            return True
        if self.low == self.high:
            return not (self.low_inclusive and self.high_inclusive)
        return False

    def is_point(self):
        return self.low == self.high and self.low_inclusive and self.high_inclusive

    def contains(self, value):
        if value < self.low or value > self.high:
            return False
        if value == self.low and not self.low_inclusive:
            return False
        if value == self.high and not self.high_inclusive:
            return False
        return True

    def intersect(self, other):
        if self.low > other.low or (self.low == other.low and not self.low_inclusive):
            low, low_inc = self.low, self.low_inclusive
        else:
            low, low_inc = other.low, other.low_inclusive
        if self.high < other.high or (self.high == other.high and not self.high_inclusive):
            high, high_inc = self.high, self.high_inclusive
        else:
            high, high_inc = other.high, other.high_inclusive
        candidate = Interval(low, high, low_inc, high_inc)
        return None if candidate.is_empty() else candidate


FULL_INTERVAL = Interval(-math.inf, math.inf)


@dataclass(frozen=True)
class Range:
    """Union of disjoint intervals plus NULL membership."""

    intervals: tuple
    include_null: bool = False

    # -- constructors ---------------------------------------------------
    @classmethod
    def everything(cls, include_null=True):
        return cls((FULL_INTERVAL,), include_null=include_null)

    @classmethod
    def nothing(cls):
        return cls((), include_null=False)

    @classmethod
    def null_only(cls):
        return cls((), include_null=True)

    @classmethod
    def point(cls, value):
        return cls((Interval(value, value),), include_null=False)

    @classmethod
    def points(cls, values):
        intervals = tuple(Interval(v, v) for v in sorted(set(values)))
        return cls(intervals, include_null=False)

    @classmethod
    def from_operator(cls, op, value):
        """Range of one predicate over an encoded constant.

        ``value`` must already be encoded; ``None`` means the constant is
        outside the vocabulary (selects nothing for ``=``/``IN``,
        everything non-NULL for ``<>``).
        """
        if op == "IS NULL":
            return cls.null_only()
        if op == "IS NOT NULL":
            return cls((FULL_INTERVAL,), include_null=False)
        if op == "IN":
            encoded = [v for v in value if v is not None]
            return cls.points(encoded) if encoded else cls.nothing()
        if op == "BETWEEN":
            low, high = value
            if low is None or high is None:
                return cls.nothing()
            interval = Interval(float(low), float(high))
            if interval.is_empty():  # inverted bounds select nothing
                return cls.nothing()
            return cls((interval,),)
        if value is None:
            if op == "<>":
                return cls((FULL_INTERVAL,), include_null=False)
            return cls.nothing()
        value = float(value)
        if op == "=":
            return cls.point(value)
        if op == "<>":
            return cls(
                (
                    Interval(-math.inf, value, True, False),
                    Interval(value, math.inf, False, True),
                )
            )
        if op == "<":
            return cls((Interval(-math.inf, value, True, False),))
        if op == "<=":
            return cls((Interval(-math.inf, value),))
        if op == ">":
            return cls((Interval(value, math.inf, False, True),))
        if op == ">=":
            return cls((Interval(value, math.inf),))
        raise ValueError(f"unsupported operator {op!r}")

    # -- algebra ---------------------------------------------------------
    def is_empty(self):
        return not self.intervals and not self.include_null

    def is_unconstrained(self):
        return (
            self.include_null
            and len(self.intervals) == 1
            and self.intervals[0] == FULL_INTERVAL
        )

    def intersect(self, other):
        intervals = []
        for a in self.intervals:
            for b in other.intervals:
                merged = a.intersect(b)
                if merged is not None:
                    intervals.append(merged)
        intervals.sort(key=lambda i: (i.low, i.high))
        return Range(tuple(intervals), include_null=self.include_null and other.include_null)

    def contains(self, value):
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return self.include_null
        return any(interval.contains(value) for interval in self.intervals)

    def point_values(self):
        """Encoded values when the range is a finite set of points, else None."""
        if not all(interval.is_point() for interval in self.intervals):
            return None
        return [interval.low for interval in self.intervals]

    # -- columnar round-trip (shared-memory spec transport) ---------------
    def columnar(self):
        """Lower the intervals to parallel ``(lows, highs, flags)`` lists.

        The exact inverse of :meth:`from_columnar`: ``flags`` packs the
        two inclusivity booleans into one small int (bit 0 = low
        inclusive, bit 1 = high inclusive).  Bounds are plain floats
        (``±inf`` included), so a round trip through a float64 array --
        which is how :mod:`repro.core.specpack` ships ranges across
        process boundaries -- reproduces this range bit-for-bit.
        """
        lows, highs, flags = [], [], []
        for interval in self.intervals:
            lows.append(interval.low)
            highs.append(interval.high)
            flags.append(
                int(interval.low_inclusive) | (int(interval.high_inclusive) << 1)
            )
        return lows, highs, flags

    @classmethod
    def from_columnar(cls, lows, highs, flags, include_null):
        """Rebuild a Range from :meth:`columnar` output (array slices ok)."""
        intervals = tuple(
            Interval(float(low), float(high), bool(flag & 1), bool(flag & 2))
            for low, high, flag in zip(lows, highs, flags)
        )
        return cls(intervals, include_null=bool(include_null))

    def describe(self):
        parts = []
        for interval in self.intervals:
            left = "[" if interval.low_inclusive else "("
            right = "]" if interval.high_inclusive else ")"
            parts.append(f"{left}{interval.low}, {interval.high}{right}")
        if self.include_null:
            parts.append("NULL")
        return " u ".join(parts) if parts else "{}"


def range_from_predicates(op_value_pairs):
    """Intersection of the ranges of several predicates on one attribute."""
    result = Range.everything(include_null=True)
    for op, encoded in op_value_pairs:
        result = result.intersect(Range.from_operator(op, encoded))
    return result
