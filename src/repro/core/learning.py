"""SPN structure learning: RDC column splits + KMeans row clustering.

The learner follows the MSPN algorithm the paper builds on (Molina et
al., AAAI 2018): recursively,

1. try to partition the current columns into groups that are pairwise
   independent (all cross-group RDC values below ``rdc_threshold``) --
   on success emit a product node;
2. otherwise cluster the rows with KMeans (k=2) and emit a sum node;
3. stop when a single column remains (leaf) or fewer than
   ``min_instances_slice`` rows remain (naive fully-factorised product
   of leaves).

The paper's hyperparameters: RDC threshold 0.3 and a minimum instance
slice of 1% of the input data.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.leaves import build_leaf
from repro.core.nodes import ProductNode, SumNode
from repro.stats.kmeans import KMeans
from repro.stats.rdc import rdc_matrix


@dataclass
class LearningConfig:
    """Hyperparameters of RSPN learning (paper defaults)."""

    rdc_threshold: float = 0.3
    min_instances_fraction: float = 0.01
    min_instances_absolute: int = 64
    n_clusters: int = 2
    max_distinct_leaf: int = 512
    n_bins: int = 128
    rdc_sample: int = 5_000
    max_depth: int = 40
    seed: int = 0

    def min_instances(self, n_rows):
        return max(self.min_instances_absolute, int(self.min_instances_fraction * n_rows))


class _Learner:
    def __init__(self, data, discrete_flags, config):
        self.data = data
        self.discrete = discrete_flags
        self.config = config
        self.min_instances = config.min_instances(data.shape[0])
        self._seed = config.seed

    def _next_seed(self):
        self._seed += 1
        return self._seed

    def leaf(self, rows, scope_index):
        return build_leaf(
            scope_index,
            attribute=scope_index,
            column=self.data[rows, scope_index],
            discrete=self.discrete[scope_index],
            max_distinct=self.config.max_distinct_leaf,
            n_bins=self.config.n_bins,
        )

    def naive_factorisation(self, rows, scope):
        leaves = [self.leaf(rows, s) for s in scope]
        if len(leaves) == 1:
            return leaves[0]
        return ProductNode(scope, leaves)

    def column_split(self, rows, scope):
        """Independent column groups via the RDC dependency graph."""
        sample_rows = rows
        if rows.shape[0] > self.config.rdc_sample:
            rng = np.random.default_rng(self._next_seed())
            sample_rows = rng.choice(rows, size=self.config.rdc_sample, replace=False)
        matrix = rdc_matrix(
            self.data[np.ix_(sample_rows, np.asarray(scope))],
            seed=self._next_seed(),
            n_samples=None,
            discrete_flags=[self.discrete[s] for s in scope],
        )
        graph = nx.Graph()
        graph.add_nodes_from(range(len(scope)))
        threshold = self.config.rdc_threshold
        for i in range(len(scope)):
            for j in range(i + 1, len(scope)):
                if matrix[i, j] >= threshold:
                    graph.add_edge(i, j)
        components = [sorted(c) for c in nx.connected_components(graph)]
        if len(components) <= 1:
            return None
        return [tuple(scope[i] for i in component) for component in components]

    def row_split(self, rows, scope):
        """KMeans clustering of the rows; None when it degenerates."""
        kmeans = KMeans(
            n_clusters=self.config.n_clusters, seed=self._next_seed()
        )
        labels = kmeans.fit_predict(self.data[np.ix_(rows, np.asarray(scope))])
        clusters = [rows[labels == c] for c in range(self.config.n_clusters)]
        clusters = [c for c in clusters if c.shape[0] > 0]
        if len(clusters) < 2:
            return None
        return kmeans, clusters

    def build(self, rows, scope, depth=0):
        if len(scope) == 1:
            return self.leaf(rows, scope[0])
        if rows.shape[0] < self.min_instances or depth >= self.config.max_depth:
            return self.naive_factorisation(rows, scope)
        components = self.column_split(rows, scope)
        if components is not None:
            children = [
                self.build(rows, component, depth + 1) for component in components
            ]
            return ProductNode(scope, children)
        split = self.row_split(rows, scope)
        if split is None:
            # Neither independent column groups nor a row clustering:
            # fall back to the naive fully-factorised approximation.
            return self.naive_factorisation(rows, scope)
        kmeans, clusters = split
        children = [self.build(cluster, scope, depth + 1) for cluster in clusters]
        counts = [float(cluster.shape[0]) for cluster in clusters]
        return SumNode(scope, children, counts, kmeans=kmeans)


def learn_structure(data, discrete_flags, config=None):
    """Learn an SPN over ``data`` (rows x attributes, NaN = NULL).

    ``discrete_flags[i]`` marks attribute ``i`` as categorical.  Returns
    the root node; attribute indices are the column indices of ``data``.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] == 0 or data.shape[1] == 0:
        raise ValueError("learning requires a non-empty 2-D data matrix")
    if len(discrete_flags) != data.shape[1]:
        raise ValueError("one discrete flag per column required")
    config = config or LearningConfig()
    learner = _Learner(data, list(discrete_flags), config)
    rows = np.arange(data.shape[0])
    scope = tuple(range(data.shape[1]))
    return learner.build(rows, scope)
