"""Textual rendering of learned RSPN trees (Figure 3c as text).

Model interpretability is part of the data-exploration story: sum nodes
*are* the "correlated clusters" the paper's conclusion points at, and
reading the tree shows which attribute groups the learner considered
independent where.  ``render_tree`` draws the structure with box glyphs;
leaves summarise their histogram (and can decode categorical modes when
given the database).
"""

from __future__ import annotations

import numpy as np

from repro.core.leaves import BinnedLeaf, DiscreteLeaf
from repro.core.nodes import ProductNode, SumNode


def _leaf_summary(rspn, leaf, database):
    name = rspn.column_names[leaf.scope_index]
    total = leaf.total
    null_share = leaf.null_count / total if total else 0.0
    if isinstance(leaf, DiscreteLeaf):
        description = f"exact, {leaf.values.shape[0]} values"
        if leaf.counts.size:
            mode_code = float(leaf.values[int(np.argmax(leaf.counts))])
            mode = _decode(database, name, mode_code)
            share = float(leaf.counts.max() / total) if total else 0.0
            description += f", mode {mode} ({share:.0%})"
    elif isinstance(leaf, BinnedLeaf):
        description = (
            f"binned, {leaf.counts.shape[0]} bins over "
            f"[{leaf.edges[0]:g}, {leaf.edges[-1]:g}], mean {leaf.mean():g}"
        )
    else:  # pragma: no cover - no other leaf kinds exist
        description = type(leaf).__name__
    if null_share > 0:
        description += f", {null_share:.0%} NULL"
    return f"{name}: {description}"


def _decode(database, qualified, code):
    if database is None:
        return f"{code:g}"
    table_name, column = qualified.split(".", 1)
    table = database.tables.get(table_name)
    if table is None or not table.is_categorical(column):
        return f"{code:g}"
    return repr(str(table.decode_value(column, code)))


def _node_label(rspn, node, database):
    if isinstance(node, SumNode):
        weights = ", ".join(f"{w:.2f}" for w in node.weights)
        return f"+ sum of {len(node.children)} clusters (weights {weights})"
    if isinstance(node, ProductNode):
        groups = " | ".join(
            ",".join(rspn.column_names[i] for i in child.scope)
            for child in node.children
        )
        return f"x independent groups: {groups}"
    return _leaf_summary(rspn, node, database)


def render_tree(rspn, database=None, max_depth=None):
    """ASCII tree of an RSPN's structure.

    ``database`` enables decoding of categorical leaf modes;
    ``max_depth`` truncates deep trees (truncation is marked).
    """
    header = (
        f"RSPN({'/'.join(sorted(rspn.tables))}) "
        f"rows={rspn.full_size:,.0f} cols={len(rspn.column_names)}"
    )
    lines = [header]

    def walk(node, prefix, is_last, depth):
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + _node_label(rspn, node, database))
        if not isinstance(node, (SumNode, ProductNode)):
            return
        extension = "   " if is_last else "│  "
        if max_depth is not None and depth >= max_depth:
            lines.append(prefix + extension + f"└─ ... ({len(node.children)} children)")
            return
        for i, child in enumerate(node.children):
            walk(child, prefix + extension, i == len(node.children) - 1, depth + 1)

    walk(rspn.root, "", True, 1)
    return "\n".join(lines)


def ensemble_summary(ensemble, database=None, max_depth=2):
    """Concatenated tree renderings for every RSPN of an ensemble."""
    return "\n\n".join(
        render_tree(rspn, database=database, max_depth=max_depth)
        for rspn in ensemble.rspns
    )
