"""Memory-mapped model store: the specpack blob layout as persistence.

The JSON format in :mod:`repro.core.serialization` rebuilds a Python
node tree element by element -- cold start is O(model).  This module
makes the wire format PR 5/6 already invented the *on-disk* format: a
store file is a small JSON header followed by, per RSPN, one specpack
blob of flat tree arrays (:func:`repro.core.compiled.export_tree_arrays`)
*plus the compiled sweep plan's tape*
(:func:`repro.core.compiled.plan_store_payload`) and a separate routing
section.  Loading mmaps the file, restores the compiled form straight
from the persisted tape (O(plan ops), not O(nodes)), and answers
queries with leaf histograms built per touched scope as read-only
``np.frombuffer`` views into the mapping -- no pickle, no JSON parse of
histograms, no node-tree rebuild, no recompile, no histogram copy.  The
Python node tree only materialises
(:func:`~repro.core.compiled.import_tree_arrays`) when an update, the
``legacy`` reference kernel or the sharded transport genuinely needs
nodes.  Cold start is O(metadata) and resident memory is demand-paged
by the OS, which is what lets one server host thousands of tenant
models (see :class:`repro.serving.registry.ModelRegistry`'s LRU pager).

File layout (all integers little-endian)::

    offset 0   magic            b"RSPNSTR\\x01"           8 bytes
    offset 8   header_len       u64                       8 bytes
    offset 16  header_crc32     u32                       4 bytes
    offset 20  header JSON      header_len bytes
    aligned    blob[0], routing[0], blob[1], routing[1], ...
               (16-byte aligned, blobs in the specpack codec, routing
               as checksummed JSON of update-only KMeans state), then
               optionally one checksummed JSON corrector section (the
               trained residual corrector of repro.feedback; the
               ``corrector`` header key is absent when not written)

The header carries the ensemble/schema metadata and, per RSPN, each
section's offset/size/CRC32 and the ``plan_signature``.  Blob checksums
are validated lazily on first page-in (routing checksums on first
materialisation); any truncation or bit flip raises
:class:`ModelStoreError` -- never a numpy shape error, never a silently
wrong answer.

Lifecycle: a mapping cannot be closed while numpy views into it are
alive (``BufferError``), so the store counts loaded ensembles as pins
(via ``weakref.finalize``) and defers the actual unmap until the last
pin dies.  CPython runs an object's finalizers *before* clearing its
``__dict__``, so at finalizer time the tree views still exist; deferred
closes therefore park on a module-level pending list swept by
:func:`sweep_pending` (called from :func:`open_store`, registry paging
operations, and atexit).  For a deterministic unmap use
``DeepDB.close()``, which drops the tree references first.
"""

from __future__ import annotations

import atexit
import json
import logging
import mmap
import os
import struct
import threading
import weakref
import zlib

import numpy as np

from repro.core import compiled, specpack
from repro.core.ensemble import SPNEnsemble
from repro.core.rspn import RSPN
from repro.core.serialization import (
    apply_ensemble_metadata,
    attach_routing_state,
    ensemble_metadata_to_dict,
    routing_state_to_document,
    rspn_kwargs_from_metadata,
    rspn_metadata_to_dict,
)

logger = logging.getLogger(__name__)

MAGIC = b"RSPNSTR\x01"
FORMAT_NAME = "repro-modelstore"
FORMAT_VERSION = 1
STORE_SUFFIX = ".rspn"

_HEADER_PREFIX = len(MAGIC) + 8 + 4  # magic + u64 header_len + u32 crc32


class ModelStoreError(RuntimeError):
    """Raised when a store file is missing, corrupt, or inconsistent."""


# ----------------------------------------------------------------------
# Deferred unmapping
# ----------------------------------------------------------------------

_PENDING_LOCK = threading.Lock()
_PENDING_CLOSE: list[mmap.mmap] = []


def _defer_close(mapping):
    with _PENDING_LOCK:
        _PENDING_CLOSE.append(mapping)


def sweep_pending():
    """Retry deferred unmaps; returns how many mappings remain parked.

    A mapping lands on the pending list when its last pin died while
    numpy views into it were still reachable (finalizer ordering).  Once
    the garbage collector has reclaimed the views, the retry succeeds.
    """
    with _PENDING_LOCK:
        parked, _PENDING_CLOSE[:] = _PENDING_CLOSE[:], []
        still = []
        for mapping in parked:
            try:
                mapping.close()
            except BufferError:
                still.append(mapping)
        _PENDING_CLOSE.extend(still)
        return len(still)


atexit.register(sweep_pending)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def write_store(ensemble, path, name=None, corrector=None):
    """Persist ``ensemble`` to a store file at ``path`` (atomic replace).

    Each RSPN's tree is lowered through
    :func:`~repro.core.compiled.export_tree_arrays` (which compiles it,
    so the ``plan_signature`` lands in the header), the compiled sweep
    plan's tape rides in the same specpack blob
    (:func:`~repro.core.compiled.plan_store_payload`), and the KMeans
    routing state is framed as its own checksummed section so loading
    never decodes update-only state.  Returns the number of bytes
    written.

    ``corrector`` (a JSON-serializable document from
    :meth:`repro.feedback.ResidualCorrector.to_document`) is framed as
    its own checksummed section referenced by a ``corrector`` header
    key.  The key is simply absent when there is no corrector, and
    readers ignore unknown header keys, so stores with and without the
    section interoperate in both directions at the same format version.
    """
    sections = []  # (offset, bytes) in file order, offsets 16-aligned
    entries = []
    offset = 0

    def _section(payload):
        nonlocal offset
        offset = specpack._align(offset)
        start = offset
        sections.append((start, payload))
        offset += len(payload)
        return {
            "offset": start,
            "nbytes": len(payload),
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        }

    for rspn in ensemble.rspns:
        meta, arrays = compiled.export_tree_arrays(rspn.root)
        scalars, tape_arrays = compiled.plan_store_payload(
            compiled.compiled_for(rspn.root)
        )
        # Store the leaf table columnar (int64 arrays + one flat
        # attribute-name list) instead of the exporter's list of dicts:
        # a cold start must not JSON-decode or iterate O(leaves) Python
        # objects.
        leaf_arrays, leaf_attributes = compiled.leaf_table_arrays(
            meta.pop("leaves")
        )
        meta = dict(meta, plan=scalars, leaf_attributes=leaf_attributes)
        arrays = dict(arrays, **tape_arrays, **leaf_arrays)
        blob = bytes(specpack.blob_bytes(meta, arrays))
        routing = json.dumps(
            routing_state_to_document(rspn), separators=(",", ":")
        ).encode("utf-8")
        entries.append(
            {
                "metadata": rspn_metadata_to_dict(rspn),
                "plan_signature": meta["plan_signature"],
                "blob": _section(blob),
                "routing": _section(routing),
            }
        )
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": name,
        "ensemble": ensemble_metadata_to_dict(ensemble),
        "rspns": entries,
    }
    if corrector is not None:
        payload = json.dumps(corrector, separators=(",", ":")).encode("utf-8")
        document["corrector"] = _section(payload)
    header = json.dumps(document, separators=(",", ":")).encode("utf-8")
    payload_base = specpack._align(_HEADER_PREFIX + len(header))
    total = payload_base + offset
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack("<Q", len(header)))
            handle.write(struct.pack("<I", zlib.crc32(header) & 0xFFFFFFFF))
            handle.write(header)
            handle.write(b"\x00" * (payload_base - _HEADER_PREFIX - len(header)))
            for section_offset, payload in sections:
                handle.seek(payload_base + section_offset)
                handle.write(payload)
            handle.truncate(total)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return total


# ----------------------------------------------------------------------
# Header inspection (no mmap)
# ----------------------------------------------------------------------


def is_store_file(path):
    """``True`` when ``path`` starts with the store magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _read_header(handle, path):
    prefix = handle.read(_HEADER_PREFIX)
    if len(prefix) < _HEADER_PREFIX or not prefix.startswith(MAGIC):
        raise ModelStoreError(f"{path}: not a model store file (bad magic)")
    (header_len,) = struct.unpack_from("<Q", prefix, len(MAGIC))
    (header_crc,) = struct.unpack_from("<I", prefix, len(MAGIC) + 8)
    file_size = os.fstat(handle.fileno()).st_size
    if _HEADER_PREFIX + header_len > file_size:
        raise ModelStoreError(
            f"{path}: header length {header_len} exceeds the file size "
            f"{file_size}; file is truncated or corrupt"
        )
    header = handle.read(header_len)
    if len(header) != header_len:
        raise ModelStoreError(
            f"{path}: truncated header (wanted {header_len} bytes, "
            f"got {len(header)})"
        )
    if zlib.crc32(header) & 0xFFFFFFFF != header_crc:
        raise ModelStoreError(f"{path}: header checksum mismatch")
    try:
        document = json.loads(header.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ModelStoreError(f"{path}: header is not valid JSON: {error}") from None
    if document.get("format") != FORMAT_NAME:
        raise ModelStoreError(
            f"{path}: format={document.get('format')!r} is not {FORMAT_NAME!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ModelStoreError(
            f"{path}: store version {document.get('version')!r} is unsupported "
            f"(reader expects {FORMAT_VERSION})"
        )
    return document, specpack._align(_HEADER_PREFIX + header_len)


def read_catalog(path):
    """The store's catalog from the header alone -- no mmap, no arrays.

    Cheap enough to run over a whole fleet directory (``repro models``).
    """
    try:
        with open(path, "rb") as handle:
            document, payload_base = _read_header(handle, path)
            file_size = os.fstat(handle.fileno()).st_size
    except OSError as error:
        raise ModelStoreError(f"{path}: {error}") from None
    rspns = []
    for entry in document["rspns"]:
        metadata = entry["metadata"]
        rspns.append(
            {
                "tables": list(metadata["tables"]),
                "plan_signature": entry["plan_signature"],
                "blob_bytes": int(entry["blob"]["nbytes"]),
                "full_size": metadata["full_size"],
            }
        )
    return {
        "path": os.fspath(path),
        "name": document.get("name"),
        "format": document["format"],
        "version": document["version"],
        "file_bytes": file_size,
        "blob_bytes": sum(r["blob_bytes"] for r in rspns),
        "payload_base": payload_base,
        "corrector": bool(document.get("corrector")),
        "rspns": rspns,
    }


# ----------------------------------------------------------------------
# The mapped store
# ----------------------------------------------------------------------


def open_store(path):
    """Open and mmap a store file, validating magic, bounds and header CRC.

    Blob payloads are *not* touched here -- their checksums are
    validated lazily, on first page-in, so opening a fleet of stores is
    O(header) per store.
    """
    sweep_pending()
    return ModelStore(path)


class ModelStore:
    """One mmapped store file; build ensembles with :meth:`load_ensemble`."""

    def __init__(self, path):
        self.path = os.fspath(path)
        try:
            with open(self.path, "rb") as handle:
                self._document, self._payload_base = _read_header(handle, self.path)
                self.file_bytes = os.fstat(handle.fileno()).st_size
                if self.file_bytes < self._payload_base:
                    raise ModelStoreError(
                        f"{self.path}: file ends inside the header padding"
                    )
                self._mm = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except OSError as error:
            raise ModelStoreError(f"{self.path}: {error}") from None
        self.name = self._document.get("name")
        self.blob_bytes = sum(
            int(e["blob"]["nbytes"]) for e in self._document["rspns"]
        )
        self._lock = threading.Lock()
        self._verified = set()
        self._pins = 0
        self._want_close = False
        self._closed = False

    # -- catalog -------------------------------------------------------
    def catalog(self):
        """Same shape as :func:`read_catalog`, from the open header."""
        rspns = []
        for entry in self._document["rspns"]:
            metadata = entry["metadata"]
            rspns.append(
                {
                    "tables": list(metadata["tables"]),
                    "plan_signature": entry["plan_signature"],
                    "blob_bytes": int(entry["blob"]["nbytes"]),
                    "full_size": metadata["full_size"],
                }
            )
        return {
            "path": self.path,
            "name": self.name,
            "format": self._document["format"],
            "version": self._document["version"],
            "file_bytes": self.file_bytes,
            "blob_bytes": self.blob_bytes,
            "payload_base": self._payload_base,
            "corrector": bool(self._document.get("corrector")),
            "rspns": rspns,
        }

    # -- blob access ---------------------------------------------------
    def _blob_view(self, index, entry):
        blob = entry["blob"]
        start = self._payload_base + int(blob["offset"])
        end = start + int(blob["nbytes"])
        if end > self.file_bytes:
            raise ModelStoreError(
                f"{self.path}: blob {index} extends to byte {end} but the "
                f"file holds only {self.file_bytes}; file is truncated"
            )
        view = memoryview(self._mm)[start:end]
        if index not in self._verified:
            if zlib.crc32(view) & 0xFFFFFFFF != int(blob["crc32"]):
                raise ModelStoreError(
                    f"{self.path}: blob {index} checksum mismatch -- the "
                    "file is corrupt (bit flip or partial write)"
                )
            self._verified.add(index)
        return view

    def verify(self):
        """Validate every blob and routing checksum; returns the blob count."""
        with self._lock:
            self._ensure_open()
            for index, entry in enumerate(self._document["rspns"]):
                self._blob_view(index, entry)
                section = entry.get("routing")
                if not section:
                    continue
                start = self._payload_base + int(section["offset"])
                end = start + int(section["nbytes"])
                if end > self.file_bytes:
                    raise ModelStoreError(
                        f"{self.path}: routing section {index} extends to "
                        f"byte {end} but the file holds only "
                        f"{self.file_bytes}; file is truncated"
                    )
                payload = self._mm[start:end]
                if zlib.crc32(payload) & 0xFFFFFFFF != int(section["crc32"]):
                    raise ModelStoreError(
                        f"{self.path}: routing section {index} checksum "
                        "mismatch -- the file is corrupt (bit flip or "
                        "partial write)"
                    )
            self._corrector_payload_locked()
            return len(self._document["rspns"])

    # -- corrector section ----------------------------------------------
    def _corrector_payload_locked(self):
        """The raw corrector-section bytes, CRC-checked; None if absent.

        Caller holds ``self._lock`` with the mapping open.
        """
        section = self._document.get("corrector")
        if not section:
            return None
        start = self._payload_base + int(section["offset"])
        end = start + int(section["nbytes"])
        if end > self.file_bytes:
            raise ModelStoreError(
                f"{self.path}: corrector section extends to byte {end} but "
                f"the file holds only {self.file_bytes}; file is truncated"
            )
        payload = self._mm[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != int(section["crc32"]):
            raise ModelStoreError(
                f"{self.path}: corrector section checksum mismatch -- the "
                "file is corrupt (bit flip or partial write)"
            )
        return payload

    def corrector_document(self):
        """The persisted residual-corrector document, or ``None``.

        Stores written before the feedback subsystem (or without a
        trained corrector) simply lack the header key: they return
        ``None`` here and load with no warning -- the section is purely
        additive.
        """
        with self._lock:
            if self._mm is None:
                raise ModelStoreError(f"{self.path}: store is closed")
            payload = self._corrector_payload_locked()
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ModelStoreError(
                f"{self.path}: corrector section is not valid JSON: {error}"
            ) from None

    # -- routing sections ----------------------------------------------
    def _routing_document(self, index):
        """Decode blob ``index``'s KMeans routing section.

        Update-only state: read lazily when a mapped tree materialises,
        never on the query path.  The loaded ensemble's pin keeps the
        mapping alive even after :meth:`close` was requested, so a late
        materialisation (an insert long after load) still resolves.
        """
        entry = self._document["rspns"][index]
        section = entry.get("routing")
        if not section:
            return {"routing": []}
        with self._lock:
            if self._mm is None:
                raise ModelStoreError(f"{self.path}: store is closed")
            start = self._payload_base + int(section["offset"])
            end = start + int(section["nbytes"])
            if end > self.file_bytes:
                raise ModelStoreError(
                    f"{self.path}: routing section {index} extends to byte "
                    f"{end} but the file holds only {self.file_bytes}; "
                    "file is truncated"
                )
            payload = self._mm[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != int(section["crc32"]):
            raise ModelStoreError(
                f"{self.path}: routing section {index} checksum mismatch -- "
                "the file is corrupt (bit flip or partial write)"
            )
        try:
            return {"routing": json.loads(payload.decode("utf-8"))}
        except (ValueError, UnicodeDecodeError) as error:
            raise ModelStoreError(
                f"{self.path}: routing section {index} is not valid JSON: "
                f"{error}"
            ) from None

    def _validate_plan_payload(self, index, meta, arrays):
        """Reject blobs whose persisted plan cannot drive a sweep.

        The CRC has already proven the bytes are what the writer wrote;
        this guards against malformed *writers* (or future format
        drift), so a bad store fails here with :class:`ModelStoreError`
        instead of as a numpy shape error mid-query.
        """

        def bad(reason):
            return ModelStoreError(
                f"{self.path}: blob {index} plan payload is invalid: {reason}"
            )

        plan = meta.get("plan")
        if not isinstance(plan, dict):
            raise bad("no fused-plan header (not written by this writer?)")
        missing = [k for k in compiled.PLAN_TAPE_KEYS if k not in arrays]
        if missing:
            raise bad(f"missing tape arrays {missing}")
        try:
            arena_rows = int(plan["arena_rows"])
            int(plan["stage_rows"])
            root_slot = int(plan["root_slot"])
            n_leaves = int(plan["n_leaves"])
        except (KeyError, TypeError, ValueError) as error:
            raise bad(f"bad plan scalars: {error}") from None
        op_kind, op_dst, op_pos_off, pos_count, pos_child_off, \
            child_slots, weights = (arrays[k] for k in compiled.PLAN_TAPE_KEYS)
        n_ops = op_kind.shape[0]
        if op_dst.shape[0] != n_ops or op_pos_off.shape[0] != n_ops + 1:
            raise bad("op table lengths disagree")
        if pos_child_off.shape[0] != pos_count.shape[0] + 1:
            raise bad("position table lengths disagree")
        if n_ops and int(op_pos_off[-1]) != pos_count.shape[0]:
            raise bad("op/position offsets disagree")
        if pos_count.shape[0] and int(pos_child_off[-1]) != child_slots.shape[0]:
            raise bad("position/child offsets disagree")
        if weights.shape[0] != child_slots.shape[0]:
            raise bad("weights length disagrees with child slots")
        if not 0 <= root_slot < arena_rows:
            raise bad(f"root slot {root_slot} outside arena of {arena_rows}")
        if child_slots.shape[0] and (
            int(child_slots.min()) < 0
            or int(child_slots.max()) >= arena_rows
        ):
            raise bad("child slot outside the arena")
        kinds = arrays["kinds"]
        leaf_data = arrays["leaf_data"]
        missing = [k for k in compiled.LEAF_TABLE_KEYS if k not in arrays]
        if missing:
            raise bad(f"missing leaf-table arrays {missing}")
        rows, offsets, ns = (arrays[k] for k in compiled.LEAF_TABLE_KEYS)
        attributes = meta.get("leaf_attributes")
        if (rows.shape[0] != n_leaves or offsets.shape[0] != n_leaves
                or ns.shape[0] != n_leaves
                or not isinstance(attributes, list)
                or len(attributes) != n_leaves):
            raise bad(
                f"leaf table of {rows.shape[0]} rows / "
                f"{0 if not isinstance(attributes, list) else len(attributes)}"
                f" attributes for a plan over {n_leaves} leaves"
            )
        if not 0 <= int(meta.get("root_row", -1)) < kinds.shape[0]:
            raise bad("root row outside the node table")
        # Vectorised bounds checks: O(leaves) numpy, no Python loop.
        if n_leaves:
            if int(rows.min()) < 0 or int(rows.max()) >= kinds.shape[0]:
                raise bad("leaf row outside the node table")
            leaf_kinds = kinds[rows]
            discrete = leaf_kinds == compiled._KIND_DISCRETE
            binned = leaf_kinds == compiled._KIND_BINNED
            if not bool((discrete | binned).all()):
                raise bad("leaf entry at a non-leaf row")
            ends = np.where(discrete, offsets + 2 * ns + 1,
                            offsets + 4 * ns + 2)
            if (int(offsets.min()) < 0 or int(ns.min()) < 0
                    or int(ends.max()) > leaf_data.shape[0]):
                raise bad("leaf payload exceeds the data array")

    # -- loading -------------------------------------------------------
    def load_ensemble(self, database):
        """Rebuild the ensemble as lazy evaluation twins over the mapping.

        O(metadata): blobs are checksum-verified and their plan payload
        validated, but no Python node tree is built and no histogram is
        copied -- RSPNs come back as :class:`MappedRSPN`, which answer
        queries straight from the persisted plan tape and build leaf
        objects (read-only views into the mmap) per touched scope on
        demand.  The node tree itself materialises only for paths that
        need it (updates, the legacy kernel, the sharded transport).
        The returned ensemble pins this store open until it is garbage
        collected (or the owning ``DeepDB.close()`` runs).
        """
        with self._lock:
            self._ensure_open()
            ensemble = SPNEnsemble(database)
            for index, entry in enumerate(self._document["rspns"]):
                # The routing section is read lazily (if ever), but a
                # load must still surface truncation immediately.
                section = entry.get("routing")
                if section:
                    end = (self._payload_base + int(section["offset"])
                           + int(section["nbytes"]))
                    if end > self.file_bytes:
                        raise ModelStoreError(
                            f"{self.path}: routing section {index} extends "
                            f"to byte {end} but the file holds only "
                            f"{self.file_bytes}; file is truncated"
                        )
                view = self._blob_view(index, entry)
                try:
                    meta, arrays = specpack.read_blob(view)
                except specpack.SpecPackError as error:
                    raise ModelStoreError(
                        f"{self.path}: blob {index} is unreadable: {error}"
                    ) from None
                if meta.get("plan_signature") != entry["plan_signature"]:
                    raise ModelStoreError(
                        f"{self.path}: blob {index} plan signature "
                        f"{meta.get('plan_signature')!r} does not match the "
                        f"catalog entry {entry['plan_signature']!r}"
                    )
                self._validate_plan_payload(index, meta, arrays)
                rspn = MappedRSPN(
                    store=self,
                    index=index,
                    tree_meta=meta,
                    tree_arrays=arrays,
                    **rspn_kwargs_from_metadata(entry["metadata"]),
                )
                ensemble.rspns.append(rspn)
            apply_ensemble_metadata(ensemble, self._document["ensemble"])
            self._pins += 1
            weakref.finalize(ensemble, self._unpin)
            return ensemble

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self):
        return self._closed

    @property
    def pins(self):
        return self._pins

    def _ensure_open(self):
        if self._closed or self._want_close:
            raise ModelStoreError(f"{self.path}: store is closed")

    def _unpin(self):
        with self._lock:
            self._pins = max(0, self._pins - 1)
            self._maybe_close()

    def close(self):
        """Release the mapping once the last loaded ensemble is gone.

        Safe to call with ensembles still alive: the store refuses new
        loads immediately and the unmap happens when the final pin dies
        (deferred via the pending-close sweep if views outlive the
        finalizer).  Idempotent.
        """
        with self._lock:
            self._want_close = True
            self._maybe_close()

    def _maybe_close(self):
        # Caller holds self._lock.
        if self._closed or not self._want_close or self._pins > 0:
            return
        self._closed = True
        try:
            self._mm.close()
        except BufferError:
            # Views into the mapping are still reachable (finalizers run
            # before the dying ensemble's tree is torn down); park the
            # mapping for sweep_pending().
            _defer_close(self._mm)
        self._mm = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self._closed else f"pins={self._pins}"
        return (
            f"ModelStore({self.path!r}, rspns={len(self._document['rspns'])}, "
            f"blob_bytes={self.blob_bytes}, {state})"
        )


class MappedRSPN(RSPN):
    """An RSPN served straight from a read-only store mapping.

    The compiled sweep only ever reads the fused plan and the touched
    scopes' leaf histograms, so queries are answered from a
    :class:`~repro.core.compiled.MappedCompiledRSPN` restored from the
    persisted plan tape -- the Python node tree is **not built at
    load**.  It materialises lazily (as an
    :func:`~repro.core.compiled.import_tree_arrays` twin whose leaf
    histograms are read-only views into the mapping, with routing state
    re-attached from the store's routing section) the first time a path
    genuinely needs nodes: an update, the ``legacy`` reference kernel,
    the sharded transport, sampling, or direct ``.root`` access.

    The update path mutates leaf histograms in place, which a read-only
    view forbids -- so the first ``insert``/``delete`` additionally
    thaws the tree copy-on-write
    (:func:`repro.core.compiled.thaw_tree`), after which this model
    owns private writable arrays and behaves like any other RSPN.  The
    backing store stays pinned either way; thawing never invalidates
    other tenants of the same store file.
    """

    def __init__(self, store, index, tree_meta, tree_arrays, **kwargs):
        self._store = store
        self._index = index
        self._tree_meta = tree_meta
        self._tree_arrays = tree_arrays
        self._compiled_form = None
        self._materialized = None
        self._thawed = False
        self._lazy_lock = threading.Lock()
        super().__init__(root=None, **kwargs)

    # -- lazy tree -----------------------------------------------------
    @property
    def root(self):
        root = self._materialized
        if root is None:
            root = self._materialize_root()
        return root

    @root.setter
    def root(self, value):
        # Only RSPN.__init__ assigns (None); the real tree arrives via
        # _materialize_root.
        self._materialized = value

    @property
    def materialized(self):
        """Whether the Python node tree has been built yet."""
        return self._materialized is not None

    def _materialize_root(self):
        with self._lazy_lock:
            root = self._materialized
            if root is None:
                # The store persists the leaf table columnar; the tree
                # importer wants the exporter's list-of-dicts shape.
                # O(leaves) Python, paid only here -- never on the
                # cold-start path.
                meta = dict(self._tree_meta)
                meta["leaves"] = compiled.leaf_entries_from_arrays(
                    self._tree_arrays, meta["leaf_attributes"]
                )
                root = compiled.import_tree_arrays(meta, self._tree_arrays)
                attach_routing_state(
                    root, self._store._routing_document(self._index)
                )
                form = self._compiled_form
                if form is not None:
                    # The restored compiled form IS this tree's compiled
                    # form (same plan, same payloads); adopting it avoids
                    # an O(nodes) recompile on first post-materialise use.
                    compiled.adopt(root, form)
                self._materialized = root
            return root

    def _compiled(self):
        form = self._compiled_form
        if form is None:
            # The form must not hold a strong reference back to this
            # RSPN (which owns the form): a cycle would leave the unmap
            # to the garbage collector and break DeepDB.close()'s
            # deterministic-release contract, so hand it a weak method.
            materialize = weakref.WeakMethod(self._materialize_root)

            def _materialize():
                method = materialize()
                if method is None:
                    raise ModelStoreError(
                        "owning MappedRSPN was garbage-collected"
                    )
                return method()

            form = compiled.MappedCompiledRSPN(
                self._tree_meta, self._tree_arrays, _materialize
            )
            self._compiled_form = form
        return form

    # -- inference / telemetry without the tree ------------------------
    def evaluate_specs(self, specs, executor=None):
        if self._materialized is not None:
            return super().evaluate_specs(specs, executor=executor)
        return self._compiled().evaluate_batch(specs, executor=executor)

    @property
    def generation(self):
        # A mapped tree is untouched by construction; materialising it
        # doesn't change that, only mutations do.
        if self._materialized is None:
            return 0
        return compiled.generation(self._materialized)

    def compiled_peek(self):
        if self._materialized is not None:
            return super().compiled_peek()
        return self._compiled_form

    def node_counts(self):
        if self._materialized is not None:
            return super().node_counts()
        kinds = self._tree_arrays["kinds"]
        return {
            "sum": int((kinds == compiled._KIND_SUM).sum()),
            "product": int((kinds == compiled._KIND_PRODUCT).sum()),
            "leaf": int((kinds >= compiled._KIND_DISCRETE).sum()),
        }

    # -- updates (copy-on-write) ---------------------------------------
    def _thaw(self):
        if not self._thawed:
            compiled.thaw_tree(self.root)
            self._thawed = True

    def insert(self, row):
        self._thaw()
        return super().insert(row)

    def delete(self, row):
        self._thaw()
        return super().delete(row)

    def stage_batch(self, ops):
        self._thaw()
        return super().stage_batch(ops)
