"""Probabilistic query compilation (Section 4 of the paper).

Incoming COUNT/SUM/AVG queries are translated into products of
expectations and probabilities over the RSPN ensemble:

- **Case 1 / Case 2** -- a single RSPN covers all query tables.  The
  COUNT is ``|J| * E[ 1/F'(Q, J) * 1_C * prod N_T ]`` (Theorem 1): the
  filter conditions ``C`` become leaf ranges, the NULL indicators
  ``N_T`` restrict to real (inner-join) tuples, and the inverse tuple
  factors ``1/F'`` undo the duplication caused by join partners of
  tables outside the query.
- **Case 3** -- the query spans several RSPNs.  The estimate starts from
  an anchor RSPN and is expanded one FK edge at a time (Theorem 2): the
  expansion multiplier is a ratio of two expectations over the RSPN
  covering the new table, and fan-out tuple factors are folded into the
  expectation anchoring the parent table when the expanding RSPN does
  not contain it.
- **Execution strategy** -- when several RSPNs apply, the one handling
  the filter predicates with the highest sum of pairwise RDC values
  (measured during ensemble creation) is chosen greedily.

AVG queries become ratios of conditional expectations normalised by
tuple factors (Section 4.2); SUM = COUNT x AVG; GROUP BY expands into
one query per group; outer joins relax the NULL indicators and treat
zero factors as one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core import confidence as ci
from repro.core import disjunction
from repro.core.leaves import (
    FACTOR_OUTER,
    FACTOR_OUTER_SQUARE,
    IDENTITY,
    INVERSE_FACTOR,
    INVERSE_FACTOR_SQUARE,
    SQUARE,
)
from repro.core.ranges import Range
from repro.engine.join import factor_qualified_name, indicator_qualified_name
from repro.engine.query import INNER, Predicate, Query
from repro.estimator import CardinalityEstimator

_FACTOR_TRANSFORMS = {
    "identity": (IDENTITY, SQUARE),
    "inverse": (INVERSE_FACTOR, INVERSE_FACTOR_SQUARE),
    "outer": (FACTOR_OUTER, FACTOR_OUTER_SQUARE),
    "value": (IDENTITY, SQUARE),
}

_MAX_GROUPS = 100_000


class CompilationError(RuntimeError):
    """Raised when the ensemble cannot answer a query."""


def _normalisation_edges(rspn, subset):
    """FK edges whose tuple factors duplicate subset-query tuples in the
    RSPN's full outer join (the ``F'(Q, J)`` of Theorem 1).

    Orient the RSPN's join tree outward from the queried ``subset`` by
    BFS.  An edge traversed towards its FK *child* multiplies every
    subset tuple by the child fan-out and needs ``1/F'`` normalisation;
    an edge traversed towards its FK *parent* adds exactly one partner
    (or a NULL extension) and needs none -- a tuple of a leaf table
    appears exactly once in the join.
    """
    adjacency = {}
    for fk in rspn.internal_edges:
        adjacency.setdefault(fk.parent, []).append((fk, fk.child, True))
        adjacency.setdefault(fk.child, []).append((fk, fk.parent, False))
    visited = set(subset)
    frontier = list(subset)
    edges = []
    while frontier:
        table = frontier.pop()
        for fk, other, other_is_child in adjacency.get(table, []):
            if other in visited:
                continue
            visited.add(other)
            frontier.append(other)
            if other_is_child:
                edges.append(fk)
    return edges


@dataclass
class _Expectation:
    """One expectation over one RSPN: conditions plus factor transforms.

    The plain (un-squared) value is cached so that batched evaluation --
    one :meth:`~repro.core.rspn.RSPN.expectation_batch` sweep priming
    many expectations at once -- and the later scalar reads through
    :class:`_Term` observe the same number.
    """

    rspn: object
    conditions: dict = field(default_factory=dict)
    factors: list = field(default_factory=list)  # [(column, kind)]
    _value: float | None = field(default=None, repr=False, compare=False)

    def transform_map(self, squared=False, square_kinds=None):
        """Per-column transform lists realising the factor product."""
        transforms = {}
        for column, kind in self.factors:
            square = squared or (square_kinds is not None and kind in square_kinds)
            transform = _FACTOR_TRANSFORMS[kind][1 if square else 0]
            transforms.setdefault(column, []).append(transform)
        return transforms

    def evaluate(self, squared=False, square_kinds=None):
        """E[T * 1_C]; ``squared`` squares the whole transform product,
        ``square_kinds`` squares only the named factor kinds (used for
        conditional second moments, where the tuple-factor weights define
        the measure and must stay un-squared)."""
        plain = not squared and square_kinds is None
        if plain and self._value is not None:
            return self._value
        value = self.rspn.expectation(
            conditions=self.conditions,
            transforms=self.transform_map(squared, square_kinds),
        )
        if plain:
            self._value = value
        return value

    def prime(self, value):
        """Store a batch-computed plain value."""
        self._value = float(value)

    @property
    def is_primed(self):
        return self._value is not None

    @property
    def has_factors(self):
        return bool(self.factors)


@dataclass
class _Term:
    """An absolute count term, an expansion ratio, or a conditional
    expectation (AVG), distinguished for the confidence-interval math."""

    nominator: _Expectation
    denominator: _Expectation | None = None
    scale: float = 1.0
    conditional: bool = False

    def value(self):
        nominator = self.nominator.evaluate()
        if self.denominator is None:
            return self.scale * nominator
        denominator = self.denominator.evaluate()
        if denominator <= 0:
            return 0.0
        return self.scale * nominator / denominator

    def moments(self):
        if self.conditional:
            return self._conditional_moments()
        nom = ci.expectation_moments(self.nominator)
        if self.denominator is None:
            return self.scale * nom[0], self.scale**2 * nom[1]
        den = ci.expectation_moments(self.denominator)
        mean, variance = ci.ratio_moments(nom, den)
        return self.scale * mean, self.scale**2 * variance

    def _conditional_moments(self):
        """Moments of E[T | C]: the shared selectivity cancels in the
        ratio, so the variance is the Koenig-Huygens conditional variance
        scaled by the conditioned sample count (Section 5.1)."""
        p = self.denominator.evaluate()
        if p <= 0:
            return 0.0, 0.0
        t1 = self.nominator.evaluate() / p
        t2 = self.nominator.evaluate(square_kinds={"value"}) / p
        n = max(self.nominator.rspn.sample_size, 1.0)
        variance = max(t2 - t1 * t1, 0.0) / max(n * p, 1.0)
        return self.scale * t1, self.scale**2 * variance


class Estimate:
    """A compiled estimate: point value plus variance for CIs.

    The value is **lazy**: compilation only assembles the
    :class:`_Term` structure, and the first ``.value`` read evaluates the
    underlying expectations (each cached on its :class:`_Expectation`).
    This split is what allows
    :meth:`ProbabilisticQueryCompiler.evaluate_estimates` to collect the
    expectations of many estimates and prime them with one batched sweep
    per RSPN before any value is read.

    ``parts`` optionally names sub-estimates whose values multiply into
    this one (SUM = COUNT x AVG) -- kept as estimates rather than terms
    so exact zeros (empty selections) survive the product.
    """

    def __init__(self, value=None, terms=None, parts=None):
        self.terms = list(terms) if terms else []
        self._parts = tuple(parts) if parts else None
        self._value = value

    @property
    def value(self):
        if self._value is None:
            if self._parts is not None:
                value = 1.0
                for part in self._parts:
                    value *= part.value
            else:
                value = 1.0
                for term in self.terms:
                    value *= term.value()
            self._value = value
        return self._value

    def expectations(self):
        """Every :class:`_Expectation` this estimate's value reads."""
        if self._parts is not None:
            for part in self._parts:
                yield from part.expectations()
            return
        for term in self.terms:
            yield term.nominator
            if term.denominator is not None:
                yield term.denominator

    def moments(self):
        if not self.terms:
            return self.value, 0.0
        moments = [term.moments() for term in self.terms]
        return ci.product_moments(moments)

    def confidence_interval(self, confidence=0.95):
        mean, variance = self.moments()
        return ci.interval(mean, variance, confidence)


class _MedianEstimate(Estimate):
    """Median over several candidate compilations (Section 4.1).

    All candidates' expectations are exposed for batching; forcing the
    value picks the median and keeps the closest term for CI math.
    """

    def __init__(self, candidates):
        super().__init__()
        self.candidates = list(candidates)

    @property
    def value(self):
        if self._value is None:
            values = sorted(term.value() for term in self.candidates)
            median = values[len(values) // 2]
            if len(values) % 2 == 0:
                median = (median + values[len(values) // 2 - 1]) / 2.0
            # The CI follows the term whose estimate is closest to the
            # median.
            closest = min(self.candidates, key=lambda t: abs(t.value() - median))
            self.terms = [closest]
            self._value = median
        return self._value

    def expectations(self):
        for term in self.candidates:
            yield term.nominator
            if term.denominator is not None:
                yield term.denominator

    def moments(self):
        self.value  # noqa: B018 - force the median / closest-term choice
        return super().moments()


@dataclass
class SumEstimate:
    """A signed sum of estimates (inclusion-exclusion expansions).

    Treating the conjunctive terms as independent, the variance of the
    signed sum is the sum of the term variances.
    """

    components: list  # [(sign, estimate)]

    @property
    def value(self):
        return sum(sign * estimate.value for sign, estimate in self.components)

    def expectations(self):
        for _sign, estimate in self.components:
            yield from estimate.expectations()

    def moments(self):
        mean, variance = 0.0, 0.0
        for sign, estimate in self.components:
            m, v = estimate.moments()
            mean += sign * m
            variance += v
        return mean, variance

    def confidence_interval(self, confidence=0.95):
        mean, variance = self.moments()
        return ci.interval(mean, variance, confidence)


@dataclass
class RatioEstimate:
    """A ratio of two estimates (AVG over a disjunctive predicate)."""

    nominator: object
    denominator: object

    @property
    def value(self):
        denominator = self.denominator.value
        if denominator <= 0:
            return 0.0
        return self.nominator.value / denominator

    def expectations(self):
        yield from self.nominator.expectations()
        yield from self.denominator.expectations()

    def moments(self):
        return ci.ratio_moments(self.nominator.moments(), self.denominator.moments())

    def confidence_interval(self, confidence=0.95):
        mean, variance = self.moments()
        return ci.interval(mean, variance, confidence)


def _format_constant(value):
    """Decoded predicate constant for EXPLAIN output."""
    if value is None:
        return "NULL"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, (int, float)):
        return str(value)
    return repr(str(value))


class ProbabilisticQueryCompiler(CardinalityEstimator):
    """Compiles queries against an :class:`~repro.core.ensemble.SPNEnsemble`.

    ``strategy`` selects how the compiler picks among several applicable
    RSPNs for a COUNT (Section 4.1's execution-strategy discussion):

    - ``"rdc"`` (default, the paper's choice) -- greedily use the RSPN
      handling the filter predicates with the highest sum of pairwise
      RDC values;
    - ``"median"`` -- enumerate every covering RSPN's compilation and
      return the median estimate (the alternative the paper
      "experimented with" and found not superior);
    - ``"first"`` -- an arbitrary applicable RSPN (the no-strategy
      ablation baseline).
    """

    def __init__(self, ensemble, min_group_count=0.5, strategy="rdc"):
        if strategy not in ("rdc", "median", "first"):
            raise ValueError(f"unknown execution strategy {strategy!r}")
        self.ensemble = ensemble
        self.database = ensemble.database
        self.min_group_count = min_group_count
        self.strategy = strategy

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def cardinality(self, query: Query) -> float:
        """Cardinality estimate for the optimizer (clamped to >= 1)."""
        return max(self.estimate_count(query).value, 1.0)

    def cardinality_batch(self, queries) -> list:
        """Batched :meth:`cardinality`: one compiled sweep per RSPN.

        All queries are compiled first (compilation never reads
        expectation values), their expectation sub-queries are grouped
        per RSPN and evaluated with one
        :meth:`~repro.core.rspn.RSPN.expectation_batch` call each, and
        only then are the per-query values assembled.
        """
        estimates = [self.estimate_count(query) for query in queries]
        self.evaluate_estimates(estimates)
        return [max(estimate.value, 1.0) for estimate in estimates]

    def answer_batch(self, queries) -> list:
        """Batched :meth:`answer`; scalar queries share one batch, each
        GROUP BY query is internally batched over its groups."""
        results = [None] * len(queries)
        scalar = [
            (i, self._estimate(query))
            for i, query in enumerate(queries)
            if not query.group_by
        ]
        self.evaluate_estimates([estimate for _, estimate in scalar])
        for i, estimate in scalar:
            results[i] = estimate.value
        for i, query in enumerate(queries):
            if query.group_by:
                results[i] = self._answer_groups(query)
        return results

    def answer_with_confidence_batch(self, queries, confidence=0.95):
        """Batched :meth:`answer_with_confidence`: point estimates share
        one batched sweep per RSPN; the CI moments (squared-transform
        expectations) are computed per query on top of the primed
        values."""
        results = [None] * len(queries)
        scalar = [
            (i, self._estimate(query))
            for i, query in enumerate(queries)
            if not query.group_by
        ]
        self.evaluate_estimates([estimate for _, estimate in scalar])
        for i, estimate in scalar:
            results[i] = (estimate.value, estimate.confidence_interval(confidence))
        for i, query in enumerate(queries):
            if query.group_by:
                results[i] = self.answer_with_confidence(query, confidence)
        return results

    def evaluate_estimates(self, estimates):
        """Prime every expectation behind ``estimates`` with one batched
        bottom-up sweep per RSPN (Section 4's sub-queries, batched)."""
        pending, seen = [], set()
        for estimate in estimates:
            for expectation in estimate.expectations():
                if expectation.is_primed or id(expectation) in seen:
                    continue
                seen.add(id(expectation))
                pending.append(expectation)
        by_rspn = {}
        for expectation in pending:
            by_rspn.setdefault(id(expectation.rspn), []).append(expectation)
        for group in by_rspn.values():
            batch = getattr(group[0].rspn, "expectation_batch", None)
            if batch is None:  # duck-typed model without a batch kernel
                for expectation in group:
                    expectation.evaluate()
                continue
            values = batch([(e.conditions, e.transform_map()) for e in group])
            for expectation, value in zip(group, values):
                expectation.prime(value)

    def estimate_count(self, query: Query):
        query = query.without_group_by()
        if query.has_disjunctions:
            return self._expand_signed(query, self._compile_count)
        return self._compile_count(query)

    def estimate_avg(self, query: Query):
        query = query.without_group_by()
        if query.has_disjunctions:
            # AVG over a union is not linear; compute it as SUM / COUNT
            # of the expansions (both are linear in the row indicator).
            not_null = self._aggregate_not_null(query)
            nominator = self.estimate_sum(query)
            denominator = self.estimate_count(
                query.with_extra_predicates((not_null,))
            )
            return RatioEstimate(nominator, denominator)
        return self._compile_avg(query)

    def estimate_sum(self, query: Query):
        query = query.without_group_by()
        if query.has_disjunctions:
            return self._expand_signed(query, self._conjunctive_sum)
        return self._conjunctive_sum(query)

    def _conjunctive_sum(self, query: Query) -> Estimate:
        count = self._compile_count(
            query.with_extra_predicates((self._aggregate_not_null(query),))
        )
        avg = self._compile_avg(query)
        return Estimate(terms=count.terms + avg.terms, parts=(count, avg))

    @staticmethod
    def _aggregate_not_null(query):
        return Predicate(
            query.aggregate.table, query.aggregate.column, "IS NOT NULL"
        )

    def _expand_signed(self, query, compile_one) -> SumEstimate:
        """Inclusion-exclusion expansion (Section 4.1's suggestion)."""
        components = [
            (sign, compile_one(conjunctive))
            for sign, conjunctive in disjunction.expand(query)
        ]
        return SumEstimate(components)

    def answer(self, query: Query):
        """Approximate answer: scalar, or ``{group: value}`` for GROUP BY."""
        if query.group_by:
            return self._answer_groups(query)
        return self._answer_scalar(query)

    def answer_with_confidence(self, query: Query, confidence=0.95):
        """(value, (low, high)) for scalar queries, dicts for GROUP BY."""
        if query.group_by:
            values = {}
            for combo, estimate in self._group_estimates(query):
                values[combo] = (
                    estimate.value,
                    estimate.confidence_interval(confidence),
                )
            return values
        estimate = self._estimate(query)
        return estimate.value, estimate.confidence_interval(confidence)

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------
    def explain(self, query: Query) -> str:
        """Human-readable rendering of the probabilistic compilation.

        Shows, per term, which RSPN answers it, the leaf conditions, the
        tuple-factor corrections, and -- for multi-RSPN plans -- the
        Theorem-2 expansion ratios, mirroring the formulas of Section 4.
        """
        lines = [f"query    : {query.describe()}"]
        lines.append(f"strategy : {self.strategy}")
        if query.group_by:
            scalar = query.without_group_by()
            domains = [
                self._group_domain(table, column, query)
                for table, column in query.group_by
            ]
            n_groups = 1
            for domain in domains:
                n_groups *= max(len(domain), 1)
            lines.append(
                f"group-by : {n_groups} candidate groups, one compilation each "
                "(Section 4.2); template below"
            )
            query = scalar
        estimate = self._estimate(query)
        lines.extend(self._explain_estimate(estimate))
        lines.append(f"estimate : {estimate.value:,.4f}")
        return "\n".join(lines)

    def _explain_estimate(self, estimate, indent="  "):
        if isinstance(estimate, SumEstimate):
            lines = [
                f"{indent}inclusion-exclusion over "
                f"{len(estimate.components)} conjunctive terms:"
            ]
            for sign, component in estimate.components:
                lines.append(f"{indent}  sign {'+' if sign > 0 else '-'}:")
                lines.extend(self._explain_estimate(component, indent + "    "))
            return lines
        if isinstance(estimate, RatioEstimate):
            lines = [f"{indent}ratio (SUM / COUNT):"]
            lines.extend(self._explain_estimate(estimate.nominator, indent + "  "))
            lines.append(f"{indent}over:")
            lines.extend(self._explain_estimate(estimate.denominator, indent + "  "))
            return lines
        if not estimate.terms:
            return [f"{indent}(empty selection -> {estimate.value:,.4f})"]
        lines = []
        for i, term in enumerate(estimate.terms, start=1):
            header = f"{indent}term {i}: "
            if term.scale != 1.0:
                header += f"{term.scale:,.0f} * "
            header += self._describe_expectation(term.nominator)
            if term.denominator is not None:
                header += " / " + self._describe_expectation(term.denominator)
            lines.append(header)
        return lines

    def _describe_expectation(self, expectation):
        parts = []
        for column, kind in expectation.factors:
            symbol = {
                "identity": column,
                "value": column,
                "inverse": f"1/max({column},1)",
                "outer": f"max({column},1)",
            }[kind]
            parts.append(symbol)
        for attr, rng in expectation.conditions.items():
            parts.append(f"1_{{{attr} in {self._describe_range(attr, rng)}}}")
        body = " * ".join(parts) if parts else "1"
        tables = "/".join(sorted(expectation.rspn.tables))
        return f"E[ {body} ] on RSPN({tables})"

    def _describe_range(self, qualified, rng):
        """Range description with categorical point codes decoded."""
        table_name, column = qualified.split(".", 1)
        table = self.database.tables.get(table_name)
        points = rng.point_values()
        if (
            table is None
            or points is None
            or not points
            or not table.is_categorical(column)
        ):
            return rng.describe()
        decoded = [_format_constant(table.decode_value(column, p)) for p in points]
        if rng.include_null:
            decoded.append("NULL")
        return "{" + ", ".join(decoded) + "}"

    # ------------------------------------------------------------------
    # Scalar dispatch
    # ------------------------------------------------------------------
    def _estimate(self, query) -> Estimate:
        function = query.aggregate.function
        if function == "COUNT":
            return self.estimate_count(query)
        if function == "AVG":
            return self.estimate_avg(query)
        if function == "SUM":
            return self.estimate_sum(query)
        raise CompilationError(f"unsupported aggregate {function!r}")

    def _answer_scalar(self, query):
        return self._estimate(query).value

    def _answer_groups(self, query):
        return {combo: est.value for combo, est in self._group_estimates(query)}

    def _group_estimates(self, query):
        """One estimate per group: the n-queries-per-group-by of Section 4.2.

        Group domains are the distinct column values observed in the data,
        restricted by the query's predicates on the same table (cheap mask
        on the base table) so that e.g. a brand group-by under a category
        filter only enumerates that category's brands.  HAVING conditions
        are applied on per-group aggregate *estimates*; ORDER/LIMIT sort
        and truncate by the estimated value.

        Evaluation is staged so that every group shares one batched
        sweep per RSPN: all group COUNTs first (they gate on
        ``min_group_count``), then each HAVING aggregate across the
        surviving groups, then the query aggregate itself.
        """
        per_column = [
            self._group_domain(table, column, query) for table, column in query.group_by
        ]
        total = 1
        for values in per_column:
            total *= max(len(values), 1)
        if total > _MAX_GROUPS:
            raise CompilationError(
                f"group-by would enumerate {total} groups (> {_MAX_GROUPS})"
            )
        scalar = query.without_group_by()
        groups = []
        for combo in itertools.product(*per_column):
            extra = tuple(
                Predicate(t, c, "=", v)
                for (t, c), v in zip(query.group_by, combo)
            )
            groups.append((combo, scalar.with_extra_predicates(extra)))
        counts = [
            self.estimate_count(grouped.with_aggregate(grouped.aggregate.count()))
            for _, grouped in groups
        ]
        self.evaluate_estimates(counts)
        survivors = [
            (combo, grouped, count)
            for (combo, grouped), count in zip(groups, counts)
            if count.value >= self.min_group_count
        ]
        survivors = self._having_filter(query, survivors)
        if query.aggregate.function == "COUNT":
            results = [(combo, count) for combo, _, count in survivors]
        else:
            estimates = [
                self._estimate(grouped) for _, grouped, _ in survivors
            ]
            self.evaluate_estimates(estimates)
            results = [
                (combo, estimate)
                for (combo, _, _), estimate in zip(survivors, estimates)
            ]
        return self._order_and_limit(results, query)

    def _having_filter(self, query, survivors):
        """Evaluate HAVING clauses on per-group estimates, one batched
        clause at a time across all surviving groups."""
        for clause in query.having:
            if not survivors:
                break
            if clause.aggregate.function == "COUNT":
                estimated = [count.value for _, _, count in survivors]
            else:
                estimates = [
                    self._estimate(grouped.with_aggregate(clause.aggregate))
                    for _, grouped, _ in survivors
                ]
                self.evaluate_estimates(estimates)
                estimated = [estimate.value for estimate in estimates]
            survivors = [
                entry
                for entry, value in zip(survivors, estimated)
                if clause.accepts(value)
            ]
        return survivors

    @staticmethod
    def _order_and_limit(results, query):
        if query.order is None and query.limit is None:
            return results
        reverse = query.order == "desc"
        ordered = sorted(
            results, key=lambda pair: pair[1].value, reverse=reverse
        )
        if query.limit is not None:
            ordered = ordered[: query.limit]
        return ordered

    def _group_domain(self, table_name, column, query):
        from repro.engine.filters import conjunction_mask

        table = self.database.table(table_name)
        predicates = query.predicates_on(table_name)
        if not predicates:
            return table.distinct_values(column, decoded=True)
        filtered = table.select(conjunction_mask(table, predicates))
        return filtered.distinct_values(column, decoded=True)

    # ------------------------------------------------------------------
    # Conditions and scoring
    # ------------------------------------------------------------------
    def _conditions(self, query):
        """Merged per-attribute ranges from the query's predicates."""
        merged = {}
        for predicate in query.predicates:
            table = self.database.table(predicate.table)
            rng = self._predicate_range(table, predicate)
            key = predicate.qualified_column
            existing = merged.get(key)
            merged[key] = rng if existing is None else existing.intersect(rng)
        return merged

    @staticmethod
    def _predicate_range(table, predicate):
        op, value = predicate.op, predicate.value
        if op in ("IS NULL", "IS NOT NULL"):
            return Range.from_operator(op, None)
        if op == "IN":
            encoded = [table.encode_value(predicate.column, v) for v in value]
            return Range.from_operator(op, encoded)
        if op == "BETWEEN":
            low = table.encode_value(predicate.column, value[0])
            high = table.encode_value(predicate.column, value[1])
            return Range.from_operator(op, (low, high))
        return Range.from_operator(op, table.encode_value(predicate.column, value))

    def _score(self, rspn, conditions, target_tables, extra_attrs=()):
        """Greedy execution-strategy score: RDC mass of handled predicates."""
        covered = [
            attr
            for attr in list(conditions) + list(extra_attrs)
            if attr.split(".", 1)[0] in rspn.tables
        ]
        score = 0.0
        for i in range(len(covered)):
            for j in range(i + 1, len(covered)):
                score += self.ensemble.rdc_value(covered[i], covered[j])
        score += 0.01 * len(covered)
        score += 0.005 * len(rspn.tables & set(target_tables))
        score -= 1e-6 * len(rspn.column_names)
        return score

    # ------------------------------------------------------------------
    # Expectation assembly
    # ------------------------------------------------------------------
    def _count_expectation(self, rspn, subset, conditions, query, with_conditions=True):
        """Theorem-1 expectation for counting ``subset``-join rows in ``rspn``.

        ``conditions`` holds the query's per-attribute ranges; only those
        on ``subset`` tables apply.  Inverse tuple factors are added for
        every FK edge internal to the RSPN whose child lies outside
        ``subset``; NULL indicators restrict to real tuples of ``subset``
        tables (relaxed for outer joins).
        """
        expectation = _Expectation(rspn)
        subset = set(subset)
        if with_conditions:
            for attr, rng in conditions.items():
                if attr.split(".", 1)[0] in subset:
                    expectation.conditions[attr] = rng
        if rspn.is_join_model:
            for table in self._indicator_tables(query, subset):
                expectation.conditions[indicator_qualified_name(table)] = Range.point(1.0)
            for fk in _normalisation_edges(rspn, subset):
                expectation.factors.append((factor_qualified_name(fk), "inverse"))
        return expectation

    @staticmethod
    def _indicator_tables(query, subset):
        if query.join_kind == INNER:
            return subset
        if query.join_kind == "left_outer":
            root = query.tables[0]
            return {root} & subset
        return set()

    def _fold_kind(self, query):
        return "identity" if query.join_kind == INNER else "outer"

    # ------------------------------------------------------------------
    # COUNT compilation (Cases 1-3)
    # ------------------------------------------------------------------
    def _compile_count(self, query) -> Estimate:
        conditions = self._conditions(query)
        if any(rng.is_empty() for rng in conditions.values()):
            return Estimate(0.0)
        query_tables = set(query.tables)
        full_cover = self.ensemble.covering(query_tables)
        if full_cover:
            if self.strategy == "median" and len(full_cover) > 1:
                return self._median_count(full_cover, query_tables, conditions, query)
            if self.strategy == "first":
                rspn = full_cover[0]
            else:
                rspn = max(
                    full_cover,
                    key=lambda r: self._score(r, conditions, query_tables),
                )
            expectation = self._count_expectation(rspn, query_tables, conditions, query)
            term = _Term(expectation, scale=rspn.full_size)
            return Estimate(terms=[term])
        return self._compile_count_multi(query, conditions, query_tables)

    def _median_count(self, full_cover, query_tables, conditions, query) -> Estimate:
        """Median over every covering RSPN's compilation ("median of
        several probabilistic query compilations", Section 4.1)."""
        candidates = []
        for rspn in full_cover:
            expectation = self._count_expectation(
                rspn, query_tables, conditions, query
            )
            candidates.append(_Term(expectation, scale=rspn.full_size))
        return _MedianEstimate(candidates)

    def _compile_count_multi(self, query, conditions, query_tables) -> Estimate:
        """Case 3: combine several RSPNs along the query's join tree."""
        anchor_rspn = self._choose_anchor(conditions, query_tables)
        covered = self._covered_component(anchor_rspn, query_tables)
        anchor_exp = self._count_expectation(anchor_rspn, covered, conditions, query)
        terms = [_Term(anchor_exp, scale=anchor_rspn.full_size)]
        anchors = {table: anchor_exp for table in covered}
        fold_kind = self._fold_kind(query)

        remaining_edges = list(self.database.schema.edges_between(query_tables))
        while covered != query_tables:
            step = self._next_edge(remaining_edges, covered)
            if step is None:
                raise CompilationError(
                    f"cannot cover tables {sorted(query_tables - covered)} "
                    "with the available ensemble"
                )
            fk, a, b, b_is_child = step
            term, nominator = self._expansion_term(
                fk, a, b, b_is_child, conditions, query, covered, anchors, fold_kind
            )
            terms.append(term)
            anchors[b] = nominator
            covered.add(b)

        return Estimate(terms=terms)

    def _choose_anchor(self, conditions, query_tables):
        candidates = [
            r for r in self.ensemble.rspns if r.tables & query_tables
        ]
        if not candidates:
            raise CompilationError(f"no RSPN touches tables {sorted(query_tables)}")
        return max(
            candidates, key=lambda r: self._score(r, conditions, query_tables)
        )

    def _covered_component(self, rspn, query_tables):
        """Largest connected component of the covered query tables."""
        overlap = rspn.tables & query_tables
        components = self._components(overlap)
        return max(components, key=len)

    def _components(self, tables):
        import networkx as nx

        graph = self.database.schema.as_networkx().subgraph(tables)
        return [set(c) for c in nx.connected_components(graph)] or [set()]

    @staticmethod
    def _next_edge(edges, covered):
        for fk in edges:
            if fk.parent in covered and fk.child not in covered:
                return fk, fk.parent, fk.child, True
            if fk.child in covered and fk.parent not in covered:
                return fk, fk.child, fk.parent, False
        return None

    def _expansion_term(
        self, fk, a, b, b_is_child, conditions, query, covered, anchors, fold_kind
    ):
        """Theorem-2 multiplier adding table ``b`` through anchor table ``a``."""
        candidates = self.ensemble.touching(b)
        if not candidates:
            raise CompilationError(f"no RSPN covers table {b!r}")
        with_a = [r for r in candidates if a in r.tables]
        if with_a:
            rspn = max(
                with_a, key=lambda r: self._score(r, conditions, {a, b})
            )
            overlap = self._overlap_component(rspn, covered, a)
            nominator = self._count_expectation(
                rspn, overlap | {b}, conditions, query
            )
            denominator = self._count_expectation(rspn, overlap, conditions, query)
            return _Term(nominator, denominator), nominator
        rspn = max(candidates, key=lambda r: self._score(r, conditions, {b}))
        subset = self._covered_component(rspn, {b} | covered) | {b}
        subset &= rspn.tables
        if b_is_child:
            # Fold the fan-out factor F_{a<-b} into a's anchoring
            # expectation; the new term only contributes b's selectivity.
            anchors[a].factors.append((factor_qualified_name(fk), fold_kind))
            nominator = self._count_expectation(rspn, {b}, conditions, query)
            denominator = self._count_expectation(
                rspn, {b}, conditions, query, with_conditions=False
            )
            return _Term(nominator, denominator), nominator
        # Parent direction without a shared RSPN: weight the parent-side
        # RSPN by the tuple factor F_{b<-a} (the paper's alternative
        # formulation of Theorem 2).
        factor = factor_qualified_name(fk)
        nominator = self._count_expectation(rspn, {b}, conditions, query)
        nominator.factors.append((factor, "value"))
        denominator = self._count_expectation(
            rspn, {b}, conditions, query, with_conditions=False
        )
        denominator.factors.append((factor, "value"))
        return _Term(nominator, denominator), nominator

    def _overlap_component(self, rspn, covered, anchor_table):
        overlap = rspn.tables & covered
        for component in self._components(overlap):
            if anchor_table in component:
                return component
        return {anchor_table}

    # ------------------------------------------------------------------
    # AVG compilation (Section 4.2)
    # ------------------------------------------------------------------
    def _compile_avg(self, query) -> Estimate:
        aggregate = query.aggregate
        agg_attr = aggregate.qualified_column
        conditions = self._conditions(query)
        if any(rng.is_empty() for rng in conditions.values()):
            return Estimate(0.0)
        candidates = [
            r
            for r in self.ensemble.touching(aggregate.table)
            if r.has_column(agg_attr)
        ]
        if not candidates:
            raise CompilationError(f"no RSPN models column {agg_attr!r}")
        query_tables = set(query.tables)
        rspn = max(
            candidates,
            key=lambda r: self._score(
                r, conditions, query_tables, extra_attrs=(agg_attr,)
            ),
        )
        subset = set()
        for component in self._components(rspn.tables & query_tables):
            if aggregate.table in component:
                subset = component
        nominator = self._count_expectation(rspn, subset, conditions, query)
        nominator.factors.append((agg_attr, "value"))
        denominator = self._count_expectation(rspn, subset, conditions, query)
        not_null = Range.from_operator("IS NOT NULL", None)
        existing = denominator.conditions.get(agg_attr)
        denominator.conditions[agg_attr] = (
            not_null if existing is None else existing.intersect(not_null)
        )
        term = _Term(nominator, denominator, conditional=True)
        return Estimate(terms=[term])
