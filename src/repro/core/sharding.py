"""Shard the compiled values matrix across worker processes.

The batched bottom-up sweep of :mod:`repro.core.compiled` evaluates one
``(n_nodes x n_queries)`` values matrix per batch.  Every per-query
column of that matrix is computed independently -- leaf kernels fill
columns per spec, the level-wise ``reduceat`` sweeps reduce along the
node axis only -- so the matrix can be split by *query columns* and
evaluated by several worker processes, then concatenated in original
order.  That is pure parallelism with no semantic risk: the model is
read-only at query time, and shard-of-N results are **bit-identical**
to the serial sweep (the same batch-size invariance the batch-of-1 ==
batch-of-N property tests already pin down).

:class:`ShardedEvaluator` is the pluggable executor
:meth:`~repro.core.compiled.CompiledRSPN.evaluate_batch` accepts:

- a **persistent process pool** (``spawn`` by default -- safe to start
  from threaded servers; tests use ``fork`` for speed) evaluates
  contiguous spec slices;
- workers **cache the deserialized tree** keyed on
  ``(model key, generation)`` -- the same generation counter that
  stale-checks the compiled-form and serving result caches -- so
  ``insert``/``delete`` transparently re-ship the tree on the next
  sweep.  A worker that does not hold the current generation raises
  :class:`_StaleModel` and the parent retries that slice with the
  serialized tree attached;
- **any failure falls back to the in-process sweep** with a logged
  warning -- a worker crash (``BrokenProcessPool``), a pickling failure
  (ad-hoc transforms), a timeout -- never a wrong answer.  A broken
  pool is discarded and lazily rebuilt on the next call (self-healing).

Attach a shared evaluator with
:meth:`repro.core.ensemble.SPNEnsemble.set_evaluator` (which
``DeepDB(shards=N)`` and the CLI ``--shards`` flag do for you): every
``expectation_batch`` sweep -- including each coalesced serving flush
through ``ModelSession.run_batch`` -- then fans out across the pool.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import logging
import os
import pickle
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context

import numpy as np

logger = logging.getLogger(__name__)

# Parent-side identity of a node tree, stable for the tree's lifetime
# (``id()`` alone could be recycled after garbage collection).
_MODEL_KEYS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MODEL_KEY_COUNTER = itertools.count(1)
_MODEL_KEY_LOCK = threading.Lock()


def model_key(root) -> int:
    """A process-unique, non-recycled key for a node tree."""
    with _MODEL_KEY_LOCK:
        key = _MODEL_KEYS.get(root)
        if key is None:
            key = next(_MODEL_KEY_COUNTER)
            _MODEL_KEYS[root] = key
        return key


class _StaleModel(Exception):
    """A worker does not hold ``(model key, generation)`` and no tree
    was shipped with the task; the parent retries with the tree."""

    def __init__(self, key, generation):
        super().__init__(key, generation)
        self.key = key
        self.generation = generation


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# model key -> (generation, CompiledRSPN); a small LRU per worker.  The
# parent-side pickled-tree cache uses the same cap so neither side
# retains serialized trees of models that stopped being queried.
_WORKER_MODELS: OrderedDict = OrderedDict()
_WORKER_MODEL_CAP = 8


def _worker_evaluate(key, generation, tree_blob, specs):
    """Evaluate one spec slice against the worker's cached model.

    Returns ``(pid, values)`` -- the pid lets callers verify that a
    batch really fanned out across several processes.
    """
    from repro.core.compiled import CompiledRSPN

    entry = _WORKER_MODELS.get(key)
    if entry is None or entry[0] != generation:
        if tree_blob is None:
            raise _StaleModel(key, generation)
        root = pickle.loads(tree_blob)
        entry = (generation, CompiledRSPN(root))
        _WORKER_MODELS[key] = entry
        while len(_WORKER_MODELS) > _WORKER_MODEL_CAP:
            _WORKER_MODELS.popitem(last=False)
    _WORKER_MODELS.move_to_end(key)
    return os.getpid(), entry[1].evaluate_batch(specs)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardedEvaluator:
    """Fan compiled batch sweeps out across a persistent process pool.

    Parameters
    ----------
    n_workers:
        Pool size (default: ``os.cpu_count()``).
    min_shard_size:
        Smallest batch worth sharding; below it the serial in-process
        sweep wins on IPC overhead (``bench_sharding.py`` measures the
        crossover).
    mp_context:
        ``multiprocessing`` start method.  ``"spawn"`` (default) is safe
        to initialise from threaded servers; ``"fork"`` starts faster.
    result_timeout_s:
        Per-slice wait cap; a hung worker triggers the serial fallback
        and a pool rebuild instead of stalling the caller forever.
    """

    def __init__(self, n_workers=None, min_shard_size=32,
                 mp_context="spawn", result_timeout_s=120.0):
        self.n_workers = max(1, int(n_workers or (os.cpu_count() or 1)))
        self.min_shard_size = max(1, int(min_shard_size))
        self.result_timeout_s = result_timeout_s
        self._mp_context = get_context(mp_context)
        self._lock = threading.Lock()
        self._pool = None
        self._closed = False
        # model key -> generation every pool worker is believed to hold.
        self._shipped: dict[int, int] = {}
        # model key -> (generation, pickled tree); an LRU holding the
        # current blob only, capped like the worker-side model cache.
        self._blobs: OrderedDict = OrderedDict()
        # Telemetry (advisory; read through :meth:`stats`).
        self.sharded_batches = 0
        self.sharded_specs = 0
        self.serial_fallbacks = 0
        self.tree_shipments = 0
        self.reships = 0
        self.pool_restarts = 0
        self.worker_pids: set[int] = set()
        self.last_worker_pids: tuple = ()

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------
    def should_shard(self, n_specs) -> bool:
        """Whether a batch of ``n_specs`` goes through the pool."""
        return not self._closed and n_specs >= self.min_shard_size

    def evaluate_batch(self, compiled, specs):
        """Evaluate ``specs`` against ``compiled`` across the pool.

        Never raises and never returns a wrong answer: any failure --
        worker crash, pickling error, timeout, garbage-collected root --
        logs a warning and falls back to the in-process serial sweep.
        """
        root = compiled.root_ref()
        if root is None:
            return self._fallback(compiled, specs, "root tree was garbage-collected")
        try:
            return self._evaluate_sharded(root, compiled, specs)
        except Exception as error:  # noqa: BLE001 - fallback, never a wrong answer
            self._heal(error)
            return self._fallback(
                compiled, specs, f"{type(error).__name__}: {error}"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self):
        """Shut the pool down; further batches evaluate in-process."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            self._shipped.clear()
            self._blobs.clear()
        if pool is not None:
            _shutdown_pool(pool, grace_s=5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass

    def stats(self) -> dict:
        """Counters for benches, the smoke check and ``/stats``."""
        with self._lock:
            return {
                "workers": self.n_workers,
                "min_shard_size": self.min_shard_size,
                "pool_alive": self._pool is not None,
                "sharded_batches": self.sharded_batches,
                "sharded_specs": self.sharded_specs,
                "serial_fallbacks": self.serial_fallbacks,
                "tree_shipments": self.tree_shipments,
                "reships": self.reships,
                "pool_restarts": self.pool_restarts,
                "distinct_worker_pids": len(self.worker_pids),
                "last_worker_pids": list(self.last_worker_pids),
            }

    # ------------------------------------------------------------------
    # Sharded evaluation
    # ------------------------------------------------------------------
    def _evaluate_sharded(self, root, compiled, specs):
        key = model_key(root)
        generation = compiled.generation
        slices = [
            s for s in np.array_split(np.arange(len(specs)), self.n_workers)
            if s.size
        ]
        with self._lock:
            if self._closed:
                raise RuntimeError("evaluator is closed")
            pool = self._ensure_pool()
            blob = None
            if self._shipped.get(key) != generation:
                blob = self._tree_blob(root, key, generation)
        futures = [
            pool.submit(
                _worker_evaluate, key, generation, blob,
                [specs[i] for i in indices],
            )
            for indices in slices
        ]
        results = np.zeros(len(specs), dtype=float)
        pids = []
        for indices, future in zip(slices, futures):
            try:
                pid, values = future.result(timeout=self.result_timeout_s)
            except _StaleModel:
                # A worker that never saw this (model, generation) --
                # e.g. it sat out the batch that shipped the tree.
                # Retry just that slice with the tree attached.
                with self._lock:
                    retry_blob = self._tree_blob(root, key, generation)
                    self.reships += 1
                pid, values = pool.submit(
                    _worker_evaluate, key, generation, retry_blob,
                    [specs[i] for i in indices],
                ).result(timeout=self.result_timeout_s)
            results[indices] = values
            pids.append(pid)
        with self._lock:
            self._shipped[key] = generation
            self.sharded_batches += 1
            self.sharded_specs += len(specs)
            self.worker_pids.update(pids)
            if len(self.worker_pids) > 256:  # bound across pool restarts
                self.worker_pids = set(pids)
            self.last_worker_pids = tuple(pids)
        return results

    def _ensure_pool(self):
        """The live pool, created lazily (callers hold ``_lock``)."""
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=self._mp_context
            )
            # A fresh pool holds no models: force re-shipping.
            self._shipped.clear()
        return self._pool

    def _tree_blob(self, root, key, generation):
        """The pickled tree for ``generation`` (callers hold ``_lock``).

        Cached per model so retries and multi-batch shipping do not
        re-serialize; mutations (a new generation) replace the entry.
        """
        cached = self._blobs.get(key)
        if cached is not None and cached[0] == generation:
            self._blobs.move_to_end(key)
            return cached[1]
        blob = pickle.dumps(root, protocol=pickle.HIGHEST_PROTOCOL)
        self._blobs[key] = (generation, blob)
        self._blobs.move_to_end(key)
        while len(self._blobs) > _WORKER_MODEL_CAP:
            self._blobs.popitem(last=False)
        self.tree_shipments += 1
        return blob

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _heal(self, error):
        """Discard a broken/hung pool so the next call rebuilds it."""
        if not isinstance(
            error, (BrokenProcessPool, concurrent.futures.TimeoutError, OSError)
        ):
            return  # e.g. a pickling error: the pool itself is fine
        with self._lock:
            pool, self._pool = self._pool, None
            self._shipped.clear()
            if pool is not None:
                self.pool_restarts += 1
        if pool is not None:
            # No grace: the pool is broken or hung; surviving workers
            # are terminated so they cannot wedge interpreter exit.
            _shutdown_pool(pool, grace_s=0.0)

    def _fallback(self, compiled, specs, reason):
        with self._lock:
            self.serial_fallbacks += 1
        logger.warning(
            "sharded evaluation failed (%s); falling back to the "
            "in-process sweep for this batch of %d specs", reason, len(specs)
        )
        return compiled.evaluate_batch(specs)


def _shutdown_pool(pool, grace_s):
    """Shut a worker pool down without ever blocking indefinitely.

    ``ProcessPoolExecutor.shutdown(wait=True)`` -- and the interpreter's
    own atexit join -- wait forever on a worker that is deadlocked or
    wedged (e.g. a ``fork`` child that inherited a held lock).  This
    sends the regular shutdown sentinels, grants the workers ``grace_s``
    seconds to drain, then terminates (and finally kills) survivors so
    neither :meth:`ShardedEvaluator.close` nor process exit can hang.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    deadline = time.monotonic() + grace_s
    for process in processes:
        process.join(max(0.0, deadline - time.monotonic()))
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        if process.is_alive():
            process.join(1.0)
            if process.is_alive():
                process.kill()
