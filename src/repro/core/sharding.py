"""Shard the compiled values matrix across worker processes.

The batched bottom-up sweep of :mod:`repro.core.compiled` evaluates one
``(n_nodes x n_queries)`` values matrix per batch.  Every per-query
column of that matrix is computed independently -- leaf kernels fill
columns per spec, the level-wise ``reduceat`` sweeps reduce along the
node axis only -- so the matrix can be split by *query columns* and
evaluated by several worker processes, then concatenated in original
order.  That is pure parallelism with no semantic risk: the model is
read-only at query time, and shard-of-N results are **bit-identical**
to the serial sweep (the same batch-size invariance the batch-of-1 ==
batch-of-N property tests already pin down).

:class:`ShardedEvaluator` is the pluggable executor
:meth:`~repro.core.compiled.CompiledRSPN.evaluate_batch` accepts:

- a **persistent process pool** (``spawn`` by default -- safe to start
  from threaded servers; tests use ``fork`` for speed) evaluates
  contiguous spec slices;
- a **pluggable spec transport** moves the model and the spec batch
  across the process boundary.  The default ``shm`` transport (where
  :mod:`multiprocessing.shared_memory` works) publishes the batch once
  as columnar arrays (:mod:`repro.core.specpack`) in a named segment
  that every worker attaches to and slices by offsets -- zero copies,
  no per-worker pickling -- and shares the model's flat arrays
  (:func:`repro.core.compiled.export_tree_arrays`) in a segment that
  persists per ``(model key, generation)`` instead of being re-pickled
  on every generation bump.  The ``pickle`` transport is the
  portability fallback and ships pickled slices exactly as before;
- workers **cache the deserialized tree** keyed on
  ``(model key, generation)`` -- the same generation counter that
  stale-checks the compiled-form and serving result caches -- so
  ``insert``/``delete`` transparently re-publish the tree on the next
  sweep.  Under the pickle transport a worker that does not hold the
  current generation raises :class:`_StaleModel` and the parent retries
  that slice with the serialized tree attached; under shm the segment
  name always travels with the task, so workers self-serve;
- **any failure falls back to the in-process sweep** with a logged
  warning -- a worker crash (``BrokenProcessPool``), an unpackable or
  unpicklable spec (ad-hoc transforms), a timeout -- never a wrong
  answer.  A broken pool is discarded and lazily rebuilt on the next
  call (self-healing); an unpackable spec batch degrades shm -> pickle
  -> in-process, stopping at the first transport that can carry it.

Segment lifecycle: the parent owns every segment.  Spec segments live
for exactly one flush (unlinked in a ``finally``); tree segments live
until their generation is superseded or the evaluator closes.
:meth:`ShardedEvaluator.close` drains the pool with a grace period
first, then unlinks everything; an ``atexit`` hook covers evaluators
that were never closed so no ``repro-*`` segment outlives the
interpreter.

Attach a shared evaluator with
:meth:`repro.core.ensemble.SPNEnsemble.set_evaluator` (which
``DeepDB(shards=N)`` and the CLI ``--shards``/``--transport`` flags do
for you): every ``expectation_batch`` sweep -- including each coalesced
serving flush through ``ModelSession.run_batch`` -- then fans out
across the pool.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import gc
import itertools
import logging
import os
import pickle
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context

import numpy as np

from repro.core import autotune
from repro.core import compiled as compiled_mod
from repro.core import kernels
from repro.core import specpack

logger = logging.getLogger(__name__)

# Parent-side identity of a node tree, stable for the tree's lifetime
# (``id()`` alone could be recycled after garbage collection).
_MODEL_KEYS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MODEL_KEY_COUNTER = itertools.count(1)
_MODEL_KEY_LOCK = threading.Lock()


def model_key(root) -> int:
    """A process-unique, non-recycled key for a node tree."""
    with _MODEL_KEY_LOCK:
        key = _MODEL_KEYS.get(root)
        if key is None:
            key = next(_MODEL_KEY_COUNTER)
            _MODEL_KEYS[root] = key
        return key


class _StaleModel(Exception):
    """A worker does not hold ``(model key, generation)`` and no tree
    was shipped with the task; the parent retries with the tree."""

    def __init__(self, key, generation):
        super().__init__(key, generation)
        self.key = key
        self.generation = generation


# ----------------------------------------------------------------------
# Shared-memory segments (parent side)
# ----------------------------------------------------------------------
_SEGMENT_PREFIX = "repro-"
_SEGMENT_COUNTER = itertools.count(1)
_SEGMENT_TAG = os.urandom(3).hex()  # PID reuse must not collide names


def shm_available() -> bool:
    """Whether named shared memory actually works on this host."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(
            create=True, size=16,
            # The counter keeps concurrent probes (two threads building
            # evaluators at once) from colliding on one name -- a
            # FileExistsError would misreport shm as unavailable.
            name=f"{_SEGMENT_PREFIX}probe-{os.getpid()}-{_SEGMENT_TAG}-"
                 f"{next(_SEGMENT_COUNTER)}",
        )
    except (ImportError, OSError, ValueError):
        return False
    probe.close()
    probe.unlink()
    return True


def _create_segment(nbytes: int):
    """A fresh parent-owned segment with a ``repro-`` name."""
    from multiprocessing import shared_memory

    name = (
        f"{_SEGMENT_PREFIX}{os.getpid()}-{_SEGMENT_TAG}-"
        f"{next(_SEGMENT_COUNTER)}"
    )
    return shared_memory.SharedMemory(create=True, size=max(nbytes, 1), name=name)


def _destroy_segment(segment):
    """Close and unlink one parent-owned segment (idempotent-ish)."""
    try:
        segment.close()
    except (BufferError, OSError):
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


# Interpreter-exit backstop: transports register here so segments of
# evaluators that were never ``close()``d still get unlinked.  atexit
# runs before the interpreter's own ProcessPoolExecutor join, and
# unlinking while a worker is still attached is safe (POSIX keeps the
# mapping alive until the last close).
_LIVE_TRANSPORTS: "weakref.WeakSet" = weakref.WeakSet()


def _unlink_leaked_segments():
    for transport in list(_LIVE_TRANSPORTS):
        try:
            transport.close()
        except Exception:  # noqa: BLE001 - interpreter is tearing down
            pass


atexit.register(_unlink_leaked_segments)


# ----------------------------------------------------------------------
# Transports (parent side)
# ----------------------------------------------------------------------
def _pickled_spec_payloads(specs, bounds):
    """Per-slice pickle payloads; the shared fallback encoding."""
    payloads, total = [], 0
    for lo, hi in bounds:
        blob = pickle.dumps(specs[lo:hi], protocol=pickle.HIGHEST_PROTOCOL)
        total += len(blob)
        payloads.append(("pickle-specs", blob))
    return payloads, total


class PickleSpecTransport:
    """The portability fallback: pickled spec slices, pickled tree.

    The tree blob is cached per model so retries and multi-batch
    shipping do not re-serialize; a new generation replaces the entry.
    Workers signal a missing tree with :class:`_StaleModel` and the
    parent retries that slice with the blob attached.
    """

    name = "pickle"
    uses_stale_protocol = True

    def __init__(self):
        self._lock = threading.Lock()
        # model key -> (generation, pickled tree); LRU capped like the
        # worker-side model cache so neither side retains dead models.
        self._blobs: OrderedDict = OrderedDict()
        self.tree_publishes = 0
        self.tree_bytes = 0
        self.spec_publishes = 0
        self.spec_bytes = 0
        self.publish_seconds = 0.0
        self.spec_pack_fallbacks = 0

    def tree_payload(self, root, key, generation, assume_cached):
        """``(payload, freshly_serialized)`` for one slice task."""
        if assume_cached:
            return ("pickle-tree", None), False
        start = time.perf_counter()
        with self._lock:
            cached = self._blobs.get(key)
            if cached is not None and cached[0] == generation:
                self._blobs.move_to_end(key)
                return ("pickle-tree", cached[1]), False
            blob = pickle.dumps(root, protocol=pickle.HIGHEST_PROTOCOL)
            self._blobs[key] = (generation, blob)
            self._blobs.move_to_end(key)
            while len(self._blobs) > _WORKER_MODEL_CAP:
                self._blobs.popitem(last=False)
            self.tree_publishes += 1
            self.tree_bytes += len(blob)
            self.publish_seconds += time.perf_counter() - start
        return ("pickle-tree", blob), True

    def record_tree_delta(self, key, from_generation, to_generation,
                          sum_rows, leaf_rows):
        """Pickle ships whole object graphs; deltas don't apply."""

    def publish_specs(self, specs, bounds):
        """``(handle, per-slice payloads)``; handle is for release."""
        start = time.perf_counter()
        payloads, total = _pickled_spec_payloads(specs, bounds)
        with self._lock:
            self.spec_publishes += 1
            self.spec_bytes += total
            self.publish_seconds += time.perf_counter() - start
        return None, payloads

    def release_specs(self, handle):
        pass

    def retire_tree(self, key):
        with self._lock:
            self._blobs.pop(key, None)

    def close(self):
        with self._lock:
            self._blobs.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "tree_publishes": self.tree_publishes,
                "tree_bytes": self.tree_bytes,
                "tree_delta_publishes": 0,
                "tree_delta_bytes": 0,
                "spec_publishes": self.spec_publishes,
                "spec_bytes": self.spec_bytes,
                "publish_seconds": self.publish_seconds,
                "spec_pack_fallbacks": self.spec_pack_fallbacks,
                "segments_active": 0,
                "segments_created": 0,
                "segments_unlinked": 0,
            }


class SharedMemorySpecTransport:
    """Zero-copy transport over named shared-memory segments.

    - The **spec batch** is packed once into columnar arrays
      (:func:`repro.core.specpack.pack_specs`) and published in a
      per-flush segment; each worker attaches and unpacks only its
      ``[lo, hi)`` slice by offsets.  The segment is unlinked as soon
      as the flush completes.
    - The **tree** is exported once per ``(model key, generation)``
      (:func:`repro.core.compiled.export_tree_arrays`) into a segment
      that outlives flushes; workers keep it attached while the model
      is cached, and its leaf histograms are views straight into the
      segment.  A generation bump publishes a fresh segment and
      unlinks the superseded one.
    - Spec batches that cannot be packed (ad-hoc transforms) fall back
      to pickled slices for that flush, with a logged warning and a
      counter (``spec_pack_fallbacks``).
    """

    name = "shm"
    uses_stale_protocol = False

    def __init__(self):
        self._lock = threading.Lock()
        self._closed = False
        # model key -> (generation, SharedMemory) -- the published tree.
        # LRU capped like the pickle blob / worker model caches so tree
        # segments of models that stopped being queried are unlinked
        # instead of accumulating in /dev/shm (detaching an evaluator
        # also retires its models' segments eagerly via retire_tree).
        self._trees: OrderedDict = OrderedDict()
        # In-flight spec segments, keyed by name (release pops them).
        self._spec_segments: dict[str, object] = {}
        # model key -> accumulated touched rows since the published base
        # segment: {"from": base generation, "to": latest recorded
        # generation, "sum_rows": set, "leaf_rows": set}.  Fed by
        # record_tree_delta; consumed (and kept growing -- lagging
        # workers patch from the same base) by tree_payload.
        self._tree_deltas: dict[int, dict] = {}
        # model key -> (to generation, SharedMemory) -- the currently
        # published delta patch, superseded per generation.
        self._delta_segments: dict[int, tuple] = {}
        self.tree_publishes = 0
        self.tree_bytes = 0
        self.tree_delta_publishes = 0
        self.tree_delta_bytes = 0
        self.spec_publishes = 0
        self.spec_bytes = 0
        self.publish_seconds = 0.0
        self.spec_pack_fallbacks = 0
        self.segments_created = 0
        self.segments_unlinked = 0
        _LIVE_TRANSPORTS.add(self)

    def record_tree_delta(self, key, from_generation, to_generation,
                          sum_rows, leaf_rows):
        """Note that a batch commit moved ``key``'s tree from
        ``from_generation`` to ``to_generation`` touching only the
        given post-order rows.

        Accumulated rows must chain gaplessly from the published base
        segment's generation; a gap (an invalidation that went through
        the non-batched path, structure swap, ...) voids the delta and
        the next flush falls back to a full republish.
        """
        with self._lock:
            if self._closed:
                return
            state = self._tree_deltas.get(key)
            entry = self._trees.get(key)
            if state is not None and state["to"] == from_generation:
                state["sum_rows"].update(int(r) for r in sum_rows)
                state["leaf_rows"].update(int(r) for r in leaf_rows)
                state["to"] = to_generation
            elif entry is not None and entry[0] == from_generation:
                self._tree_deltas[key] = {
                    "from": from_generation,
                    "to": to_generation,
                    "sum_rows": {int(r) for r in sum_rows},
                    "leaf_rows": {int(r) for r in leaf_rows},
                }
            else:
                # Can't prove continuity from the published base.
                self._tree_deltas.pop(key, None)

    def _drop_delta(self, key):
        # Caller holds self._lock; returns a segment to destroy.
        self._tree_deltas.pop(key, None)
        old = self._delta_segments.pop(key, None)
        if old is not None:
            self.segments_unlinked += 1
            return old[1]
        return None

    def tree_payload(self, root, key, generation, assume_cached):
        """Publish (or reuse) the tree segment; name travels per task.

        When the generation moved but every bump since the published
        base was recorded through :meth:`record_tree_delta`, a **delta
        segment** holding only the touched rows is published instead of
        re-shipping the whole tree -- provided the patch is actually
        smaller.  The base segment stays up so lagging or cold workers
        can still bootstrap the full twin and patch it.
        """
        start = time.perf_counter()
        with self._lock:
            if self._closed:
                raise RuntimeError("transport is closed")
            entry = self._trees.get(key)
            if entry is not None and entry[0] == generation:
                self._trees.move_to_end(key)
                return ("shm-tree", entry[1].name), False
            if entry is not None:
                payload = self._delta_payload(key, root, entry, generation)
                if payload is not None:
                    self._trees.move_to_end(key)
                    self.publish_seconds += time.perf_counter() - start
                    return payload
            meta, arrays = compiled_mod.export_tree_arrays(root)
            header, payload_base, total = specpack.blob_layout(meta, arrays)
            segment = _create_segment(total)
            specpack.write_blob(segment.buf, header, payload_base, arrays)
            if entry is not None:  # superseded generation
                _destroy_segment(entry[1])
                self.segments_unlinked += 1
            stale_delta = self._drop_delta(key)
            if stale_delta is not None:
                _destroy_segment(stale_delta)
            self._trees[key] = (generation, segment)
            self._trees.move_to_end(key)
            while len(self._trees) > _WORKER_MODEL_CAP:
                evicted_key, evicted = self._trees.popitem(last=False)
                _destroy_segment(evicted[1])
                self.segments_unlinked += 1
                evicted_delta = self._drop_delta(evicted_key)
                if evicted_delta is not None:
                    _destroy_segment(evicted_delta)
            self.tree_publishes += 1
            self.tree_bytes += total
            self.segments_created += 1
            self.publish_seconds += time.perf_counter() - start
            return ("shm-tree", segment.name), True

    def _delta_payload(self, key, root, entry, generation):
        """A ``shm-tree-delta`` payload when the recorded delta covers
        ``base -> generation`` and beats a full republish on bytes;
        ``None`` otherwise (caller full-publishes).  Caller holds
        ``self._lock``."""
        state = self._tree_deltas.get(key)
        if (
            state is None
            or state["from"] != entry[0]
            or state["to"] != generation
        ):
            return None
        published = self._delta_segments.get(key)
        if published is not None and published[0] == generation:
            return (
                ("shm-tree-delta", entry[1].name, published[1].name,
                 int(entry[0])),
                False,
            )
        meta, arrays = compiled_mod.export_tree_delta(
            root, state["sum_rows"], state["leaf_rows"],
            entry[0], generation,
        )
        header, payload_base, total = specpack.blob_layout(meta, arrays)
        if total >= entry[1].size:
            # The patch grew past the whole tree: republishing is
            # cheaper and resets the delta base.
            return None
        segment = _create_segment(total)
        specpack.write_blob(segment.buf, header, payload_base, arrays)
        if published is not None:
            _destroy_segment(published[1])
            self.segments_unlinked += 1
        self._delta_segments[key] = (generation, segment)
        self.tree_delta_publishes += 1
        self.tree_delta_bytes += total
        self.segments_created += 1
        return (
            ("shm-tree-delta", entry[1].name, segment.name, int(entry[0])),
            True,
        )

    def publish_specs(self, specs, bounds):
        start = time.perf_counter()
        try:
            meta, arrays = specpack.pack_specs(specs)
        except specpack.SpecPackError as error:
            payloads, total = _pickled_spec_payloads(specs, bounds)
            with self._lock:
                self.spec_pack_fallbacks += 1
                self.spec_publishes += 1
                self.spec_bytes += total
                self.publish_seconds += time.perf_counter() - start
            logger.warning(
                "spec batch is not shm-packable (%s); shipping this flush "
                "of %d specs over pickle instead", error, len(specs)
            )
            return None, payloads
        header, payload_base, total = specpack.blob_layout(meta, arrays)
        with self._lock:
            if self._closed:
                raise RuntimeError("transport is closed")
            try:
                segment = _create_segment(total)
            except OSError as error:  # e.g. /dev/shm full: degrade, don't fail
                payloads, blob_total = _pickled_spec_payloads(specs, bounds)
                self.spec_pack_fallbacks += 1
                self.spec_publishes += 1
                self.spec_bytes += blob_total
                self.publish_seconds += time.perf_counter() - start
                logger.warning(
                    "shared-memory segment of %d bytes unavailable (%s); "
                    "shipping this flush of %d specs over pickle instead",
                    total, error, len(specs)
                )
                return None, payloads
            specpack.write_blob(segment.buf, header, payload_base, arrays)
            self._spec_segments[segment.name] = segment
            self.spec_publishes += 1
            self.spec_bytes += total
            self.segments_created += 1
            self.publish_seconds += time.perf_counter() - start
        payloads = [
            ("shm-specs", segment.name, int(lo), int(hi)) for lo, hi in bounds
        ]
        return segment.name, payloads

    def release_specs(self, handle):
        """Unlink one flush's spec segment (always runs, via finally)."""
        if handle is None:
            return
        with self._lock:
            segment = self._spec_segments.pop(handle, None)
            if segment is not None:
                self.segments_unlinked += 1
        if segment is not None:
            _destroy_segment(segment)

    def retire_tree(self, key):
        with self._lock:
            entry = self._trees.pop(key, None)
            if entry is not None:
                self.segments_unlinked += 1
            delta = self._drop_delta(key)
        if entry is not None:
            _destroy_segment(entry[1])
        if delta is not None:
            _destroy_segment(delta)

    def close(self):
        """Unlink every owned segment; idempotent."""
        with self._lock:
            self._closed = True
            trees, self._trees = self._trees, {}
            spec_segments, self._spec_segments = self._spec_segments, {}
            deltas, self._delta_segments = self._delta_segments, {}
            self._tree_deltas = {}
            self.segments_unlinked += (
                len(trees) + len(spec_segments) + len(deltas)
            )
        for _, segment in trees.values():
            _destroy_segment(segment)
        for segment in spec_segments.values():
            _destroy_segment(segment)
        for _, segment in deltas.values():
            _destroy_segment(segment)

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "tree_publishes": self.tree_publishes,
                "tree_bytes": self.tree_bytes,
                "tree_delta_publishes": self.tree_delta_publishes,
                "tree_delta_bytes": self.tree_delta_bytes,
                "spec_publishes": self.spec_publishes,
                "spec_bytes": self.spec_bytes,
                "publish_seconds": self.publish_seconds,
                "spec_pack_fallbacks": self.spec_pack_fallbacks,
                "segments_active": (
                    len(self._trees) + len(self._spec_segments)
                    + len(self._delta_segments)
                ),
                "segments_created": self.segments_created,
                "segments_unlinked": self.segments_unlinked,
            }


def make_transport(transport=None):
    """Resolve a transport choice (``None``/"auto", "shm", "pickle")."""
    if transport is None or transport == "auto":
        return (
            SharedMemorySpecTransport() if shm_available()
            else PickleSpecTransport()
        )
    if transport == "shm":
        if not shm_available():
            raise ValueError(
                "transport 'shm' requested but named shared memory is "
                "unavailable on this host; use 'pickle' (or 'auto')"
            )
        return SharedMemorySpecTransport()
    if transport == "pickle":
        return PickleSpecTransport()
    raise ValueError(
        f"unknown transport {transport!r}; expected 'auto', 'shm' or 'pickle'"
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# model key -> (generation, CompiledRSPN, attached tree segment or
# None, root node or None); a small LRU per worker.  The root is held
# strongly so a later ``shm-tree-delta`` payload can patch the cached
# twin in place instead of re-importing the whole tree.  The
# parent-side caches use the same cap so neither side retains models
# that stopped being queried.
_WORKER_MODELS: OrderedDict = OrderedDict()
_WORKER_MODEL_CAP = 8


def _attach_segment(name):
    """Attach a parent-owned segment without adopting ownership.

    Pool workers share the parent's resource-tracker process (both
    ``fork`` and ``spawn`` hand the tracker down), so the attach-time
    re-registration is an idempotent set-add there and the parent's
    eventual ``unlink`` clears it exactly once.  Do NOT apply the
    classic "unregister after attach" workaround here: with a shared
    tracker it would strip the parent's own registration and the
    later unlink would double-unregister.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _close_segment_handle(segment):
    """Close an attached segment whose views may linger in cyclic
    garbage (a freshly dropped node graph).  One collection usually
    frees them; if a view truly survives, give up quietly -- a later
    ``__del__`` on a still-exported mmap would only raise an ignored
    BufferError anyway."""
    try:
        segment.close()
        return
    except BufferError:
        gc.collect()
    try:
        segment.close()
    except BufferError:  # a stray view survives; freed at exit
        pass


def _close_worker_entry(entry):
    """Drop one cached model, then close its tree segment (the order
    matters: the leaf arrays are views into the segment's mmap, and
    closing an mmap with live exports raises BufferError)."""
    if entry is None:
        return
    segment = entry[2]
    del entry
    if segment is not None:
        _close_segment_handle(segment)


def _clear_worker_models():
    """Worker-exit teardown: release cached models in dependency order.

    ``spawn`` workers exit through ``sys.exit`` (full interpreter
    teardown), where module-level GC order is arbitrary -- a segment's
    ``__del__`` may run while the compiled tree still holds views into
    its mmap, spewing ignored ``BufferError`` tracebacks.  Draining the
    cache from an atexit hook closes each segment only after its tree
    is dropped.  Harmless in the parent (its cache is always empty).
    """
    while _WORKER_MODELS:
        _close_worker_entry(_WORKER_MODELS.popitem()[1])


atexit.register(_clear_worker_models)


def _decode_tree(key, generation, payload):
    """``(root, segment-or-None, plan-signature-or-None)`` from a task's
    tree payload.  The signature (shm transport only: the pickle
    transport ships the object graph itself) is the parent's fused-plan
    digest, verified by :func:`_worker_model` after recompiling."""
    kind = payload[0]
    if kind == "pickle-tree":
        blob = payload[1]
        if blob is None:
            raise _StaleModel(key, generation)
        return pickle.loads(blob), None, None
    if kind == "shm-tree":
        segment = _attach_segment(payload[1])
        try:
            meta, arrays = specpack.read_blob(segment.buf)
            root = compiled_mod.import_tree_arrays(meta, arrays)
            return root, segment, meta.get("plan_signature")
        except BaseException:
            segment.close()
            raise
    raise ValueError(f"unknown tree payload kind {kind!r}")


def _decode_specs(payload):
    """The spec slice for one task, from either transport encoding."""
    kind = payload[0]
    if kind == "pickle-specs":
        return pickle.loads(payload[1])
    if kind == "shm-specs":
        _, name, lo, hi = payload
        segment = _attach_segment(name)
        try:
            return specpack.unpack_slice(segment.buf, lo, hi)
        finally:
            try:
                segment.close()
            except BufferError:
                pass
    raise ValueError(f"unknown spec payload kind {kind!r}")


def _worker_model(key, generation, tree_payload):
    """The worker's cached compiled model, (re)built or patched if stale."""
    from repro.core.compiled import CompiledRSPN

    entry = _WORKER_MODELS.get(key)
    if entry is None or entry[0] != generation:
        if tree_payload[0] == "shm-tree-delta":
            compiled, segment, root = _patched_worker_model(
                key, generation, tree_payload, entry
            )
        else:
            entry = None  # drop our reference BEFORE closing the old segment
            root, segment, expected_signature = _decode_tree(
                key, generation, tree_payload
            )
            _close_worker_entry(_WORKER_MODELS.pop(key, None))
            compiled = CompiledRSPN(root)
            if (
                expected_signature is not None
                and compiled.plan_signature() != expected_signature
            ):
                # The recompiled fused plan must be the parent's plan
                # (both derive from the same preserved post order); a
                # mismatch means the published arrays were mangled in
                # transit.  Fail the slice -- the parent falls back to
                # its serial sweep, never a wrong answer.
                del compiled, root  # release leaf views before the segment
                _close_worker_entry((generation, None, segment, None))
                raise RuntimeError(
                    "worker sweep plan diverges from the published tree "
                    f"(model {key}, generation {generation})"
                )
        entry = (generation, compiled, segment, root)
        _WORKER_MODELS[key] = entry
        # A patched key kept its old dict position; bump it before
        # evicting so the LRU can never evict what it just rebuilt.
        _WORKER_MODELS.move_to_end(key)
        while len(_WORKER_MODELS) > _WORKER_MODEL_CAP:
            _close_worker_entry(_WORKER_MODELS.popitem(last=False)[1])
    _WORKER_MODELS.move_to_end(key)
    return entry[1]


def _patched_worker_model(key, generation, tree_payload, entry):
    """Land on ``generation`` from a ``shm-tree-delta`` payload.

    A warm worker (cached entry at or past the delta's base generation,
    with a held root) patches its twin in place and re-bakes the
    compiled form's weights -- O(touched rows), no re-import, keeping
    its existing base-segment attachment.  A cold or too-old worker
    bootstraps the full twin from the still-published base segment and
    applies the same patch (the delta carries absolute state, so it
    lands either start point on the same bits).  Returns
    ``(compiled, segment, root)``; the delta segment attachment never
    outlives this call.
    """
    from repro.core.compiled import CompiledRSPN

    _, base_name, delta_name, base_generation = tree_payload
    delta_segment = _attach_segment(delta_name)
    try:
        meta, arrays = specpack.read_blob(delta_segment.buf)
        specpack.validate_tree_delta(meta, arrays)
        expected_signature = meta.get("plan_signature")
        warm = (
            entry is not None
            and entry[3] is not None
            and base_generation <= entry[0] < generation
        )
        if warm:
            _, compiled, segment, root = entry
            entry = None
            try:
                compiled_mod.apply_tree_delta(root, meta, arrays)
                if not compiled.refresh_weights():
                    compiled = CompiledRSPN(root)
            except BaseException:
                # The twin may be half-patched: drop it entirely so the
                # next task bootstraps clean.
                del compiled, root
                _close_worker_entry(_WORKER_MODELS.pop(key, None))
                raise
        else:
            segment = _attach_segment(base_name)
            try:
                base_meta, base_arrays = specpack.read_blob(segment.buf)
                root = compiled_mod.import_tree_arrays(base_meta, base_arrays)
                compiled_mod.apply_tree_delta(root, meta, arrays)
            except BaseException:
                segment.close()
                raise
            entry = None
            _close_worker_entry(_WORKER_MODELS.pop(key, None))
            compiled = CompiledRSPN(root)
        if (
            expected_signature is not None
            and compiled.plan_signature() != expected_signature
        ):
            del compiled, root
            _close_worker_entry(
                _WORKER_MODELS.pop(key, (generation, None, segment, None))
            )
            raise RuntimeError(
                "worker sweep plan diverges from the patched tree "
                f"(model {key}, generation {generation})"
            )
        return compiled, segment, root
    finally:
        # The delta views (meta/arrays) live in this frame; drop them
        # so the delta segment really closes here instead of leaking a
        # handle whose __del__ trips on the exported pointers.
        meta = arrays = None  # noqa: F841
        _close_segment_handle(delta_segment)


def _worker_evaluate(key, generation, tree_payload, spec_payload, kernel=None):
    """Evaluate one spec slice against the worker's cached model.

    ``kernel`` is the parent's requested kernel knob, applied before
    the sweep so a fleet stays coherent (``--kernel numba`` reaches the
    workers too).  Purely a performance setting: all kernels are
    bit-identical, so a worker resolving differently (e.g. numba absent
    in its interpreter) still returns the same bits.

    Returns ``(pid, values)`` -- the pid lets callers verify that a
    batch really fanned out across several processes.
    """
    if kernel is not None:
        kernels.set_kernel(kernel)
    compiled = _worker_model(key, generation, tree_payload)
    specs = _decode_specs(spec_payload)
    return os.getpid(), compiled.evaluate_batch(specs)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardedEvaluator:
    """Fan compiled batch sweeps out across a persistent process pool.

    Parameters
    ----------
    n_workers:
        Pool size (default: ``os.cpu_count()``).
    min_shard_size:
        Smallest batch worth sharding; below it the serial in-process
        sweep wins on IPC overhead.  ``None`` (the default) auto-tunes
        the crossover for this host at construction
        (:func:`repro.core.autotune.calibrate`): a 1-CPU host becomes
        serial-only (no pool is ever started), a multi-CPU host gets a
        measured threshold.  Pass an explicit integer to skip
        calibration; either way the decision is recorded in
        ``stats()["autotune"]``.
    mp_context:
        ``multiprocessing`` start method.  ``"spawn"`` (default) is safe
        to initialise from threaded servers; ``"fork"`` starts faster.
    result_timeout_s:
        Per-slice wait cap; a hung worker triggers the serial fallback
        and a pool rebuild instead of stalling the caller forever.
    transport:
        ``"shm"`` | ``"pickle"`` | ``"auto"``/``None`` (default: shm
        where available).  See the module docstring; answers are
        bit-identical either way.
    """

    def __init__(self, n_workers=None, min_shard_size=None,
                 mp_context="spawn", result_timeout_s=120.0, transport=None):
        self.n_workers = max(1, int(n_workers or (os.cpu_count() or 1)))
        self.result_timeout_s = result_timeout_s
        self._mp_context = get_context(mp_context)
        self._transport = make_transport(transport)
        self._lock = threading.Lock()
        self._pool = None
        self._closed = False
        # model key -> generation every pool worker is believed to hold
        # (drives the pickle transport's "don't re-ship" fast path).
        self._shipped: dict[int, int] = {}
        # Telemetry (advisory; read through :meth:`stats`).
        self.sharded_batches = 0
        self.sharded_specs = 0
        self.serial_fallbacks = 0
        self.tree_shipments = 0
        self.reships = 0
        self.pool_restarts = 0
        self.worker_pids: set[int] = set()
        self.last_worker_pids: tuple = ()
        # The crossover threshold: explicit, or measured for this host
        # (after every field above is ready -- calibration may publish
        # through the transport and ping the pool).
        if min_shard_size is None:
            self.autotune = autotune.calibrate(self)
            self.min_shard_size = self.autotune.min_shard_size
        else:
            self.min_shard_size = max(1, int(min_shard_size))
            self.autotune = autotune.static(self.min_shard_size, self.n_workers)

    @property
    def transport(self) -> str:
        """The active transport's name (``"shm"`` or ``"pickle"``)."""
        return self._transport.name

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------
    def should_shard(self, n_specs) -> bool:
        """Whether a batch of ``n_specs`` goes through the pool."""
        return not self._closed and n_specs >= self.min_shard_size

    def evaluate_batch(self, compiled, specs):
        """Evaluate ``specs`` against ``compiled`` across the pool.

        Never raises and never returns a wrong answer: any failure --
        worker crash, packing/pickling error, timeout, garbage-collected
        root -- logs a warning and falls back to the in-process sweep.
        """
        root = compiled.root_ref()
        if root is None:
            return self._fallback(compiled, specs, "root tree was garbage-collected")
        try:
            return self._evaluate_sharded(root, compiled, specs)
        except Exception as error:  # noqa: BLE001 - fallback, never a wrong answer
            self._heal(error)
            return self._fallback(
                compiled, specs, f"{type(error).__name__}: {error}"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def record_tree_delta(self, root, from_generation, to_generation,
                          sum_rows, leaf_rows):
        """Tell the transport a batch commit touched only these rows.

        Called by the batched update path after each committed
        :class:`repro.core.updates.TreeBatch`: the next sharded sweep
        can then ship a leaf-delta patch instead of republishing the
        whole tree.  A no-op for models this evaluator never shipped
        (no key yet) and for transports without a delta path (pickle).
        """
        with _MODEL_KEY_LOCK:
            key = _MODEL_KEYS.get(root)
        if key is None:
            return
        self._transport.record_tree_delta(
            key, from_generation, to_generation, sum_rows, leaf_rows
        )

    def retire_model(self, root):
        """Release transport resources held for one model's tree.

        Called when a model detaches from this evaluator
        (:meth:`repro.core.ensemble.SPNEnsemble.set_evaluator`): the
        pickle transport drops its cached blob, the shm transport
        unlinks the published tree segment.  Purely an eager cleanup --
        the capped LRUs would evict either eventually -- and safe to
        call for roots this evaluator never saw.
        """
        with _MODEL_KEY_LOCK:
            key = _MODEL_KEYS.get(root)
        if key is None:
            return
        with self._lock:
            self._shipped.pop(key, None)
        self._transport.retire_tree(key)

    def close(self):
        """Grace-then-unlink shutdown; further batches run in-process.

        The pool is drained first (shutdown sentinels, a grace period,
        then terminate/kill survivors), and only then are the
        transport's shared-memory segments unlinked -- so no live
        worker can race an attach against the unlink.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            self._shipped.clear()
        if pool is not None:
            _shutdown_pool(pool, grace_s=5.0)
        self._transport.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass

    def stats(self) -> dict:
        """Counters for benches, the smoke check and ``/stats``."""
        with self._lock:
            return {
                "workers": self.n_workers,
                "min_shard_size": self.min_shard_size,
                "autotune": self.autotune.to_dict(),
                "pool_alive": self._pool is not None,
                "transport": self._transport.name,
                "sharded_batches": self.sharded_batches,
                "sharded_specs": self.sharded_specs,
                "serial_fallbacks": self.serial_fallbacks,
                "tree_shipments": self.tree_shipments,
                "reships": self.reships,
                "pool_restarts": self.pool_restarts,
                "distinct_worker_pids": len(self.worker_pids),
                "last_worker_pids": list(self.last_worker_pids),
                "transport_stats": self._transport.stats(),
            }

    # ------------------------------------------------------------------
    # Sharded evaluation
    # ------------------------------------------------------------------
    def _evaluate_sharded(self, root, compiled, specs):
        key = model_key(root)
        generation = compiled.generation
        bounds = [
            (int(s[0]), int(s[-1]) + 1)
            for s in np.array_split(np.arange(len(specs)), self.n_workers)
            if s.size
        ]
        transport = self._transport
        with self._lock:
            if self._closed:
                raise RuntimeError("evaluator is closed")
            pool = self._ensure_pool()
            assume_cached = (
                transport.uses_stale_protocol
                and self._shipped.get(key) == generation
            )
        tree_payload, shipped = transport.tree_payload(
            root, key, generation, assume_cached
        )
        spec_handle, spec_payloads = transport.publish_specs(specs, bounds)
        if shipped:
            with self._lock:
                self.tree_shipments += 1
        try:
            kernel = kernels.get_kernel()
            futures = [
                pool.submit(
                    _worker_evaluate, key, generation, tree_payload, payload,
                    kernel,
                )
                for payload in spec_payloads
            ]
            results = np.zeros(len(specs), dtype=float)
            pids = []
            for (lo, hi), payload, future in zip(bounds, spec_payloads, futures):
                try:
                    pid, values = future.result(timeout=self.result_timeout_s)
                except _StaleModel:
                    # A worker that never saw this (model, generation) --
                    # e.g. it sat out the batch that shipped the tree.
                    # Retry just that slice with the tree attached.
                    retry_payload, shipped = transport.tree_payload(
                        root, key, generation, assume_cached=False
                    )
                    with self._lock:
                        self.reships += 1
                        if shipped:
                            self.tree_shipments += 1
                    pid, values = pool.submit(
                        _worker_evaluate, key, generation, retry_payload,
                        payload, kernel,
                    ).result(timeout=self.result_timeout_s)
                results[lo:hi] = values
                pids.append(pid)
        finally:
            transport.release_specs(spec_handle)
        with self._lock:
            self._shipped[key] = generation
            self.sharded_batches += 1
            self.sharded_specs += len(specs)
            self.worker_pids.update(pids)
            if len(self.worker_pids) > 256:  # bound across pool restarts
                self.worker_pids = set(pids)
            self.last_worker_pids = tuple(pids)
        return results

    def _ensure_pool(self):
        """The live pool, created lazily (callers hold ``_lock``)."""
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=self._mp_context
            )
            # A fresh pool holds no models: force re-shipping.
            self._shipped.clear()
        return self._pool

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _heal(self, error):
        """Discard a broken/hung pool so the next call rebuilds it."""
        if not isinstance(
            error, (BrokenProcessPool, concurrent.futures.TimeoutError, OSError)
        ):
            return  # e.g. a packing/pickling error: the pool itself is fine
        with self._lock:
            pool, self._pool = self._pool, None
            self._shipped.clear()
            if pool is not None:
                self.pool_restarts += 1
        if pool is not None:
            # No grace: the pool is broken or hung; surviving workers
            # are terminated so they cannot wedge interpreter exit.
            # Tree segments stay published -- fresh workers re-attach
            # by name, so a crash never forces a re-publish.
            _shutdown_pool(pool, grace_s=0.0)

    def _fallback(self, compiled, specs, reason):
        with self._lock:
            self.serial_fallbacks += 1
        logger.warning(
            "sharded evaluation failed (%s); falling back to the "
            "in-process sweep for this batch of %d specs", reason, len(specs)
        )
        return compiled.evaluate_batch(specs)


def _shutdown_pool(pool, grace_s):
    """Shut a worker pool down without ever blocking indefinitely.

    ``ProcessPoolExecutor.shutdown(wait=True)`` -- and the interpreter's
    own atexit join -- wait forever on a worker that is deadlocked or
    wedged (e.g. a ``fork`` child that inherited a held lock).  This
    sends the regular shutdown sentinels, grants the workers ``grace_s``
    seconds to drain, then terminates (and finally kills) survivors so
    neither :meth:`ShardedEvaluator.close` nor process exit can hang.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    deadline = time.monotonic() + grace_s
    for process in processes:
        process.join(max(0.0, deadline - time.monotonic()))
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        if process.is_alive():
            process.join(1.0)
            if process.is_alive():
                process.kill()
