"""Sampling and most-probable-explanation inference on RSPNs.

SPNs are generative models: beyond the probability/expectation queries
the paper's query compiler issues, the same tree supports

- **ancestral sampling** -- draw synthetic tuples from the learned joint
  distribution (top-down: sum nodes pick a child by weight, product
  nodes sample every child, leaves sample their histogram),
- **conditional sampling** -- draw tuples consistent with predicate
  evidence; sum-node weights are re-weighted by each child's likelihood
  of the evidence (exact, not rejection sampling),
- **MPE** -- the most probable completion of partial evidence, computed
  with a max-product bottom-up pass followed by a top-down readout.

These primitives power the data-exploration use the paper sketches in
its conclusion ("SPNs naturally provide a notion of correlated clusters
... for suggesting interesting patterns in data exploration") and the
generative-model AQP family it cites as related work [34].

All values are *encoded* (dictionary codes / numeric), matching the
learning matrix; ``NaN`` represents NULL.
"""

from __future__ import annotations

import numpy as np

from repro.core import inference
from repro.core.inference import EvaluationSpec
from repro.core.leaves import BinnedLeaf, DiscreteLeaf
from repro.core.nodes import LeafNode, ProductNode, SumNode
from repro.core.ranges import Range


class ZeroEvidenceError(ValueError):
    """Raised when conditioning evidence has zero probability."""


# ----------------------------------------------------------------------
# Leaf-level sampling
# ----------------------------------------------------------------------
def _leaf_masses(leaf, rng_range):
    """(labels, masses) of the leaf's atoms restricted to ``rng_range``.

    For discrete leaves atoms are the stored values (plus the NULL
    bucket); for binned leaves atoms are (bin, interval) fragments with
    uniform in-bin mass.  Labels are ``("value", v)``, ``("null",)`` or
    ``("bin", index, low, high)``.
    """
    if rng_range is None:
        rng_range = Range.everything(include_null=True)
    labels = []
    masses = []
    if isinstance(leaf, DiscreteLeaf):
        mask = leaf._in_range_mask(rng_range)
        for value, count in zip(leaf.values[mask], leaf.counts[mask]):
            labels.append(("value", float(value)))
            masses.append(float(count))
        if rng_range.include_null and leaf.null_count > 0:
            labels.append(("null",))
            masses.append(leaf.null_count)
        return labels, np.asarray(masses, dtype=float)
    if isinstance(leaf, BinnedLeaf):
        low, high = leaf.edges[:-1], leaf.edges[1:]
        for interval in rng_range.intervals:
            coverage = leaf._coverage(interval)
            for b in np.nonzero(coverage > 0)[0]:
                mass = float(leaf.counts[b] * coverage[b])
                if mass <= 0:
                    continue
                left = max(interval.low, low[b])
                right = min(interval.high, high[b])
                labels.append(("bin", int(b), float(left), float(right)))
                masses.append(mass)
        if rng_range.include_null and leaf.null_count > 0:
            labels.append(("null",))
            masses.append(leaf.null_count)
        return labels, np.asarray(masses, dtype=float)
    raise TypeError(f"unknown leaf type {type(leaf)!r}")


def _sample_leaf(leaf, rng_range, rng):
    labels, masses = _leaf_masses(leaf, rng_range)
    total = masses.sum()
    if total <= 0:
        raise ZeroEvidenceError(
            f"evidence on attribute {leaf.attribute!r} has zero mass"
        )
    label = labels[rng.choice(len(labels), p=masses / total)]
    if label[0] == "null":
        return np.nan
    if label[0] == "value":
        return label[1]
    _, _b, left, right = label
    if right <= left:
        return left
    return float(rng.uniform(left, right))


def _mpe_leaf(leaf, rng_range):
    """(value, per-tuple probability share) of the leaf's modal atom."""
    labels, masses = _leaf_masses(leaf, rng_range)
    total = leaf.total
    if masses.size == 0 or masses.sum() <= 0 or total <= 0:
        return None, 0.0
    if isinstance(leaf, BinnedLeaf):
        # Compare atoms by estimated per-value mass so a wide bin does
        # not beat a genuinely frequent single value.
        adjusted = np.array(
            [
                m / leaf.distinct[label[1]] if label[0] == "bin" else m
                for label, m in zip(labels, masses)
            ]
        )
    else:
        adjusted = masses
    best = int(np.argmax(adjusted))
    label = labels[best]
    if label[0] == "null":
        return np.nan, float(adjusted[best] / total)
    if label[0] == "value":
        return label[1], float(adjusted[best] / total)
    b = label[1]
    means = leaf._bin_means()
    value = float(np.clip(means[b], label[2], label[3]))
    return value, float(adjusted[best] / total)


# ----------------------------------------------------------------------
# Tree-level sampling
# ----------------------------------------------------------------------
def _sample_into(node, spec, touched, rng, out_row):
    if isinstance(node, LeafNode):
        rng_range, _ = spec.leaf_arguments(node.scope_index)
        out_row[node.scope_index] = _sample_leaf(node, rng_range, rng)
        return
    if isinstance(node, ProductNode):
        for child in node.children:
            _sample_into(child, spec, touched, rng, out_row)
        return
    if isinstance(node, SumNode):
        weights = node.weights.copy()
        if touched & set(node.scope):
            likelihoods = np.array(
                [inference._evaluate(child, spec, touched) for child in node.children]
            )
            weights = weights * likelihoods
            total = weights.sum()
            if total <= 0:
                raise ZeroEvidenceError("evidence has zero probability")
            weights = weights / total
        child = node.children[rng.choice(len(node.children), p=weights)]
        _sample_into(child, spec, touched, rng, out_row)
        return
    raise TypeError(f"unknown node type {type(node)!r}")


def sample_tree(root, n_columns, n, rng, spec=None):
    """Draw ``n`` rows (encoded, NaN = NULL) from an SPN tree."""
    spec = spec or EvaluationSpec()
    touched = spec.touched
    rows = np.full((n, n_columns), np.nan)
    for i in range(n):
        _sample_into(root, spec, touched, rng, rows[i])
    return rows


def draw(rspn, n, conditions=None, seed=0):
    """Draw ``n`` tuples from an RSPN, optionally conditioned.

    ``conditions`` maps qualified column names to
    :class:`~repro.core.ranges.Range` evidence (as produced by
    ``Range.from_operator``); drawn tuples always satisfy it.  Returns an
    ``(n, n_columns)`` array aligned with ``rspn.column_names``.
    """
    spec = rspn._build_spec(conditions or {})
    if spec.is_empty_selection():
        raise ZeroEvidenceError("conditions select the empty range")
    rng = np.random.default_rng(seed)
    return sample_tree(rspn.root, len(rspn.column_names), n, rng, spec)


def draw_dicts(rspn, n, conditions=None, seed=0):
    """Like :func:`draw` but as dicts keyed by qualified column name."""
    rows = draw(rspn, n, conditions=conditions, seed=seed)
    return [dict(zip(rspn.column_names, row)) for row in rows]


# ----------------------------------------------------------------------
# Most probable explanation
# ----------------------------------------------------------------------
def _mpe_node(node, spec, touched):
    """Max-product pass returning ``(score, assignment_dict)``."""
    if isinstance(node, LeafNode):
        rng_range, _ = spec.leaf_arguments(node.scope_index)
        value, score = _mpe_leaf(node, rng_range)
        if value is None and score == 0.0:
            return 0.0, {}
        return score, {node.scope_index: value}
    if isinstance(node, ProductNode):
        score = 1.0
        assignment = {}
        for child in node.children:
            child_score, child_assignment = _mpe_node(child, spec, touched)
            score *= child_score
            assignment.update(child_assignment)
            if score == 0.0:
                return 0.0, {}
        return score, assignment
    if isinstance(node, SumNode):
        best_score, best_assignment = 0.0, {}
        for weight, child in zip(node.weights, node.children):
            child_score, child_assignment = _mpe_node(child, spec, touched)
            if weight * child_score > best_score:
                best_score = weight * child_score
                best_assignment = child_assignment
        return best_score, best_assignment
    raise TypeError(f"unknown node type {type(node)!r}")


def most_probable_explanation(rspn, evidence=None):
    """Most probable completion of ``evidence`` (MPE, Section 4.3).

    ``evidence`` maps qualified column names to Ranges; the returned
    assignment maps *every* modelled column to its most probable value
    under the max-product approximation (exact on tree SPNs for the
    joint mode of the induced mixture component).  Returns
    ``(assignment, score)``; ``score`` is the unnormalised max-product
    probability of the assignment.
    """
    spec = rspn._build_spec(evidence or {})
    if spec.is_empty_selection():
        raise ZeroEvidenceError("evidence selects the empty range")
    score, by_index = _mpe_node(rspn.root, spec, spec.touched)
    if score <= 0.0:
        raise ZeroEvidenceError("evidence has zero probability")
    assignment = {
        rspn.column_names[index]: value for index, value in by_index.items()
    }
    return assignment, score
