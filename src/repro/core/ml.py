"""Machine-learning tasks on RSPNs (Section 4.3 of the paper).

Regression: ``E[Y | features]`` as a ratio of expectations.
Classification: the class marginal ``P(Y = v | features)`` is evaluated
per candidate value and the argmax returned (exact most probable
explanation for a single target variable).

The key selling point reproduced here is that *no additional training*
is needed: the same RSPN learned for AQP answers regression and
classification for any feature/target combination.
"""

from __future__ import annotations

import numpy as np

from repro.core.leaves import IDENTITY
from repro.core.nodes import LeafNode, iter_nodes
from repro.core.ranges import Interval, Range


class RspnRegressor:
    """Regression head over a learned RSPN.

    ``target`` and ``features`` are qualified column names; feature
    values must already be encoded (as stored in the learning matrix).
    """

    def __init__(self, rspn, target, features=None, widen_fraction=0.05):
        self.rspn = rspn
        self.target = target
        if features is None:
            features = [c for c in rspn.column_names if c != target]
        self.features = list(features)
        self.widen_fraction = widen_fraction
        self._spans = _column_spans(rspn)
        self._fallback = _unconditional_mean(rspn, target)

    def _conditions(self, row, widen=0.0):
        conditions = {}
        for name in self.features:
            value = row.get(name)
            if value is None or (isinstance(value, float) and np.isnan(value)):
                continue
            if widen > 0.0:
                half = widen * self._spans.get(name, 1.0)
                conditions[name] = Range(
                    (Interval(value - half, value + half),)
                )
            else:
                conditions[name] = Range.point(value)
        return conditions

    def predict_one(self, row: dict) -> float:
        """E[target | features]; falls back to widened ranges, then the
        unconditional mean, when the point evidence has zero mass."""
        for widen in (0.0, self.widen_fraction, 4 * self.widen_fraction):
            conditions = self._conditions(row, widen)
            denominator = self.rspn.probability(conditions)
            if denominator > 0.0:
                numerator = self.rspn.expectation(
                    conditions=conditions, transforms={self.target: [IDENTITY]}
                )
                not_null = dict(conditions)
                not_null[self.target] = Range.from_operator("IS NOT NULL", None)
                denominator = self.rspn.probability(not_null)
                if denominator > 0.0:
                    return numerator / denominator
        return self._fallback

    def predict(self, rows) -> np.ndarray:
        return np.array([self.predict_one(row) for row in rows])


class RspnClassifier:
    """Classification head: argmax over the target's marginal."""

    def __init__(self, rspn, target, features=None, widen_fraction=0.05):
        self.rspn = rspn
        self.target = target
        if features is None:
            features = [c for c in rspn.column_names if c != target]
        self.features = list(features)
        self.widen_fraction = widen_fraction
        self._classes = _domain_values(rspn, target)
        self._spans = _column_spans(rspn)

    def class_probabilities(self, row: dict) -> dict:
        """P(target = v | features) for every value v of the target."""
        regressor = RspnRegressor(
            self.rspn, self.target, self.features, self.widen_fraction
        )
        for widen in (0.0, self.widen_fraction, 4 * self.widen_fraction):
            conditions = regressor._conditions(row, widen)
            evidence = self.rspn.probability(conditions)
            if evidence <= 0.0:
                continue
            probabilities = {}
            for value in self._classes:
                joint = dict(conditions)
                target_range = Range.point(value)
                existing = joint.get(self.target)
                joint[self.target] = (
                    target_range if existing is None else existing.intersect(target_range)
                )
                probabilities[value] = self.rspn.probability(joint) / evidence
            return probabilities
        uniform = 1.0 / max(len(self._classes), 1)
        return {value: uniform for value in self._classes}

    def predict_one(self, row: dict):
        probabilities = self.class_probabilities(row)
        return max(probabilities, key=probabilities.get)

    def predict(self, rows):
        return [self.predict_one(row) for row in rows]


def _column_spans(rspn):
    spans = {}
    for node in iter_nodes(rspn.root):
        if isinstance(node, LeafNode):
            name = rspn.column_names[node.scope_index]
            values = node.domain_values()
            if values.size:
                span = float(values.max() - values.min()) or 1.0
                spans[name] = max(spans.get(name, 0.0), span)
    return spans


def _domain_values(rspn, column):
    index = rspn.column_index[column]
    values = set()
    for node in iter_nodes(rspn.root):
        if isinstance(node, LeafNode) and node.scope_index == index:
            values.update(float(v) for v in node.domain_values())
    return sorted(values)


def _unconditional_mean(rspn, column):
    numerator = rspn.expectation(transforms={column: [IDENTITY]})
    denominator = rspn.probability(
        {column: Range.from_operator("IS NOT NULL", None)}
    )
    return numerator / denominator if denominator > 0 else 0.0
