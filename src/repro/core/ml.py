"""Machine-learning tasks on RSPNs (Section 4.3 of the paper).

Regression: ``E[Y | features]`` as a ratio of expectations.
Classification: the class marginal ``P(Y = v | features)`` is evaluated
per candidate value and the argmax returned (exact most probable
explanation for a single target variable).

The key selling point reproduced here is that *no additional training*
is needed: the same RSPN learned for AQP answers regression and
classification for any feature/target combination.

Both heads run on the batched estimator surface: for every widen tier
the (conditions, transforms) requests of all still-unresolved rows --
and, for classification, all candidate classes -- are materialised and
answered through :meth:`~repro.core.rspn.RSPN.expectation_batch`, one
compiled bottom-up sweep per tier, instead of one scalar
``probability()``/``expectation()`` call per row and per class.
``predict_one`` stays the scalar reference path the property tests
compare the batch against.
"""

from __future__ import annotations

import numpy as np

from repro.core.leaves import IDENTITY
from repro.core.nodes import LeafNode, iter_nodes
from repro.core.ranges import Interval, Range


def _row_conditions(features, spans, row, widen=0.0):
    """Per-feature evidence ranges for one row (shared by both heads).

    Point evidence for ``widen == 0``; otherwise an interval of
    ``+- widen * span(feature)`` around the value.  Missing / NaN
    features contribute no condition (they are marginalised).
    """
    conditions = {}
    for name in features:
        value = row.get(name)
        if value is None or (isinstance(value, float) and np.isnan(value)):
            continue
        if widen > 0.0:
            half = widen * spans.get(name, 1.0)
            conditions[name] = Range(
                (Interval(value - half, value + half),)
            )
        else:
            conditions[name] = Range.point(value)
    return conditions


class RspnRegressor:
    """Regression head over a learned RSPN.

    ``target`` and ``features`` are qualified column names; feature
    values must already be encoded (as stored in the learning matrix).
    """

    def __init__(self, rspn, target, features=None, widen_fraction=0.05):
        self.rspn = rspn
        self.target = target
        if features is None:
            features = [c for c in rspn.column_names if c != target]
        self.features = list(features)
        self.widen_fraction = widen_fraction
        self._widen_tiers = (0.0, widen_fraction, 4 * widen_fraction)
        self._spans = _column_spans(rspn)
        self._transforms = {target: [IDENTITY]}
        self._fallback = _unconditional_mean(rspn, target)

    def _conditions(self, row, widen=0.0):
        return _row_conditions(self.features, self._spans, row, widen)

    def _requests(self, row, widen):
        """The (denominator, numerator) expectation requests of one row:
        ``P(C, Y not NULL)`` and ``E[Y * 1_C]``."""
        conditions = self._conditions(row, widen)
        not_null = dict(conditions)
        not_null[self.target] = Range.from_operator("IS NOT NULL", None)
        return (not_null, None), (conditions, self._transforms)

    def predict_one(self, row: dict) -> float:
        """E[target | features]; falls back to widened ranges, then the
        unconditional mean, when the evidence has zero mass.

        Only the IS-NOT-NULL denominator is evaluated: it lower-bounds
        the plain evidence probability, so a positive value already
        implies the evidence is satisfiable and the ratio well-defined.
        """
        for widen in self._widen_tiers:
            denominator_request, numerator_request = self._requests(row, widen)
            denominator = self.rspn.expectation(conditions=denominator_request[0])
            if denominator > 0.0:
                numerator = self.rspn.expectation(
                    conditions=numerator_request[0],
                    transforms=numerator_request[1],
                )
                return numerator / denominator
        return self._fallback

    def predict(self, rows) -> np.ndarray:
        """Batched :meth:`predict_one`: one compiled sweep per widen tier.

        All still-unresolved rows contribute their denominator and
        numerator requests to one
        :meth:`~repro.core.rspn.RSPN.expectation_batch` call; rows whose
        denominator stays zero fall through to the next tier and finally
        to the unconditional mean.
        """
        rows = list(rows)
        results = np.full(len(rows), self._fallback, dtype=float)
        pending = list(range(len(rows)))
        for widen in self._widen_tiers:
            if not pending:
                break
            requests = []
            for i in pending:
                denominator_request, numerator_request = self._requests(
                    rows[i], widen
                )
                requests.append(denominator_request)
                requests.append(numerator_request)
            values = self.rspn.expectation_batch(requests)
            unresolved = []
            for j, i in enumerate(pending):
                denominator = values[2 * j]
                if denominator > 0.0:
                    results[i] = values[2 * j + 1] / denominator
                else:
                    unresolved.append(i)
            pending = unresolved
        return results


class RspnClassifier:
    """Classification head: argmax over the target's marginal."""

    def __init__(self, rspn, target, features=None, widen_fraction=0.05):
        self.rspn = rspn
        self.target = target
        if features is None:
            features = [c for c in rspn.column_names if c != target]
        self.features = list(features)
        self.widen_fraction = widen_fraction
        self._widen_tiers = (0.0, widen_fraction, 4 * widen_fraction)
        self._classes = _domain_values(rspn, target)
        self._class_ranges = [Range.point(value) for value in self._classes]
        self._spans = _column_spans(rspn)

    def _conditions(self, row, widen=0.0):
        return _row_conditions(self.features, self._spans, row, widen)

    def _requests(self, row, widen):
        """Evidence plus per-class joint-probability requests of one row."""
        conditions = self._conditions(row, widen)
        requests = [(conditions, None)]
        existing = conditions.get(self.target)
        for class_range in self._class_ranges:
            joint = dict(conditions)
            joint[self.target] = (
                class_range if existing is None else existing.intersect(class_range)
            )
            requests.append((joint, None))
        return requests

    def _uniform(self):
        uniform = 1.0 / max(len(self._classes), 1)
        return {value: uniform for value in self._classes}

    def class_probabilities(self, row: dict) -> dict:
        """P(target = v | features) for every value v of the target."""
        return self.class_probabilities_batch([row])[0]

    def class_probabilities_batch(self, rows) -> list:
        """Batched :meth:`class_probabilities`: the evidence and every
        candidate class of every unresolved row share one compiled sweep
        per widen tier.  Rows with zero evidence at all tiers get the
        uniform distribution."""
        rows = list(rows)
        results = [None] * len(rows)
        pending = list(range(len(rows)))
        stride = 1 + len(self._classes)
        for widen in self._widen_tiers:
            if not pending:
                break
            requests = []
            for i in pending:
                requests.extend(self._requests(rows[i], widen))
            values = self.rspn.expectation_batch(requests)
            unresolved = []
            for j, i in enumerate(pending):
                evidence = values[j * stride]
                if evidence <= 0.0:
                    unresolved.append(i)
                    continue
                joints = values[j * stride + 1 : (j + 1) * stride]
                results[i] = {
                    value: joint / evidence
                    for value, joint in zip(self._classes, joints)
                }
            pending = unresolved
        for i in pending:
            results[i] = self._uniform()
        return results

    def predict_one(self, row: dict):
        probabilities = self.class_probabilities(row)
        return max(probabilities, key=probabilities.get)

    def predict(self, rows):
        return [
            max(probabilities, key=probabilities.get)
            for probabilities in self.class_probabilities_batch(rows)
        ]


def _column_spans(rspn):
    spans = {}
    for node in iter_nodes(rspn.root):
        if isinstance(node, LeafNode):
            name = rspn.column_names[node.scope_index]
            values = node.domain_values()
            if values.size:
                span = float(values.max() - values.min()) or 1.0
                spans[name] = max(spans.get(name, 0.0), span)
    return spans


def _domain_values(rspn, column):
    index = rspn.column_index[column]
    values = set()
    for node in iter_nodes(rspn.root):
        if isinstance(node, LeafNode) and node.scope_index == index:
            values.update(float(v) for v in node.domain_values())
    return sorted(values)


def _unconditional_mean(rspn, column):
    numerator = rspn.expectation(transforms={column: [IDENTITY]})
    denominator = rspn.probability(
        {column: Range.from_operator("IS NOT NULL", None)}
    )
    return numerator / denominator if denominator > 0 else 0.0
