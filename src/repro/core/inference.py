"""Bottom-up SPN inference for probabilities and expectations.

The evaluation primitive mirrors Section 3.2 / Figure 4 of the paper:
an *evaluation spec* assigns to some attributes a predicate
:class:`~repro.core.ranges.Range` and/or a value
:class:`~repro.core.leaves.Transform`.  Leaves return

    E[ h(X_i) * 1_{X_i in R_i} ]

product nodes multiply child results (independent scopes), sum nodes
take the weighted average.  With indicator-only specs this computes
``P(C)``; with transforms it computes the mixed expectations the
probabilistic query compiler needs, e.g. ``E[X * 1_C]`` or
``E[1/F' * 1_C * N_T]`` from Theorem 1.

Evaluation is backed by the compiled flat-array representation of
:mod:`repro.core.compiled`: :func:`evaluate_batch` lowers the tree once
(cached per root) and answers a whole batch of specs in one vectorised
bottom-up sweep, and the scalar :func:`evaluate` is a thin batch-of-one
wrapper over it.  The original recursive walk is kept as
:func:`evaluate_walk` -- it is the executable reference semantics the
property tests compare the compiled path against, and the building
block :mod:`repro.core.sampling` drives node-locally.
"""

from __future__ import annotations

from repro.core import compiled as compiled_mod
from repro.core.leaves import Transform, product_transform
from repro.core.nodes import LeafNode, ProductNode, SumNode
from repro.core.ranges import Range


class EvaluationSpec:
    """Per-attribute conditions and transforms, keyed by scope index."""

    def __init__(self):
        self.ranges: dict[int, Range] = {}
        self.transforms: dict[int, list[Transform]] = {}

    def condition(self, scope_index, rng: Range):
        existing = self.ranges.get(scope_index)
        self.ranges[scope_index] = rng if existing is None else existing.intersect(rng)
        return self

    def transform(self, scope_index, transform: Transform):
        self.transforms.setdefault(scope_index, []).append(transform)
        return self

    @property
    def touched(self):
        return set(self.ranges) | set(self.transforms)

    def leaf_arguments(self, scope_index):
        rng = self.ranges.get(scope_index)
        transforms = self.transforms.get(scope_index)
        transform = product_transform(transforms) if transforms else None
        return rng, transform

    def is_empty_selection(self):
        return any(rng.is_empty() for rng in self.ranges.values())

    def copy(self):
        duplicate = EvaluationSpec()
        duplicate.ranges = dict(self.ranges)
        duplicate.transforms = {k: list(v) for k, v in self.transforms.items()}
        return duplicate


def evaluate(node, spec: EvaluationSpec):
    """E[ prod_i h_i(X_i) * 1_{X_i in R_i} ] under the SPN distribution.

    Thin batch-of-one wrapper over :func:`evaluate_batch`.
    """
    return float(evaluate_batch(node, (spec,))[0])


def evaluate_batch(node, specs, executor=None):
    """Evaluate many specs in one compiled bottom-up sweep.

    Returns an array of ``len(specs)`` floats; the compiled form of the
    tree is built (and cached) on first use.  ``executor`` optionally
    shards the sweep across worker processes
    (:class:`repro.core.sharding.ShardedEvaluator`); results are
    bit-identical to the serial in-process sweep.
    """
    return compiled_mod.compiled_for(node).evaluate_batch(specs, executor=executor)


def evaluate_walk(node, spec: EvaluationSpec):
    """Reference implementation: the recursive per-query tree walk."""
    if spec.is_empty_selection():
        return 0.0
    touched = spec.touched
    return _evaluate(node, spec, touched)


def _evaluate(node, spec, touched):
    if isinstance(node, LeafNode):
        if node.scope_index not in touched:
            return 1.0
        rng, transform = spec.leaf_arguments(node.scope_index)
        return node.evaluate(rng, transform)
    if isinstance(node, ProductNode):
        result = 1.0
        for child in node.children:
            if touched.isdisjoint(child.scope):
                continue
            result *= _evaluate(child, spec, touched)
            if result == 0.0:
                return 0.0
        return result
    if isinstance(node, SumNode):
        weights = node.weights
        return float(
            sum(
                w * _evaluate(child, spec, touched)
                for w, child in zip(weights, node.children)
            )
        )
    raise TypeError(f"unknown node type {type(node)!r}")


def probability(node, ranges: dict):
    """P(all attributes fall in their ranges); ``ranges`` keyed by scope index."""
    spec = EvaluationSpec()
    for scope_index, rng in ranges.items():
        spec.condition(scope_index, rng)
    return evaluate(node, spec)
