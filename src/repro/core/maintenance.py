"""Bulk maintenance of RSPN ensembles under inserts (Section 6.1 / 5.2).

Two maintenance paths, mirroring the paper:

- :func:`absorb_inserts` -- the update experiment of Section 6.1: an
  ensemble learned on a share of the data absorbs the remaining tuples
  through Algorithm 1.  Join RSPNs are updated with the *delta rows of
  their full outer join* (new tuples joined with their new partners),
  sampled at the same rate that was used for learning ("the same sample
  rate has to be used for the updates").
- :func:`check_structure_drift` / :func:`refresh_ensemble` -- the
  background re-validation of Section 5.2: Algorithm 1 never changes the
  tree *structure*, so dependencies that appear after heavy inserts go
  unrepresented.  The paper's remedy is "checking the database
  cyclically for changed dependencies by calculating the pairwise RDC
  values ... on column splits of product nodes" and regenerating
  affected RSPNs, "as for traditional indexes ... in the background".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.nodes import ProductNode, SumNode
from repro.engine.join import (
    compute_tuple_factors,
    join_frame,
    join_learning_columns,
    materialize_full_outer_join,
    qualify,
    sample_full_outer_join,
)
from repro.engine.table import Database
from repro.stats.rdc import rdc_matrix


def delta_database(database, delta_masks):
    """A database view holding only the new rows (shared vocabularies)."""
    delta = Database(database.schema)
    for name in database.table_names():
        table = database.table(name)
        mask = delta_masks.get(name)
        if mask is None:
            mask = np.zeros(table.n_rows, dtype=bool)
        delta.add_table(table.select(np.asarray(mask, dtype=bool)))
    compute_tuple_factors(delta)
    return delta


def absorb_inserts(ensemble, database, delta_masks, seed=0):
    """Insert the masked rows of ``database`` into every RSPN.

    Returns ``(inserted_tuples, seconds)``.  Each RSPN receives a sample
    of its relation's delta rows at its learning sample fraction.
    """
    rng = np.random.default_rng(seed)
    delta = delta_database(database, delta_masks)
    inserted = 0
    start = time.perf_counter()
    for rspn in ensemble.rspns:
        fraction = rspn.sample_fraction
        if rspn.is_join_model:
            join = materialize_full_outer_join(delta, sorted(rspn.tables))
            columns = join_learning_columns(delta, list(join.plan.order))
            data = join_frame(join, columns)
        else:
            table = delta.table(next(iter(rspn.tables)))
            columns = [
                qualify(table.name, a.name) for a in table.schema.non_key_attributes
            ]
            data = (
                np.column_stack(
                    [table.columns[c.split(".", 1)[1]] for c in columns]
                )
                if columns
                else np.empty((table.n_rows, 0))
            )
        if data.shape[0] == 0:
            continue
        keep = rng.random(data.shape[0]) < fraction
        ops = [(dict(zip(columns, row)), +1) for row in data[keep]]
        if not ops:
            continue
        # One copy-on-write batch per RSPN: a bulk absorb costs one
        # generation bump / one compiled-form patch instead of one full
        # invalidation per tuple, and concurrent readers keep a
        # consistent snapshot throughout.  Final counts are
        # bit-identical to the per-tuple rspn.insert loop this replaces.
        rspn.apply_batch(ops)
        inserted += len(ops)
    return inserted, time.perf_counter() - start


# ----------------------------------------------------------------------
# Structure-drift detection (Section 5.2)
# ----------------------------------------------------------------------
@dataclass
class DriftReport:
    """Independence violations found in one RSPN's product splits."""

    rspn: object
    violations: list = field(default_factory=list)  # [(col_a, col_b, rdc)]

    @property
    def has_drift(self):
        return bool(self.violations)

    @property
    def max_rdc(self):
        return max((v for _a, _b, v in self.violations), default=0.0)

    def describe(self):
        tables = "/".join(sorted(self.rspn.tables))
        if not self.has_drift:
            return f"{tables}: structure still valid"
        worst = max(self.violations, key=lambda v: v[2])
        return (
            f"{tables}: {len(self.violations)} broken column splits, "
            f"worst {worst[0]} ~ {worst[1]} (rdc {worst[2]:.2f})"
        )


def _fresh_sample(database, rspn, sample, seed):
    """Current-data matrix aligned with ``rspn.column_names``."""
    if rspn.is_join_model:
        join = sample_full_outer_join(
            database, sorted(rspn.tables), sample, seed=seed
        )
        return join_frame(join, rspn.column_names)
    table = database.table(next(iter(rspn.tables)))
    rows = np.arange(table.n_rows)
    if table.n_rows > sample:
        rows = np.random.default_rng(seed).choice(
            table.n_rows, size=sample, replace=False
        )
    return np.column_stack(
        [table.columns[c.split(".", 1)[1]][rows] for c in rspn.column_names]
    )


def _product_split_violations(node, data, threshold, seed, min_rows):
    """Cross-child RDC violations of every product node, cluster-aware.

    The sample rows are routed down the tree exactly like inserted
    tuples (Algorithm 1), so each product node is checked on *its own
    cluster's* data -- two globally correlated columns that a sum node
    already separates into independent clusters are not flagged.
    """
    if data.shape[0] < min_rows:
        return []
    if isinstance(node, SumNode):
        labels = node.kmeans.predict(data[:, np.asarray(node.scope)]) \
            if node.kmeans is not None else np.zeros(data.shape[0], dtype=int)
        violations = []
        for i, child in enumerate(node.children):
            violations.extend(
                _product_split_violations(
                    child, data[labels == i], threshold, seed + i + 1, min_rows
                )
            )
        return violations
    if isinstance(node, ProductNode):
        scope = list(node.scope)
        matrix = rdc_matrix(data[:, np.asarray(scope)], seed=seed)
        position = {s: i for i, s in enumerate(scope)}
        violations = []
        for a_index, child_a in enumerate(node.children):
            for child_b in node.children[a_index + 1:]:
                for a in child_a.scope:
                    for b in child_b.scope:
                        value = float(matrix[position[a], position[b]])
                        if value >= threshold:
                            violations.append((a, b, value))
        for i, child in enumerate(node.children):
            # Derive a distinct seed per child (as the sum branch above
            # does): recursing with the parent's seed made sibling
            # subtrees draw identical RDC subsamples, so reports could
            # differ between runs that happened to order recursion
            # differently and correlated columns hiding behind an
            # unlucky shared draw were checked with zero diversity.
            violations.extend(
                _product_split_violations(
                    child, data, threshold, seed + i + 1, min_rows
                )
            )
        return violations
    return []


def check_structure_drift(ensemble, database, sample=2_000, threshold=None,
                          seed=0, min_rows=100):
    """Re-validate every RSPN's column splits against the current data.

    Returns one :class:`DriftReport` per RSPN.  ``threshold`` defaults to
    each RSPN's learning RDC threshold.  Violations name the qualified
    columns whose independence assumption no longer holds.
    """
    reports = []
    for index, rspn in enumerate(ensemble.rspns):
        data = _fresh_sample(database, rspn, sample, seed + index)
        limit = threshold if threshold is not None else rspn.config.rdc_threshold
        raw = _product_split_violations(
            rspn.root, data, limit, seed + index, min_rows
        )
        named = sorted(
            {
                (rspn.column_names[a], rspn.column_names[b], value)
                for a, b, value in raw
            },
            key=lambda v: -v[2],
        )
        reports.append(DriftReport(rspn, named))
    return reports


def rebuild_drifted(ensemble, database, config, sample=2_000, seed=0):
    """Shadow-learn replacements for drifted RSPNs without mutating.

    Runs :func:`check_structure_drift` and re-learns every flagged RSPN
    from the current data into *scratch* ensembles -- ``ensemble``
    itself is only read, so this (expensive) phase can run off any
    serving lock while readers keep answering from the live models.
    Returns ``(reports, replacements)`` with ``replacements`` a list of
    ``(index, fresh_rspn, seconds)`` ready for :func:`commit_refresh`.
    """
    from repro.core.ensemble import SPNEnsemble, _learn_join, _learn_single_table

    compute_tuple_factors(database)
    reports = check_structure_drift(ensemble, database, sample=sample, seed=seed)
    replacements = []
    for index, report in enumerate(reports):
        if not report.has_drift:
            continue
        start = time.perf_counter()
        scratch = SPNEnsemble(database)
        tables = sorted(report.rspn.tables)
        if len(tables) == 1:
            fresh = _learn_single_table(database, scratch, tables[0], config)
        else:
            fresh = _learn_join(database, scratch, tables, config)
        replacements.append((index, fresh, time.perf_counter() - start))
    return reports, replacements


def commit_refresh(ensemble, replacements):
    """Atomically swap shadow-learned replacements into ``ensemble``.

    The cheap O(replacements) commit phase of :func:`rebuild_drifted`:
    run it under the serving session's write lock.  Each swap goes
    through :meth:`~repro.core.ensemble.SPNEnsemble.replace`, which
    keeps the ensemble generation strictly monotonic and retires the
    outgoing model from the shared evaluator.  Untouched RSPNs keep
    their incremental state.  Returns the number of models swapped.
    """
    for index, fresh, seconds in replacements:
        ensemble.replace(index, fresh, seconds=seconds)
    return len(replacements)


def refresh_ensemble(ensemble, database, config, sample=2_000, seed=0):
    """Regenerate RSPNs whose structure has drifted (Section 5.2).

    Runs :func:`check_structure_drift` and re-learns every flagged RSPN
    from the current data with the given
    :class:`~repro.core.ensemble.EnsembleConfig`.  Returns
    ``(reports, rebuilt_count, seconds)``; untouched RSPNs keep their
    incremental state.  This is the convenience one-call form of
    :func:`rebuild_drifted` + :func:`commit_refresh`; the serving
    layer's drift monitor calls the two phases separately so only the
    pointer swap runs under its write lock.
    """
    start = time.perf_counter()
    reports, replacements = rebuild_drifted(
        ensemble, database, config, sample=sample, seed=seed
    )
    rebuilt = commit_refresh(ensemble, replacements)
    return reports, rebuilt, time.perf_counter() - start
