"""Algorithm 1 of the paper: incremental RSPN updates.

Inserted (deleted) tuples traverse the tree top-down.  Sum nodes route
the tuple to the nearest KMeans cluster and adjust that child's weight;
product nodes split the tuple by scope and recurse into every child;
leaves adjust their value distribution.  The tree *structure* never
changes -- exactly the behaviour (and limitation) the paper describes
and evaluates in Table 2.

Two appliers share that traversal:

- :func:`update_tuple` -- the original one-tuple path.  Every call
  invalidates the compiled form, so a stream of N inserts pays N full
  re-lowerings (and N whole-tree re-ships to shard workers).
- :class:`TreeBatch` -- the streaming-ingest path.  Tuples are *staged*
  against copy-on-write shadows of exactly the nodes they touch (the
  live tree is never mutated while readers sweep it), then *committed*
  as one O(touched) pointer swap followed by a single
  :func:`repro.core.compiled.refresh_weights` -- one generation bump
  per batch, compiled plan patched in place rather than rebuilt.
  Staging calls the **same** leaf ``update``/count arithmetic as the
  serial path in the same per-tuple order, so a committed batch is
  bit-identical (``==``) to applying its tuples one at a time.
"""

from __future__ import annotations

import numpy as np

from repro.core import compiled
from repro.core.leaves import BinnedLeaf, DiscreteLeaf
from repro.core.nodes import LeafNode, ProductNode, SumNode


def update_tuple(node, row, sign=1):
    """Insert (``sign=+1``) or delete (``sign=-1``) one tuple.

    ``row`` is the full attribute vector indexed by scope index (NaN for
    NULL); only the slice covered by each node's scope is inspected.
    Routing through sum nodes changes their mixture weights, so any
    compiled flat-array form of the tree is invalidated.
    """
    row = np.asarray(row, dtype=float)
    compiled.invalidate(node)
    _update(node, row, float(sign))


def _update(node, row, sign):
    if isinstance(node, LeafNode):
        node.update(row[node.scope_index], sign)
        return
    if isinstance(node, SumNode):
        nearest = node.route(row[np.asarray(node.scope)])
        node.adjust_count(nearest, sign)
        _update(node.children[nearest], row, sign)
        return
    if isinstance(node, ProductNode):
        for child in node.children:
            _update(child, row, sign)
        return
    raise TypeError(f"unknown node type {type(node)!r}")


class BatchDelta:
    """What one committed :class:`TreeBatch` touched.

    ``sum_rows`` / ``leaf_rows`` are canonical post-order rows (the
    vocabulary of :func:`repro.core.compiled.export_tree_delta`), so
    the shard transport can ship a patch covering exactly these nodes.
    ``generation`` is the root's generation after the commit.
    """

    __slots__ = ("sum_rows", "leaf_rows", "tuples", "generation")

    def __init__(self, sum_rows, leaf_rows, tuples, generation):
        self.sum_rows = sum_rows
        self.leaf_rows = leaf_rows
        self.tuples = tuples
        self.generation = generation


class TreeBatch:
    """Copy-on-write staging of many tuple updates against one tree.

    ``stage()`` may be called freely while other threads *read* the
    tree: every mutation lands in a private shadow (copied sum counts,
    copied leaf histograms), and routing decisions read those shadows
    so the staged stream sees its own earlier tuples exactly as the
    serial path would.  ``commit()`` publishes the shadows onto the
    live nodes -- plain attribute assignments, no array is mutated in
    place -- and performs the batch's single generation bump.  The
    caller (the serving session) runs ``commit()`` under its write
    lock; a reader that raced an assignment still computes from a
    consistent tree because every swapped array is fully formed before
    being attached.
    """

    def __init__(self, root):
        self.root = root
        self.staged = 0
        # id(node) -> (node, shadow counts) / (node, shadow leaf).
        self._sums: dict[int, tuple] = {}
        self._leaves: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def stage(self, row, sign=1):
        """Stage one tuple (see :func:`update_tuple` for ``row``)."""
        row = np.asarray(row, dtype=float)
        self._stage(self.root, row, float(sign))
        self.staged += 1

    def _shadow_counts(self, node):
        entry = self._sums.get(id(node))
        if entry is None:
            entry = (node, np.asarray(node.counts, dtype=float).copy())
            self._sums[id(node)] = entry
        return entry[1]

    def _shadow_leaf(self, node):
        entry = self._leaves.get(id(node))
        if entry is None:
            if isinstance(node, DiscreteLeaf):
                shadow = DiscreteLeaf(
                    node.scope_index, node.attribute,
                    np.asarray(node.values, dtype=float).copy(),
                    np.asarray(node.counts, dtype=float).copy(),
                    node.null_count,
                )
            elif isinstance(node, BinnedLeaf):
                shadow = BinnedLeaf(
                    node.scope_index, node.attribute,
                    node.edges,
                    np.asarray(node.counts, dtype=float).copy(),
                    np.asarray(node.sums, dtype=float).copy(),
                    node.distinct,
                    node.null_count,
                )
            else:
                raise TypeError(
                    f"cannot batch-update {type(node).__name__}: no "
                    "copy-on-write shadow for this leaf kind"
                )
            entry = (node, shadow)
            self._leaves[id(node)] = entry
        return entry[1]

    def _stage(self, node, row, sign):
        if isinstance(node, LeafNode):
            self._shadow_leaf(node).update(row[node.scope_index], sign)
            return
        if isinstance(node, SumNode):
            counts = self._shadow_counts(node)
            if node.kmeans is None:
                # Serial routing reads the live counts, which by now
                # include this batch's earlier tuples -- the shadow is
                # that state.
                nearest = int(np.argmax(counts))
            else:
                nearest = node.kmeans.nearest_center(
                    row[np.asarray(node.scope)]
                )
            counts[nearest] = max(0.0, counts[nearest] + sign)
            self._stage(node.children[nearest], row, sign)
            return
        if isinstance(node, ProductNode):
            for child in node.children:
                self._stage(child, row, sign)
            return
        raise TypeError(f"unknown node type {type(node)!r}")

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self):
        """Publish the shadows and bump the generation once.

        Returns the :class:`BatchDelta` of touched post-order rows
        (``None`` for an empty batch: no mutation, no bump).  The batch
        is spent afterwards; stage into a fresh one.
        """
        if not self.staged:
            return None
        index = compiled.row_index(self.root)
        sum_rows = []
        for node, counts in self._sums.values():
            node.counts = counts
            node._weights = None
            sum_rows.append(index[id(node)])
        leaf_rows = []
        for node, shadow in self._leaves.values():
            if isinstance(node, DiscreteLeaf):
                node.values = shadow.values
                node.counts = shadow.counts
            else:
                node.counts = shadow.counts
                node.sums = shadow.sums
            node.null_count = shadow.null_count
            leaf_rows.append(index[id(node)])
        generation = compiled.refresh_weights(self.root)
        delta = BatchDelta(
            sorted(sum_rows), sorted(leaf_rows), self.staged, generation
        )
        self.staged = 0
        self._sums = {}
        self._leaves = {}
        return delta
