"""Algorithm 1 of the paper: incremental RSPN updates.

Inserted (deleted) tuples traverse the tree top-down.  Sum nodes route
the tuple to the nearest KMeans cluster and adjust that child's weight;
product nodes split the tuple by scope and recurse into every child;
leaves adjust their value distribution.  The tree *structure* never
changes -- exactly the behaviour (and limitation) the paper describes
and evaluates in Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.core import compiled
from repro.core.nodes import LeafNode, ProductNode, SumNode


def update_tuple(node, row, sign=1):
    """Insert (``sign=+1``) or delete (``sign=-1``) one tuple.

    ``row`` is the full attribute vector indexed by scope index (NaN for
    NULL); only the slice covered by each node's scope is inspected.
    Routing through sum nodes changes their mixture weights, so any
    compiled flat-array form of the tree is invalidated.
    """
    row = np.asarray(row, dtype=float)
    compiled.invalidate(node)
    _update(node, row, float(sign))


def _update(node, row, sign):
    if isinstance(node, LeafNode):
        node.update(row[node.scope_index], sign)
        return
    if isinstance(node, SumNode):
        nearest = node.route(row[np.asarray(node.scope)])
        node.adjust_count(nearest, sign)
        _update(node.children[nearest], row, sign)
        return
    if isinstance(node, ProductNode):
        for child in node.children:
            _update(child, row, sign)
        return
    raise TypeError(f"unknown node type {type(node)!r}")
