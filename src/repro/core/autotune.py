"""Per-host crossover auto-tuning for the sharded evaluator.

PR 5's ``bench_sharding.py`` showed the serial/sharded crossover is a
*host* property, not a constant: it moves with core count, IPC cost
(spawn vs fork, shm vs pickle) and per-spec sweep speed (which the
kernel knob of :mod:`repro.core.kernels` itself changes).  A static
``min_shard_size=32`` picked on one machine over-shards a 1-CPU
container (every batch pays pool + transport overhead for zero
parallelism) and under-shards a 64-core box.

:func:`calibrate` replaces the constant with a one-shot micro
calibration at evaluator construction:

- **serial-only short-circuit**: with one usable CPU (or one worker)
  sharding can never win -- no pool is started, ``min_shard_size``
  becomes the :data:`SERIAL_ONLY` sentinel and every batch stays on
  the in-process sweep.  This is the correct answer on CI-style 1-CPU
  containers and costs nothing.
- **measured crossover** otherwise: the serial sweep cost per spec is
  measured on a small synthetic RSPN (same compiled code path as real
  models, active kernel included), the per-batch dispatch overhead is
  measured as one transport publish/release plus a worker-pool ping
  round trip, and the crossover follows from

      overhead ≈ serial_ns_per_spec * n * (1 - 1/workers)

  i.e. sharding wins once the serial time *saved* on ``n`` specs
  exceeds the fixed overhead.  The result is clamped to
  ``[16, 8192]`` so a noisy measurement can never disable sharding
  entirely or shard single-spec batches.

The measurement is persisted on the evaluator (``stats()["autotune"]``,
surfaced through serving ``/stats``) so operators can see *why* a host
serves serially.  Passing an explicit ``min_shard_size`` skips
calibration and records a ``static`` entry.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

# ``min_shard_size`` sentinel meaning "never shard": larger than any
# real batch, comparable like a normal threshold so ``should_shard``
# needs no special case.
SERIAL_ONLY = 1 << 30

# Calibration knobs: small enough to finish in tens of milliseconds,
# large enough that one sweep dominates Python call overhead.
_CAL_SPECS = 256
_CAL_REPEATS = 3
_CROSSOVER_FLOOR = 16
_CROSSOVER_CEIL = 8192


@dataclass
class AutotuneResult:
    """One host's crossover measurement (see ``stats()["autotune"]``)."""

    mode: str  # "serial-only" | "calibrated" | "static"
    usable_cpus: int
    n_workers: int
    min_shard_size: int
    serial_ns_per_spec: float | None = None
    dispatch_overhead_ns: float | None = None
    calibration_ms: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def static(min_shard_size: int, n_workers: int) -> AutotuneResult:
    """The record for an explicitly configured threshold."""
    return AutotuneResult(
        mode="static",
        usable_cpus=usable_cpus(),
        n_workers=n_workers,
        min_shard_size=min_shard_size,
    )


def calibrate(evaluator) -> AutotuneResult:
    """Measure this host's serial/sharded crossover for ``evaluator``.

    Called once from ``ShardedEvaluator.__init__`` when no explicit
    ``min_shard_size`` is given.  Never raises: a failed measurement
    degrades to the serial-only sentinel (sharding can still be forced
    with an explicit threshold).
    """
    started = time.perf_counter()
    cpus = usable_cpus()
    workers = evaluator.n_workers
    if cpus <= 1 or workers <= 1:
        # One CPU: worker processes only time-slice the same core, so
        # the parallel term is zero and overhead is pure loss.  Skip
        # the pool entirely.
        return AutotuneResult(
            mode="serial-only",
            usable_cpus=cpus,
            n_workers=workers,
            min_shard_size=SERIAL_ONLY,
            calibration_ms=(time.perf_counter() - started) * 1e3,
        )
    try:
        serial_ns = _serial_ns_per_spec()
        overhead_ns = _dispatch_overhead_ns(evaluator)
        effective = min(workers, cpus)
        saved_per_spec = serial_ns * (1.0 - 1.0 / effective)
        crossover = overhead_ns / max(saved_per_spec, 1e-9)
        min_shard = int(min(max(crossover, _CROSSOVER_FLOOR), _CROSSOVER_CEIL))
        return AutotuneResult(
            mode="calibrated",
            usable_cpus=cpus,
            n_workers=workers,
            min_shard_size=min_shard,
            serial_ns_per_spec=serial_ns,
            dispatch_overhead_ns=overhead_ns,
            calibration_ms=(time.perf_counter() - started) * 1e3,
        )
    except Exception:  # noqa: BLE001 - calibration must never break construction
        return AutotuneResult(
            mode="serial-only",
            usable_cpus=cpus,
            n_workers=workers,
            min_shard_size=SERIAL_ONLY,
            calibration_ms=(time.perf_counter() - started) * 1e3,
        )


def _worker_ping(payload):
    """Trivial pool task; the round trip prices task dispatch."""
    return payload


# ----------------------------------------------------------------------
# Micro-benchmark pieces
# ----------------------------------------------------------------------
_MICRO = None  # (compiled, specs), built once per process


def _micro_workload():
    """A small synthetic RSPN plus a representative spec batch.

    Shaped like a real tablet of a learned ensemble (sum over products
    over value histograms) so the measured ns/spec exercises the same
    fused sweep and leaf kernels as production sweeps.
    """
    global _MICRO
    if _MICRO is not None:
        return _MICRO
    from repro.core.compiled import CompiledRSPN
    from repro.core.inference import EvaluationSpec
    from repro.core.leaves import DiscreteLeaf
    from repro.core.nodes import ProductNode, SumNode
    from repro.core.ranges import Range

    rng = np.random.default_rng(2020)
    scope = (0, 1, 2)

    def leaf(scope_index):
        values = np.sort(rng.choice(200, size=64, replace=False)).astype(float)
        counts = rng.integers(1, 50, size=64).astype(float)
        return DiscreteLeaf(scope_index, f"a{scope_index}", values, counts, 1.0)

    branches = [
        ProductNode(scope, [leaf(i) for i in scope]) for _ in range(6)
    ]
    root = SumNode(scope, branches, rng.uniform(1.0, 10.0, len(branches)))
    compiled = CompiledRSPN(root)
    specs = []
    for _ in range(_CAL_SPECS):
        spec = EvaluationSpec()
        spec.condition(0, Range.from_operator("<=", float(rng.integers(20, 180))))
        spec.condition(1, Range.from_operator(">", float(rng.integers(0, 100))))
        specs.append(spec)
    _MICRO = (compiled, specs)
    return _MICRO


def _serial_ns_per_spec() -> float:
    """Best-of serial sweep cost per spec under the active kernel."""
    compiled, specs = _micro_workload()
    best = None
    for _ in range(_CAL_REPEATS):
        t0 = time.perf_counter_ns()
        compiled.evaluate_batch(specs)
        elapsed = time.perf_counter_ns() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best / len(specs)


def _dispatch_overhead_ns(evaluator) -> float:
    """Per-batch fixed cost: one spec publish + one pool round trip."""
    _, specs = _micro_workload()
    transport = evaluator._transport
    bounds = [(0, len(specs))]
    best_publish = None
    for _ in range(_CAL_REPEATS):
        t0 = time.perf_counter_ns()
        handle, _payloads = transport.publish_specs(specs, bounds)
        transport.release_specs(handle)
        elapsed = time.perf_counter_ns() - t0
        best_publish = elapsed if best_publish is None else min(best_publish, elapsed)

    with evaluator._lock:
        pool = evaluator._ensure_pool()
    # First ping pays worker start-up; price steady-state dispatch.
    pool.submit(_worker_ping, 0).result(timeout=evaluator.result_timeout_s)
    best_ping = None
    for _ in range(_CAL_REPEATS):
        t0 = time.perf_counter_ns()
        pool.submit(_worker_ping, 0).result(timeout=evaluator.result_timeout_s)
        elapsed = time.perf_counter_ns() - t0
        best_ping = elapsed if best_ping is None else min(best_ping, elapsed)
    # Every worker's slice pays a dispatch; the batch pays one publish.
    return float(best_publish + best_ping * evaluator.n_workers)
