"""Columnar struct-of-arrays packing of evaluation-spec batches.

The sharded evaluator ships one batch of
:class:`~repro.core.inference.EvaluationSpec` objects to its worker
processes per flush.  Pickling those object graphs (nested dicts of
frozen ``Range``/``Interval`` dataclasses) is the dominant per-flush
cost once the model tree itself is cached worker-side.  This module
lowers a spec batch into a handful of flat NumPy arrays plus offset
arrays -- a columnar struct-of-arrays form -- so the whole batch can be
published **once** into a shared-memory segment and every worker can
slice out just its query range by offsets, without copying or
deserializing the rest of the batch.

Layout (all arrays parallel, offsets follow the CSR convention)::

    cond_offsets : int64[n_specs + 1]   spec s owns conditions
                                        [cond_offsets[s], cond_offsets[s+1])
    cond_scope   : int64[n_conds]       scope index of each condition
    cond_null    : uint8[n_conds]       Range.include_null
    ivl_offsets  : int64[n_conds + 1]   condition c owns intervals
                                        [ivl_offsets[c], ivl_offsets[c+1])
    ivl_low/high : float64[n_intervals] interval bounds (±inf welcome)
    ivl_flags    : uint8[n_intervals]   bit 0 = low incl, bit 1 = high incl
    tr_offsets   : int64[n_specs + 1]   spec s owns transform entries
    tr_scope     : int64[n_entries]     scope index of each entry
    tr_label     : int64[n_entries]     index into the header label table

Transforms are encoded **by label id**: only the well-known singletons
of :mod:`repro.core.leaves` (IDENTITY, SQUARE, the tuple-factor family)
are shippable this way, and unpacking resolves labels back to the
worker's own singletons so identity-based dedup and grouping keep
working.  An ad-hoc transform raises :class:`SpecPackError`; the
transport layer treats that as "not packable" and falls back to pickle
(and, if the transform is a lambda pickle cannot carry either, to the
in-process sweep).

The module also provides the generic **segment blob codec** shared with
the tree transport of :mod:`repro.core.sharding`: a segment is laid out
as ``[8-byte header length][JSON header][16-byte-aligned payload]``
where the header records each array's dtype/shape/offset, so attaching
readers get zero-copy :func:`numpy.frombuffer` views straight into the
shared buffer.  The codec is deliberately meta-preserving: whatever the
writer puts in ``meta`` rides the header verbatim, which is how the
tree transport ships the parent's fused-plan signature
(``meta["plan_signature"]``, see :mod:`repro.core.compiled`) to workers
so they can prove their recompiled sweep plan matches the parent's
before answering queries.  Headers carry a layout version
(:data:`BLOB_LAYOUT_VERSION`); readers accept versionless blobs (the
pre-versioning layout is identical) but refuse blobs from a newer
layout instead of misreading them.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.core.inference import EvaluationSpec
from repro.core.leaves import transform_by_label, well_known_label
from repro.core.ranges import Range

_ALIGN = 16

# Bump when the byte layout (header framing, alignment, array table
# schema) changes incompatibly.  Version 1 is byte-identical to the
# original unversioned layout, so old readers still parse new blobs and
# new readers treat a missing version as 1.
BLOB_LAYOUT_VERSION = 1


class SpecPackError(TypeError):
    """A spec batch cannot be lowered to the columnar form (ad-hoc
    transform, or an object that is not an ``EvaluationSpec``)."""


# ----------------------------------------------------------------------
# Generic segment blob codec
# ----------------------------------------------------------------------
def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def blob_layout(meta: dict, arrays: dict):
    """Plan a blob: returns ``(header_bytes, payload_base, total_nbytes)``.

    ``meta`` must be JSON-serializable; the array table is appended to
    it.  Array offsets are relative to ``payload_base`` so the header's
    own length never feeds back into them.
    """
    table, offset = [], 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        table.append(
            {
                "name": name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    document = dict(meta)
    document["layout_version"] = BLOB_LAYOUT_VERSION
    document["arrays"] = table
    header = json.dumps(document, separators=(",", ":")).encode("utf-8")
    payload_base = _align(8 + len(header))
    return header, payload_base, payload_base + max(offset, 1)


def write_blob(buf, header: bytes, payload_base: int, arrays: dict):
    """Write a planned blob into a writable buffer (e.g. ``shm.buf``)."""
    buf[0:8] = struct.pack("<Q", len(header))
    buf[8:8 + len(header)] = header
    offset = 0
    for array in arrays.values():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        if array.nbytes:
            view = np.frombuffer(
                buf, dtype=array.dtype, count=array.size,
                offset=payload_base + offset,
            )
            view[:] = array.ravel()
        offset += array.nbytes


def blob_bytes(meta: dict, arrays: dict) -> bytearray:
    """The blob as an in-memory buffer (tests; no shared memory needed)."""
    header, payload_base, total = blob_layout(meta, arrays)
    buf = bytearray(total)
    write_blob(buf, header, payload_base, arrays)
    return buf


def read_blob(buf):
    """``(meta, {name: read-only array view})`` from a blob buffer.

    Views alias ``buf`` directly -- zero copies.  Callers attaching a
    shared-memory segment must drop every view (and anything derived
    from it) before closing the segment.

    Every frame bound is validated against ``len(buf)`` before any view
    is taken, so a truncated or garbled buffer raises
    :class:`SpecPackError` -- never a numpy shape error, and never a
    view silently reading past the payload.
    """
    available = len(buf)
    if available < 8:
        raise SpecPackError(
            f"blob truncated: {available} bytes cannot hold the header length"
        )
    (header_len,) = struct.unpack_from("<Q", buf, 0)
    if 8 + header_len > available:
        raise SpecPackError(
            f"blob truncated: header claims {header_len} bytes but only "
            f"{available - 8} follow"
        )
    try:
        meta = json.loads(bytes(buf[8:8 + header_len]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise SpecPackError(f"blob header is not valid JSON: {error}") from None
    if not isinstance(meta, dict) or not isinstance(meta.get("arrays"), list):
        raise SpecPackError("blob header carries no array table")
    version = int(meta.get("layout_version", 1))
    if version > BLOB_LAYOUT_VERSION:
        raise SpecPackError(
            f"blob layout version {version} is newer than this reader "
            f"(max {BLOB_LAYOUT_VERSION}); refusing to misread it"
        )
    payload_base = _align(8 + header_len)
    arrays = {}
    for entry in meta["arrays"]:
        try:
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(n) for n in entry["shape"])
            offset = int(entry["offset"])
        except (KeyError, TypeError, ValueError) as error:
            raise SpecPackError(
                f"malformed array table entry {entry!r}: {error}"
            ) from None
        count = int(np.prod(shape)) if shape else 1
        if count < 0 or offset < 0:
            raise SpecPackError(
                f"array {name!r} has a negative extent (offset {offset}, "
                f"count {count})"
            )
        end = payload_base + offset + count * dtype.itemsize
        if end > available:
            raise SpecPackError(
                f"array {name!r} extends to byte {end} but the blob holds "
                f"only {available}; buffer is truncated or corrupt"
            )
        view = np.frombuffer(
            buf, dtype=dtype, count=count, offset=payload_base + offset,
        ).reshape(shape)
        view.flags.writeable = False
        arrays[name] = view
    return meta, arrays


# ----------------------------------------------------------------------
# Tree-delta blobs
# ----------------------------------------------------------------------
# The streaming-ingest patch format: instead of republishing the whole
# tree segment after a batch of updates, the shard transport ships a
# blob holding only the touched rows' current state
# (:func:`repro.core.compiled.export_tree_delta`).  The codec is the
# same header+payload layout as every other segment; this section just
# names the kind and validates a received patch's internal consistency
# before a worker applies it to its cached twin.

TREE_DELTA_KIND = "rspn-tree-delta"

_TREE_DELTA_ARRAYS = (
    "sum_rows", "sum_offsets", "sum_counts",
    "leaf_rows", "leaf_kinds", "leaf_ns", "leaf_offsets", "leaf_data",
)


def validate_tree_delta(meta, arrays):
    """Check a decoded tree-delta blob's frame before applying it.

    Raises :class:`SpecPackError` on a wrong kind, missing arrays, or
    offset tables that disagree with their payloads -- the same
    refuse-to-misread contract :func:`read_blob` gives for the byte
    layout, one level up.  Returns ``(n sum rows, n leaf rows)``.
    """
    if meta.get("kind") != TREE_DELTA_KIND:
        raise SpecPackError(
            f"not a tree delta: kind {meta.get('kind')!r}"
        )
    missing = [name for name in _TREE_DELTA_ARRAYS if name not in arrays]
    if missing:
        raise SpecPackError(f"tree delta is missing arrays {missing}")
    n_sums = int(arrays["sum_rows"].shape[0])
    n_leaves = int(arrays["leaf_rows"].shape[0])
    sum_offsets = arrays["sum_offsets"]
    leaf_offsets = arrays["leaf_offsets"]
    if sum_offsets.shape[0] != n_sums + 1:
        raise SpecPackError(
            f"sum_offsets has {sum_offsets.shape[0]} entries for "
            f"{n_sums} sum rows"
        )
    if leaf_offsets.shape[0] != n_leaves + 1:
        raise SpecPackError(
            f"leaf_offsets has {leaf_offsets.shape[0]} entries for "
            f"{n_leaves} leaf rows"
        )
    for name in ("leaf_kinds", "leaf_ns"):
        if arrays[name].shape[0] != n_leaves:
            raise SpecPackError(
                f"{name} has {arrays[name].shape[0]} entries for "
                f"{n_leaves} leaf rows"
            )
    if n_sums and int(sum_offsets[-1]) != arrays["sum_counts"].shape[0]:
        raise SpecPackError(
            f"sum_offsets claims {int(sum_offsets[-1])} counts but "
            f"sum_counts holds {arrays['sum_counts'].shape[0]}"
        )
    if n_leaves and int(leaf_offsets[-1]) != arrays["leaf_data"].shape[0]:
        raise SpecPackError(
            f"leaf_offsets claims {int(leaf_offsets[-1])} floats but "
            f"leaf_data holds {arrays['leaf_data'].shape[0]}"
        )
    return n_sums, n_leaves


# ----------------------------------------------------------------------
# Spec batch <-> columnar arrays
# ----------------------------------------------------------------------
def pack_specs(specs):
    """Lower a spec batch to ``(meta, arrays)`` columnar form.

    Raises :class:`SpecPackError` when any transform is not one of the
    well-known singletons (the transport falls back to pickle then).
    """
    cond_offsets, cond_scope, cond_null = [0], [], []
    ivl_offsets, ivl_low, ivl_high, ivl_flags = [0], [], [], []
    tr_offsets, tr_scope, tr_label = [0], [], []
    label_ids: dict[str, int] = {}
    for spec in specs:
        ranges = getattr(spec, "ranges", None)
        transforms = getattr(spec, "transforms", None)
        if ranges is None or transforms is None:
            raise SpecPackError(
                f"cannot pack {type(spec).__name__!r}: not an EvaluationSpec"
            )
        for scope_index, rng in ranges.items():
            cond_scope.append(int(scope_index))
            cond_null.append(1 if rng.include_null else 0)
            lows, highs, flags = rng.columnar()
            ivl_low.extend(lows)
            ivl_high.extend(highs)
            ivl_flags.extend(flags)
            ivl_offsets.append(len(ivl_low))
        cond_offsets.append(len(cond_scope))
        for scope_index, transform_list in transforms.items():
            for transform in transform_list:
                label = well_known_label(transform)
                if label is None:
                    raise SpecPackError(
                        f"cannot pack ad-hoc transform {transform!r}: only "
                        "the well-known transform singletons ship by label"
                    )
                tr_scope.append(int(scope_index))
                tr_label.append(label_ids.setdefault(label, len(label_ids)))
        tr_offsets.append(len(tr_scope))
    meta = {
        "kind": "specpack",
        "n_specs": len(cond_offsets) - 1,
        "labels": sorted(label_ids, key=label_ids.get),
    }
    arrays = {
        "cond_offsets": np.asarray(cond_offsets, dtype=np.int64),
        "cond_scope": np.asarray(cond_scope, dtype=np.int64),
        "cond_null": np.asarray(cond_null, dtype=np.uint8),
        "ivl_offsets": np.asarray(ivl_offsets, dtype=np.int64),
        "ivl_low": np.asarray(ivl_low, dtype=np.float64),
        "ivl_high": np.asarray(ivl_high, dtype=np.float64),
        "ivl_flags": np.asarray(ivl_flags, dtype=np.uint8),
        "tr_offsets": np.asarray(tr_offsets, dtype=np.int64),
        "tr_scope": np.asarray(tr_scope, dtype=np.int64),
        "tr_label": np.asarray(tr_label, dtype=np.int64),
    }
    return meta, arrays


def unpack_specs(meta, arrays, lo=0, hi=None):
    """Rebuild ``EvaluationSpec`` objects for queries ``[lo, hi)``.

    The inverse of :func:`pack_specs`: ranges compare equal to the
    originals and transforms resolve to the process-local well-known
    singletons (``is``-identical within one process).  Only the slice's
    rows of the offset arrays are touched -- unpacking a slice costs
    O(slice), not O(batch).  The returned specs hold no references into
    ``arrays``, so a backing shared-memory segment can be closed as soon
    as unpacking returns.
    """
    n_specs = int(meta["n_specs"])
    hi = n_specs if hi is None else hi
    if not 0 <= lo <= hi <= n_specs:
        raise IndexError(f"slice [{lo}, {hi}) outside batch of {n_specs}")
    labels = [transform_by_label(label) for label in meta["labels"]]
    cond_offsets = arrays["cond_offsets"]
    cond_scope = arrays["cond_scope"]
    cond_null = arrays["cond_null"]
    ivl_offsets = arrays["ivl_offsets"]
    ivl_low = arrays["ivl_low"]
    ivl_high = arrays["ivl_high"]
    ivl_flags = arrays["ivl_flags"]
    tr_offsets = arrays["tr_offsets"]
    tr_scope = arrays["tr_scope"]
    tr_label = arrays["tr_label"]
    specs = []
    for s in range(lo, hi):
        spec = EvaluationSpec()
        for c in range(int(cond_offsets[s]), int(cond_offsets[s + 1])):
            a, b = int(ivl_offsets[c]), int(ivl_offsets[c + 1])
            spec.ranges[int(cond_scope[c])] = Range.from_columnar(
                ivl_low[a:b], ivl_high[a:b], ivl_flags[a:b], cond_null[c]
            )
        for t in range(int(tr_offsets[s]), int(tr_offsets[s + 1])):
            spec.transforms.setdefault(int(tr_scope[t]), []).append(
                labels[int(tr_label[t])]
            )
        specs.append(spec)
    return specs


def unpack_slice(buf, lo=0, hi=None):
    """One-call convenience: :func:`read_blob` + :func:`unpack_specs`.

    Safe to call against a shared-memory buffer that will be closed
    right after: no views survive the return.
    """
    meta, arrays = read_blob(buf)
    return unpack_specs(meta, arrays, lo, hi)
