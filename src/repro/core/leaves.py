"""Histogram leaves of RSPNs (Section 3.2 of the paper).

Two leaf flavours, both with a dedicated NULL bucket:

- :class:`DiscreteLeaf` stores *each individual value and its frequency*
  -- the representation the paper chooses over SPFlow's piecewise-linear
  approximation so that the model represents the data "as accurate as
  possible".  Used for categorical columns and for continuous columns
  with few distinct values.
- :class:`BinnedLeaf` falls back to binning "if the number of distinct
  values exceeds a given limit".  Equi-depth bin edges are chosen at
  build time; per-bin counts, value sums and distinct counts support
  range probabilities (uniform within a bin), expectations (exact bin
  means) and point predicates.

Leaves expose a single evaluation primitive::

    E[ h(X) * 1_{X in range} ]

where ``h`` is an optional transform (identity for AVG/SUM numerators,
``x -> 1/max(x, 1)`` for the tuple-factor normalisation of Theorem 1,
``x -> x**2`` for confidence intervals).  NULL contributes ``null_value``
(0 for SQL aggregates, 1 for tuple-factor inversion) when the range
includes NULL.  Both leaf types support the incremental insert/delete of
Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.nodes import LeafNode
from repro.core.ranges import Range


class Transform:
    """A per-attribute transform with an explicit NULL contribution."""

    def __init__(self, fn, null_value, label):
        self.fn = fn
        self.null_value = null_value
        self.label = label

    def __repr__(self):
        return f"Transform({self.label})"

    def __reduce_ex__(self, protocol):
        # The module-level transforms below pickle *by name*, so a spec
        # shipped to a sharding worker resolves to the worker's own
        # singletons and identity-based dedup/grouping keeps working.
        # Ad-hoc transforms fall through to the default behaviour:
        # ``copy.deepcopy`` still works (functions copy atomically), and
        # ``pickle`` fails on the lambda -- the sharded evaluator treats
        # that as "not shippable" and falls back to the in-process sweep.
        if _WELL_KNOWN.get(self.label) is self:
            return (_well_known_transform, (self.label,))
        return super().__reduce_ex__(protocol)


IDENTITY = Transform(lambda v: v, 0.0, "x")
SQUARE = Transform(lambda v: v * v, 0.0, "x^2")
INVERSE_FACTOR = Transform(lambda v: 1.0 / np.maximum(v, 1.0), 1.0, "1/max(x,1)")
INVERSE_FACTOR_SQUARE = Transform(
    lambda v: 1.0 / np.maximum(v, 1.0) ** 2, 1.0, "1/max(x,1)^2"
)
# Outer-join variant of tuple factors: "factors F with value zero have to
# be handled as value one to support the semantics of the corresponding
# outer join" (Section 4.2).
FACTOR_OUTER = Transform(lambda v: np.maximum(v, 1.0), 1.0, "max(x,1)")
FACTOR_OUTER_SQUARE = Transform(lambda v: np.maximum(v, 1.0) ** 2, 1.0, "max(x,1)^2")

# label -> singleton, the pickle-by-name registry for sharded evaluation.
_WELL_KNOWN = {
    t.label: t
    for t in (
        IDENTITY, SQUARE,
        INVERSE_FACTOR, INVERSE_FACTOR_SQUARE,
        FACTOR_OUTER, FACTOR_OUTER_SQUARE,
    )
}


def _well_known_transform(label):
    """Unpickle hook resolving a well-known transform by its label."""
    return _WELL_KNOWN[label]


def well_known_label(transform) -> str | None:
    """The label of a well-known transform singleton, else ``None``.

    This is the encodability test of the shared-memory spec transport
    (:mod:`repro.core.specpack`): a transform is shippable as a plain
    label id exactly when it *is* the registered singleton -- an ad-hoc
    transform that merely reuses a well-known label must not silently
    resolve to different semantics on the worker side.
    """
    label = getattr(transform, "label", None)
    if label is not None and _WELL_KNOWN.get(label) is transform:
        return label
    return None


def transform_by_label(label: str):
    """The well-known transform singleton for ``label`` (KeyError if not
    registered); inverse of :func:`well_known_label`, used when unpacking
    columnar specs so worker-side identity-based dedup keeps working."""
    return _WELL_KNOWN[label]


def transform_dedup_key(transform):
    """A stable dedup key for one transform.

    The well-known label when the transform *is* the registered
    singleton, the object id otherwise.  Labels are ``str`` and ids are
    ``int``, so the two key spaces cannot collide -- and a label thief
    (an ad-hoc transform reusing a well-known label) fails the
    identity check in :func:`well_known_label` and stays id-keyed,
    never sharing a dedup slot with the singleton's semantics.
    """
    return well_known_label(transform) or id(transform)


def product_transform(transforms):
    """Compose several transforms on the same attribute multiplicatively."""
    transforms = list(transforms)
    if len(transforms) == 1:
        return transforms[0]
    null_value = 1.0
    for t in transforms:
        null_value *= t.null_value
    label = "*".join(t.label for t in transforms)

    def fn(values, _ts=tuple(transforms)):
        out = np.ones_like(values, dtype=float)
        for t in _ts:
            out = out * t.fn(values)
        return out

    return Transform(fn, null_value, label)


class DiscreteLeaf(LeafNode):
    """Exact value-frequency histogram with a NULL bucket."""

    kind = "discrete"

    def __init__(self, scope_index, attribute, values, counts, null_count):
        super().__init__(scope_index, attribute)
        self.values = np.asarray(values, dtype=float)
        self.counts = np.asarray(counts, dtype=float)
        self.null_count = float(null_count)

    @classmethod
    def fit(cls, scope_index, attribute, column):
        column = np.asarray(column, dtype=float)
        null_count = float(np.isnan(column).sum())
        finite = column[~np.isnan(column)]
        values, counts = np.unique(finite, return_counts=True)
        return cls(scope_index, attribute, values, counts.astype(float), null_count)

    @property
    def total(self):
        return float(self.counts.sum() + self.null_count)

    def _in_range_mask(self, rng: Range):
        mask = np.zeros(self.values.shape[0], dtype=bool)
        for interval in rng.intervals:
            with np.errstate(invalid="ignore"):
                part = (
                    (self.values > interval.low)
                    if not interval.low_inclusive
                    else (self.values >= interval.low)
                )
                part &= (
                    (self.values < interval.high)
                    if not interval.high_inclusive
                    else (self.values <= interval.high)
                )
            mask |= part
        return mask

    def evaluate(self, rng: Range | None, transform: Transform | None):
        """E[h(X) * indicator(range)] under this leaf's distribution."""
        total = self.total
        if total == 0:
            return 0.0
        if rng is None:
            rng = Range.everything(include_null=True)
        mask = self._in_range_mask(rng)
        if transform is None:
            mass = float(self.counts[mask].sum())
            if rng.include_null:
                mass += self.null_count
            return mass / total
        weighted = float((transform.fn(self.values[mask]) * self.counts[mask]).sum())
        if rng.include_null:
            weighted += self.null_count * transform.null_value
        return weighted / total

    def evaluate_batch(self, ranges, transforms, prepared=None):
        """Vectorised :meth:`evaluate` over parallel range/transform lists.

        ``ranges[k]`` / ``transforms[k]`` follow the scalar convention
        (``None`` meaning unconstrained / indicator-only).  Queries are
        grouped per transform, the weighted histogram is turned into one
        prefix-sum, and every interval of every range becomes two
        ``np.searchsorted`` lookups -- ``O(log n)`` per interval instead
        of an ``O(n)`` mask.  Agrees with the scalar path to ~1e-12
        relative (prefix-sum rounding), well inside the 1e-9 contract.

        ``prepared`` is an optional :class:`PreparedBatch` for the same
        ``(ranges, transforms)``: the compiled sweep computes the
        transform grouping and interval flattening once per *scope* and
        shares it across every leaf of that scope.  Under the ``numba``
        kernel the search + scatter runs as one jitted loop
        (:func:`repro.core.kernels.discrete_masses`), bit-identical to
        the NumPy path because binary search is index-exact and
        ``np.add.at`` is sequential.
        """
        out = np.zeros(len(ranges), dtype=float)
        total = self.total
        if total == 0 or not len(ranges):
            return out
        if prepared is None:
            prepared = PreparedBatch(ranges, transforms)
        use_numba = kernels.resolve() == "numba"
        for g, (group, transform) in enumerate(prepared.groups):
            if transform is None:
                weights = self.counts
                null_mass = self.null_count
            else:
                weights = transform.fn(self.values) * self.counts
                null_mass = self.null_count * transform.null_value
            cum = np.concatenate(([0.0], np.cumsum(weights)))
            lows, highs, low_inc, high_inc, k_idx, null_ks = (
                prepared.group_intervals(g)
            )
            if k_idx.size:
                if use_numba:
                    kernels.pick(
                        kernels.discrete_masses, kernels.discrete_masses_py
                    )(self.values, cum, lows, highs, low_inc, high_inc,
                      k_idx, out)
                else:
                    left_a = np.searchsorted(self.values, lows, side="left")
                    left_b = np.searchsorted(self.values, lows, side="right")
                    right_a = np.searchsorted(self.values, highs, side="left")
                    right_b = np.searchsorted(self.values, highs, side="right")
                    left = np.where(low_inc, left_a, left_b)
                    # Clamp the index, not the mass: an empty interval
                    # (only possible when hand-constructed) must select
                    # exactly zero values, while masses themselves may be
                    # legitimately negative under sign-changing
                    # transforms.
                    right = np.maximum(np.where(high_inc, right_b, right_a), left)
                    np.add.at(out, k_idx, cum[right] - cum[left])
            if null_ks.size:
                out[null_ks] += null_mass
        return out / total

    def update(self, value, sign):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            self.null_count = max(0.0, self.null_count + sign)
            return
        value = float(value)
        pos = int(np.searchsorted(self.values, value))
        if pos < self.values.shape[0] and self.values[pos] == value:
            self.counts[pos] = max(0.0, self.counts[pos] + sign)
        elif sign > 0:
            self.values = np.insert(self.values, pos, value)
            self.counts = np.insert(self.counts, pos, float(sign))

    def domain_values(self):
        return self.values

    def mean(self):
        total = float(self.counts.sum())
        if total == 0:
            return 0.0
        return float((self.values * self.counts).sum() / total)


class BinnedLeaf(LeafNode):
    """Equi-depth binned histogram for high-cardinality continuous columns."""

    kind = "binned"

    def __init__(self, scope_index, attribute, edges, counts, sums, distinct, null_count):
        super().__init__(scope_index, attribute)
        self.edges = np.asarray(edges, dtype=float)
        self.counts = np.asarray(counts, dtype=float)
        self.sums = np.asarray(sums, dtype=float)
        self.distinct = np.asarray(distinct, dtype=float)
        self.null_count = float(null_count)

    @classmethod
    def fit(cls, scope_index, attribute, column, n_bins=128):
        column = np.asarray(column, dtype=float)
        null_count = float(np.isnan(column).sum())
        finite = column[~np.isnan(column)]
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)
        edges = np.unique(np.quantile(finite, quantiles))
        if edges.shape[0] < 2:
            edges = np.array([finite.min(), finite.min() + 1.0])
        bins = np.clip(np.searchsorted(edges, finite, side="right") - 1, 0, edges.shape[0] - 2)
        n = edges.shape[0] - 1
        counts = np.bincount(bins, minlength=n).astype(float)
        sums = np.bincount(bins, weights=finite, minlength=n)
        distinct = np.ones(n)
        for b in range(n):
            members = finite[bins == b]
            distinct[b] = max(1, np.unique(members).shape[0])
        return cls(scope_index, attribute, edges, counts, sums, distinct, null_count)

    @property
    def total(self):
        return float(self.counts.sum() + self.null_count)

    def _bin_means(self):
        with np.errstate(invalid="ignore", divide="ignore"):
            means = self.sums / self.counts
        centers = (self.edges[:-1] + self.edges[1:]) / 2.0
        return np.where(self.counts > 0, means, centers)

    def _coverage(self, interval):
        """Fraction of each bin's mass covered by ``interval``.

        Mass is uniform within a bin; point intervals select an estimated
        ``1/distinct`` share of the containing bin, the standard distinct
        count correction.
        """
        low, high = self.edges[:-1], self.edges[1:]
        if interval.is_point():
            value = interval.low
            inside = (value >= low) & (
                (value < high) | ((value <= high) & (high == self.edges[-1]))
            )
            return np.where(inside, 1.0 / self.distinct, 0.0)
        left = np.clip(interval.low, low, high)
        right = np.clip(interval.high, low, high)
        width = high - low
        with np.errstate(invalid="ignore", divide="ignore"):
            fraction = np.where(width > 0, (right - left) / width, 0.0)
        # Degenerate zero-width bins (a single repeated value) are fully
        # covered when the value lies inside the interval.
        degenerate = (width == 0) & (interval.low <= low) & (high <= interval.high)
        return np.where(degenerate, 1.0, np.clip(fraction, 0.0, 1.0))

    def evaluate(self, rng: Range | None, transform: Transform | None):
        total = self.total
        if total == 0:
            return 0.0
        if rng is None:
            rng = Range.everything(include_null=True)
        coverage = np.zeros(self.counts.shape[0])
        for interval in rng.intervals:
            coverage = np.minimum(coverage + self._coverage(interval), 1.0)
        covered_counts = self.counts * coverage
        if transform is None:
            mass = float(covered_counts.sum())
            if rng.include_null:
                mass += self.null_count
            return mass / total
        weighted = float((transform.fn(self._bin_means()) * covered_counts).sum())
        if rng.include_null:
            weighted += self.null_count * transform.null_value
        return weighted / total

    def evaluate_batch(self, ranges, transforms, prepared=None):
        """Vectorised :meth:`evaluate` over parallel range/transform lists.

        All intervals of all ranges are broadcast against the bin edges
        at once, producing a ``(n_queries, n_bins)`` coverage matrix
        that is then reduced per query.

        The per-query reduction is **row-wise with a pinned order**
        (:func:`repro.core.kernels.ordered_rowsum`), NOT
        ``coverage[group] @ weights`` and not ``sum(axis=1)``: the BLAS
        matvec picks different accumulation kernels depending on the
        number of rows, and ``sum``'s accumulation order is a SIMD
        implementation detail -- either way one query's bits could
        change with its batchmates or with the executing kernel.  The
        explicit halving fold reduces each row independently and
        identically everywhere, keeping every query bit-identical
        across batch compositions (the invariance chunked evaluation
        and process-sharding rely on) *and* across the numpy/numba
        kernels.

        ``prepared`` shares the interval flattening across the leaves
        of one scope, exactly as in :meth:`DiscreteLeaf.evaluate_batch`.
        """
        out = np.zeros(len(ranges), dtype=float)
        total = self.total
        if total == 0 or not len(ranges):
            return out
        if prepared is None:
            prepared = PreparedBatch(ranges, transforms)
        use_numba = kernels.resolve() == "numba"
        coverage, null_flags = self._coverage_batch(
            ranges, prepared=prepared, use_numba=use_numba
        )
        for group, transform in prepared.groups:
            if transform is None:
                weights = self.counts
                null_mass = self.null_count
            else:
                weights = transform.fn(self._bin_means()) * self.counts
                null_mass = self.null_count * transform.null_value
            if use_numba:
                values = np.empty(group.shape[0], dtype=float)
                kernels.pick(kernels.weighted_fold, kernels.weighted_fold_py)(
                    coverage, group, np.ascontiguousarray(weights, dtype=float),
                    values,
                )
                out[group] = values
            else:
                out[group] = kernels.ordered_rowsum(coverage[group] * weights)
            out[group[null_flags[group]]] += null_mass
        return out / total

    def _coverage_batch(self, ranges, prepared=None, use_numba=False):
        """``(n_queries, n_bins)`` coverage fractions plus NULL flags."""
        low_edges, high_edges = self.edges[:-1], self.edges[1:]
        if prepared is not None:
            lows, highs, low_inc, high_inc, k_idx, null_ks = (
                prepared.all_intervals()
            )
        else:
            lows, highs, low_inc, high_inc, k_idx, null_ks = _interval_arrays(
                ranges, np.arange(len(ranges))
            )
        coverage = np.zeros((len(ranges), self.counts.shape[0]), dtype=float)
        if k_idx.size:
            if use_numba:
                kernels.pick(
                    kernels.binned_coverage, kernels.binned_coverage_py
                )(
                    lows, highs, low_inc, high_inc, k_idx,
                    np.ascontiguousarray(low_edges),
                    np.ascontiguousarray(high_edges),
                    float(self.edges[-1]), self.distinct, coverage,
                )
            else:
                lows_m = lows[:, None]
                highs_m = highs[:, None]
                left = np.clip(lows_m, low_edges, high_edges)
                right = np.clip(highs_m, low_edges, high_edges)
                width = (high_edges - low_edges)[None, :]
                with np.errstate(invalid="ignore", divide="ignore"):
                    fraction = np.where(
                        width > 0, (right - left) / np.where(width > 0, width, 1.0), 0.0
                    )
                degenerate = (width == 0) & (lows_m <= low_edges) & (high_edges <= highs_m)
                span = np.where(degenerate, 1.0, np.clip(fraction, 0.0, 1.0))
                is_point = (lows == highs) & low_inc & high_inc
                if is_point.any():
                    inside = (lows_m >= low_edges) & (
                        (lows_m < high_edges)
                        | ((lows_m <= high_edges) & (high_edges == self.edges[-1]))
                    )
                    point = np.where(inside, 1.0 / self.distinct[None, :], 0.0)
                    span = np.where(is_point[:, None], point, span)
                np.add.at(coverage, k_idx, span)
                np.minimum(coverage, 1.0, out=coverage)
        null_flags = np.zeros(len(ranges), dtype=bool)
        null_flags[null_ks] = True
        return coverage, null_flags

    def update(self, value, sign):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            self.null_count = max(0.0, self.null_count + sign)
            return
        value = float(value)
        b = int(np.clip(np.searchsorted(self.edges, value, side="right") - 1, 0, self.counts.shape[0] - 1))
        self.counts[b] = max(0.0, self.counts[b] + sign)
        self.sums[b] += sign * value

    def domain_values(self):
        return self._bin_means()

    def mean(self):
        total = float(self.counts.sum())
        if total == 0:
            return 0.0
        return float(self.sums.sum() / total)


class PreparedBatch:
    """Shared precomputation for one ``(ranges, transforms)`` pair.

    The compiled sweep deduplicates specs once per *scope* but every
    leaf row of that scope evaluates the same distinct pairs -- without
    sharing, each row would redo the transform grouping and the
    interval flattening (the dominant Python-side cost of a sweep).
    Group and interval arrays are built lazily: the discrete leaf wants
    per-group intervals, the binned leaf wants the full flattening.
    """

    __slots__ = ("ranges", "groups", "_group_intervals", "_all_intervals")

    def __init__(self, ranges, transforms):
        self.ranges = ranges
        self.groups = list(_transform_groups(transforms))
        self._group_intervals = [None] * len(self.groups)
        self._all_intervals = None

    def group_intervals(self, g):
        """Interval arrays for transform group ``g`` (cached)."""
        cached = self._group_intervals[g]
        if cached is None:
            cached = _interval_arrays(self.ranges, self.groups[g][0])
            self._group_intervals[g] = cached
        return cached

    def all_intervals(self):
        """Interval arrays over the whole batch (cached)."""
        if self._all_intervals is None:
            self._all_intervals = _interval_arrays(
                self.ranges, np.arange(len(self.ranges))
            )
        return self._all_intervals


def _transform_groups(transforms):
    """Group query indices by transform identity (``None`` = indicator).

    Batched leaf kernels weight the histogram once per distinct
    transform and reuse it for every query in the group.
    """
    by_key: dict = {}
    for k, transform in enumerate(transforms):
        key = id(transform) if transform is not None else None
        entry = by_key.get(key)
        if entry is None:
            by_key[key] = entry = (transform, [])
        entry[1].append(k)
    for transform, ks in by_key.values():
        yield np.asarray(ks, dtype=np.intp), transform


def _interval_arrays(ranges, group):
    """Flatten the intervals of ``ranges[k] for k in group`` into parallel
    arrays ``(lows, highs, low_inc, high_inc, query_index)`` plus the
    query indices whose range includes NULL.  ``None`` ranges follow the
    scalar convention: everything, NULL included."""
    lows, highs, low_inc, high_inc, k_idx, null_ks = [], [], [], [], [], []
    for k in group:
        rng = ranges[k]
        if rng is None:
            rng = Range.everything(include_null=True)
        if rng.include_null:
            null_ks.append(k)
        for interval in rng.intervals:
            k_idx.append(k)
            lows.append(interval.low)
            highs.append(interval.high)
            low_inc.append(interval.low_inclusive)
            high_inc.append(interval.high_inclusive)
    return (
        np.asarray(lows, dtype=float),
        np.asarray(highs, dtype=float),
        np.asarray(low_inc, dtype=bool),
        np.asarray(high_inc, dtype=bool),
        np.asarray(k_idx, dtype=np.intp),
        np.asarray(null_ks, dtype=np.intp),
    )


def build_leaf(scope_index, attribute, column, discrete, max_distinct=512, n_bins=128):
    """Choose and fit the right leaf for a column.

    Categorical columns always use exact histograms.  Numeric columns use
    exact value-frequency histograms while the number of distinct values
    stays below ``max_distinct`` (the paper's "given limit"), otherwise
    equi-depth bins.
    """
    column = np.asarray(column, dtype=float)
    finite = column[~np.isnan(column)]
    if discrete or np.unique(finite).shape[0] <= max_distinct:
        return DiscreteLeaf.fit(scope_index, attribute, column)
    return BinnedLeaf.fit(scope_index, attribute, column, n_bins=n_bins)
