"""RSPN ensembles: base ensemble creation and budget-constrained
optimization (Sections 3.3 and 5.3 of the paper).

Base ensemble procedure: for every FK relationship, learn one RSPN over
the *full outer join* of the two tables when any attribute pair across
the tables has an RDC value above the threshold; otherwise keep
single-table RSPNs.  Tables not covered by any join RSPN get a
single-table RSPN so every query can be compiled.

Ensemble optimization: given a budget factor ``B`` (extra training cost
relative to the base ensemble), additional RSPNs spanning more than two
tables are selected greedily by the highest mean pairwise-maximum RDC
value and the lowest relative creation cost ``cols(r)^2 * rows(r)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine import join as join_ops
from repro.engine.join import (
    full_outer_join_size,
    join_frame,
    join_learning_columns,
    sample_full_outer_join,
)
from repro.core.rspn import RSPN, RspnConfig
from repro.stats.rdc import rdc_matrix


@dataclass
class EnsembleConfig:
    """Hyperparameters of ensemble creation (paper defaults)."""

    rdc_threshold: float = 0.3       # table-correlation threshold (paper: 0.3)
    budget_factor: float = 0.0       # B of Section 5.3 (paper default: 0.5)
    sample_size: int = 100_000       # samples per RSPN
    correlation_sample: int = 2_000  # rows used for pairwise RDC tests
    max_join_tables: int = 4         # candidate size cap for optimization
    single_tables_only: bool = False  # the paper's "cheap strategy"
    rspn: RspnConfig = field(default_factory=RspnConfig)
    seed: int = 0


class SPNEnsemble:
    """A set of RSPNs plus the correlation metadata used at runtime.

    ``attribute_rdc`` maps ``frozenset({qualified_a, qualified_b})`` to
    the RDC value measured during ensemble creation; the greedy
    execution strategy of Section 4.1 reuses these values, which is why
    the paper calls the strategy "very compute-efficient".
    """

    def __init__(self, database):
        self.database = database
        self.rspns: list[RSPN] = []
        self.attribute_rdc: dict[frozenset, float] = {}
        self.table_dependency: dict[frozenset, float] = {}
        self.training_seconds: float = 0.0
        self.rspn_training_seconds: list[float] = []
        self._structure_generation = 0
        self.evaluator = None

    def add(self, rspn, seconds=0.0):
        self.rspns.append(rspn)
        self.rspn_training_seconds.append(seconds)
        self.training_seconds += seconds
        self._structure_generation += 1
        rspn.evaluator = self.evaluator
        return rspn

    def replace(self, index, rspn, seconds=0.0):
        """Swap member ``index`` for a freshly learned ``rspn``.

        The drift-repair path (:func:`repro.core.maintenance.refresh_ensemble`)
        builds the replacement off-line and commits it here.  A naive
        ``ensemble.rspns[index] = fresh`` would make :attr:`generation`
        *jump backwards* (the fresh tree starts at generation 0 while
        the old one had absorbed updates), silently un-invalidating
        every generation-keyed cache -- so the structure counter is
        advanced past everything the outgoing model contributed, keeping
        the ensemble counter strictly monotonic.  The old model is
        retired from the shared evaluator (dropping its published
        shared-memory segments); the new one is attached in its place.
        """
        old = self.rspns[index]
        self._structure_generation += 1 + int(old.generation)
        self.rspns[index] = rspn
        self.training_seconds += seconds
        if index < len(self.rspn_training_seconds):
            self.rspn_training_seconds[index] = seconds
        rspn.evaluator = self.evaluator
        if self.evaluator is not None:
            retire = getattr(self.evaluator, "retire_model", None)
            if retire is not None:
                retire(old.root)
        old.evaluator = None
        return rspn

    def set_evaluator(self, evaluator):
        """Attach (or detach, with ``None``) a shared batch executor.

        Every member RSPN's ``expectation_batch`` -- and with it every
        batched consumer: ``cardinality_batch``, the plan prefetch, the
        ML heads, each coalesced serving flush -- then shards its
        compiled sweeps through ``evaluator``
        (:class:`repro.core.sharding.ShardedEvaluator`).  One evaluator
        (one process pool, one spec transport -- and under the ``shm``
        transport one shared tree segment per member RSPN generation)
        is shared across the whole ensemble.  Detaching (or replacing)
        an evaluator retires this ensemble's models from the old one,
        so a long-lived shared pool does not keep cached blobs or
        published shared-memory segments for models it no longer
        serves.
        """
        previous, self.evaluator = self.evaluator, evaluator
        for rspn in self.rspns:
            rspn.evaluator = evaluator
        if previous is not None and previous is not evaluator:
            retire = getattr(previous, "retire_model", None)
            if retire is not None:
                for rspn in self.rspns:
                    retire(rspn.root)
        return evaluator

    @property
    def generation(self):
        """Monotonic change counter: the single invalidation hook.

        Moves whenever any member RSPN absorbs an insert/delete (or is
        invalidated out-of-band) and whenever the ensemble itself gains
        an RSPN.  Anything caching results derived from this ensemble --
        the serving layer's LRU result cache in particular -- records
        the generation it computed under and drops its entries when the
        current value differs, instead of guessing which update paths
        exist.  The compiled flat-array forms ride the same per-RSPN
        counters (:attr:`~repro.core.rspn.RSPN.generation`).
        """
        return self._structure_generation + sum(
            rspn.generation for rspn in self.rspns
        )

    def covering(self, tables):
        """RSPNs whose table set contains all of ``tables``."""
        required = frozenset(tables)
        return [r for r in self.rspns if required <= r.tables]

    def touching(self, table):
        return [r for r in self.rspns if table in r.tables]

    def rdc_value(self, attr_a, attr_b):
        return self.attribute_rdc.get(frozenset((attr_a, attr_b)), 0.0)

    def invalidate_compiled(self):
        """Drop every RSPN's cached flat-array form.

        Normal inserts/deletes invalidate per-RSPN automatically; this
        is the blunt instrument for callers that mutate node trees
        directly (drift repair, ablations)."""
        for rspn in self.rspns:
            rspn.invalidate_compiled()

    def describe(self):
        lines = [f"SPNEnsemble with {len(self.rspns)} RSPNs "
                 f"(training {self.training_seconds:.1f}s):"]
        for rspn, seconds in zip(self.rspns, self.rspn_training_seconds):
            lines.append(f"  - {sorted(rspn.tables)}: {rspn.full_size:.0f} rows, "
                         f"{len(rspn.column_names)} columns, {seconds:.1f}s")
        return "\n".join(lines)


def learn_ensemble(database, config: EnsembleConfig | None = None):
    """Learn a full RSPN ensemble for ``database``.

    Tuple factors must already be attached
    (:func:`repro.engine.join.compute_tuple_factors`); this function
    attaches them when absent.
    """
    config = config or EnsembleConfig()
    _ensure_tuple_factors(database)
    ensemble = SPNEnsemble(database)
    _measure_correlations(database, ensemble, config)

    if config.single_tables_only:
        for name in database.table_names():
            _learn_single_table(database, ensemble, name, config)
        return ensemble

    joined_tables = set()
    for fk in database.schema.foreign_keys:
        pair = frozenset((fk.parent, fk.child))
        if ensemble.table_dependency.get(pair, 0.0) >= config.rdc_threshold:
            _learn_join(database, ensemble, (fk.parent, fk.child), config)
            joined_tables |= pair
    for name in database.table_names():
        if name not in joined_tables:
            _learn_single_table(database, ensemble, name, config)

    if config.budget_factor > 0:
        _optimize_ensemble(database, ensemble, config)
    return ensemble


# ----------------------------------------------------------------------
# Correlation measurement
# ----------------------------------------------------------------------
def _learned_attribute_columns(database, table_name):
    """Qualified non-key, non-factor attributes of one table."""
    table = database.table(table_name)
    return [
        join_ops.qualify(table_name, attr.name)
        for attr in table.schema.non_key_attributes
        if not attr.name.startswith("F__")
    ]


def _column_discrete_flags(database, columns):
    flags = []
    for qualified in columns:
        table_name, column = qualified.split(".", 1)
        attr = database.table(table_name).schema.attribute(column)
        flags.append(attr.kind == "categorical")
    return flags


def _measure_correlations(database, ensemble, config):
    """Pairwise attribute RDC values, within tables and across FK edges."""
    rng_seed = config.seed
    for name in database.table_names():
        columns = _learned_attribute_columns(database, name)
        if len(columns) < 1:
            continue
        table = database.table(name)
        data = np.column_stack(
            [table.columns[c.split(".", 1)[1]] for c in columns]
        )
        _store_rdc(ensemble, columns, data, config, seed=rng_seed,
                   flags=_column_discrete_flags(database, columns))
        rng_seed += 1
    for fk in database.schema.foreign_keys:
        pair = (fk.parent, fk.child)
        sample = sample_full_outer_join(
            database, list(pair), config.correlation_sample, seed=rng_seed
        )
        rng_seed += 1
        columns = (
            _learned_attribute_columns(database, fk.parent)
            + _learned_attribute_columns(database, fk.child)
        )
        data = join_frame(sample, columns)
        matrix = _store_rdc(ensemble, columns, data, config, seed=rng_seed,
                            flags=_column_discrete_flags(database, columns))
        cross = 0.0
        n_parent = len(_learned_attribute_columns(database, fk.parent))
        for i in range(n_parent):
            for j in range(n_parent, len(columns)):
                cross = max(cross, matrix[i, j])
        ensemble.table_dependency[frozenset(pair)] = cross


def _store_rdc(ensemble, columns, data, config, seed, flags=None):
    matrix = rdc_matrix(
        data, seed=seed, n_samples=config.correlation_sample, discrete_flags=flags
    )
    for i in range(len(columns)):
        for j in range(i + 1, len(columns)):
            key = frozenset((columns[i], columns[j]))
            ensemble.attribute_rdc[key] = max(
                ensemble.attribute_rdc.get(key, 0.0), float(matrix[i, j])
            )
    return matrix


def _dependency_value(database, ensemble, config, table_a, table_b):
    """Max cross-attribute RDC between two (possibly non-adjacent) tables."""
    key = frozenset((table_a, table_b))
    if key in ensemble.table_dependency:
        return ensemble.table_dependency[key]
    try:
        path = _connecting_path(database.schema, table_a, table_b)
    except ValueError:
        ensemble.table_dependency[key] = 0.0
        return 0.0
    sample = sample_full_outer_join(
        database, path, config.correlation_sample, seed=config.seed + hash(key) % 1000
    )
    columns_a = _learned_attribute_columns(database, table_a)
    columns_b = _learned_attribute_columns(database, table_b)
    columns = columns_a + columns_b
    data = join_frame(sample, columns)
    matrix = _store_rdc(ensemble, columns, data, config, seed=config.seed,
                        flags=_column_discrete_flags(database, columns))
    cross = 0.0
    for i in range(len(columns_a)):
        for j in range(len(columns_a), len(columns)):
            cross = max(cross, matrix[i, j])
    ensemble.table_dependency[key] = float(cross)
    return float(cross)


def _connecting_path(schema, table_a, table_b):
    import networkx as nx

    graph = schema.as_networkx()
    return nx.shortest_path(graph, table_a, table_b)


# ----------------------------------------------------------------------
# RSPN construction
# ----------------------------------------------------------------------
def _single_table_learning_data(database, table_name, config):
    table = database.table(table_name)
    names = [
        join_ops.qualify(table_name, attr.name)
        for attr in table.schema.non_key_attributes
    ]
    data = np.column_stack([table.columns[n.split(".", 1)[1]] for n in names])
    flags = [
        table.schema.attribute(n.split(".", 1)[1]).kind == "categorical" for n in names
    ]
    if data.shape[0] > config.sample_size:
        rng = np.random.default_rng(config.seed)
        keep = rng.choice(data.shape[0], size=config.sample_size, replace=False)
        data = data[keep]
    return names, data, flags


def _learn_single_table(database, ensemble, table_name, config, fds=()):
    start = time.perf_counter()
    names, data, flags = _single_table_learning_data(database, table_name, config)
    rspn = RSPN.learn(
        data,
        names,
        flags,
        tables={table_name},
        full_size=database.table(table_name).n_rows,
        internal_edges=(),
        functional_dependencies=fds,
        config=config.rspn,
    )
    return ensemble.add(rspn, time.perf_counter() - start)


def _discrete_flags(database, columns):
    flags = []
    for qualified in columns:
        table_name, column = qualified.split(".", 1)
        if column == "__present__":
            flags.append(True)
            continue
        attr = database.table(table_name).schema.attribute(column)
        flags.append(attr.kind == "categorical")
    return flags


def _learn_join(database, ensemble, tables, config, fds=()):
    start = time.perf_counter()
    tables = list(tables)
    full_size = full_outer_join_size(database, tables)
    sample = sample_full_outer_join(
        database, tables, config.sample_size, seed=config.seed
    )
    columns = join_learning_columns(database, tables)
    data = join_frame(sample, columns)
    flags = _discrete_flags(database, columns)
    rspn = RSPN.learn(
        data,
        columns,
        flags,
        tables=set(tables),
        full_size=full_size,
        internal_edges=database.schema.edges_between(tables),
        functional_dependencies=fds,
        config=config.rspn,
    )
    return ensemble.add(rspn, time.perf_counter() - start)


# ----------------------------------------------------------------------
# Ensemble optimization (Section 5.3)
# ----------------------------------------------------------------------
def _candidate_subsets(database, config):
    """Connected table subsets of size 3..max_join_tables."""
    schema = database.schema
    graph = schema.as_networkx()
    frontier = {frozenset((fk.parent, fk.child)) for fk in schema.foreign_keys}
    candidates = set()
    current = frontier
    for _size in range(3, config.max_join_tables + 1):
        grown = set()
        for subset in current:
            for table in subset:
                for neighbor in graph.neighbors(table):
                    if neighbor not in subset:
                        grown.add(subset | {neighbor})
        candidates |= grown
        current = grown
    return candidates


def _mean_dependency(database, ensemble, config, subset):
    tables = sorted(subset)
    values = []
    for i in range(len(tables)):
        for j in range(i + 1, len(tables)):
            values.append(
                _dependency_value(database, ensemble, config, tables[i], tables[j])
            )
    return float(np.mean(values)) if values else 0.0


def _relative_cost(database, subset, sample_size):
    """The paper's cost proxy ``cols(r)^2 * rows(r)``.

    ``rows`` is the size of the *training data*, which is capped at the
    configured sample size (RSPNs over large joins are learned on a
    sample, Section 6.1).
    """
    columns = sum(
        len(database.table(t).schema.non_key_attributes) for t in subset
    )
    rows = min(full_outer_join_size(database, list(subset)), sample_size)
    return columns**2 * rows


def _optimize_ensemble(database, ensemble, config):
    """Greedy selection of additional larger RSPNs under the budget."""
    base_cost = sum(
        _relative_cost(database, r.tables, config.sample_size)
        for r in ensemble.rspns
    )
    budget = config.budget_factor * base_cost
    existing = {r.tables for r in ensemble.rspns}
    candidates = [
        subset for subset in _candidate_subsets(database, config)
        if subset not in existing
    ]
    scored = []
    for subset in candidates:
        mean_rdc = _mean_dependency(database, ensemble, config, subset)
        if mean_rdc < config.rdc_threshold:
            continue
        scored.append(
            (mean_rdc, -_relative_cost(database, subset, config.sample_size), subset)
        )
    scored.sort(reverse=True)
    spent = 0.0
    for mean_rdc, negative_cost, subset in scored:
        cost = -negative_cost
        if spent + cost > budget:
            continue
        _learn_join(database, ensemble, sorted(subset), config)
        existing.add(frozenset(subset))
        spent += cost


def _ensure_tuple_factors(database):
    for fk in database.schema.foreign_keys:
        parent = database.table(fk.parent)
        if fk.factor_name not in parent.columns:
            join_ops.compute_tuple_factors(database)
            return
