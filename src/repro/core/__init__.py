"""Relational Sum-Product Networks and probabilistic query compilation.

This package is the paper's primary contribution:

- :mod:`repro.core.ranges` -- the predicate algebra leaves evaluate.
- :mod:`repro.core.leaves` -- histogram leaves: exact value-frequency
  histograms, binned histograms, NULL buckets (Section 3.2).
- :mod:`repro.core.nodes` / :mod:`repro.core.learning` -- SPN structure:
  sum nodes (KMeans row clusters), product nodes (RDC column splits).
- :mod:`repro.core.inference` -- bottom-up evaluation of probabilities
  and expectations with per-attribute transforms (Section 3.2).
- :mod:`repro.core.updates` -- Algorithm 1: direct insert/delete.
- :mod:`repro.core.rspn` -- the RSPN facade with NULL handling,
  functional dependencies and update support.
- :mod:`repro.core.ensemble` -- base ensembles + budget-constrained
  ensemble optimization (Sections 3.3 and 5.3).
- :mod:`repro.core.compilation` -- probabilistic query compilation
  (Section 4, Cases 1-3, Theorems 1 and 2).
- :mod:`repro.core.confidence` -- confidence intervals (Section 5.1).
- :mod:`repro.core.ml` -- regression / classification (Section 4.3).
- :mod:`repro.core.disjunction` -- inclusion-exclusion expansion of OR
  predicates (the principle Section 4.1 names).
- :mod:`repro.core.sampling` -- ancestral/conditional sampling and MPE.
- :mod:`repro.core.serialization` -- JSON persistence of RSPNs and
  ensembles.
- :mod:`repro.core.maintenance` -- bulk insert absorption (Section 6.1)
  and structure-drift detection / refresh (Section 5.2).
"""

from repro.core.compilation import ProbabilisticQueryCompiler
from repro.core.ensemble import SPNEnsemble, learn_ensemble
from repro.core.rspn import RSPN, RspnConfig
from repro.core.serialization import load_ensemble, save_ensemble

__all__ = [
    "ProbabilisticQueryCompiler",
    "RSPN",
    "RspnConfig",
    "SPNEnsemble",
    "learn_ensemble",
    "load_ensemble",
    "save_ensemble",
]
