"""repro -- reproduction of "DeepDB: Learn from Data, not from Queries!"
(Hilprecht et al., VLDB 2020).

The package implements the paper's full system: Relational Sum-Product
Networks (RSPNs), ensemble learning over relational schemas,
probabilistic query compilation for cardinality estimation, approximate
query processing and ML tasks -- plus the relational substrate, every
baseline of the evaluation, and synthetic dataset generators mirroring
the paper's workloads.

Quickstart::

    from repro import DeepDB
    from repro.datasets import imdb

    database = imdb.generate(scale=0.2, seed=0)
    deepdb = DeepDB.learn(database)
    query = deepdb.parse("SELECT COUNT(*) FROM title WHERE "
                         "title.production_year > 2005")
    print(deepdb.cardinality(query))
"""

from repro.deepdb import DeepDB

__version__ = "1.0.0"

__all__ = ["DeepDB", "__version__"]
