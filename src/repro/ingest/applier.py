"""The batch applier: drains the update queue into the serving session.

One worker thread per (queue, session) pair.  Each drained batch becomes
one :meth:`ModelSession.apply_batch
<repro.serving.session.ModelSession.apply_batch>` call: staging runs
against copy-on-write shadows while readers keep answering, the commit
is one short exclusive section per flush, and shard workers receive one
leaf-delta patch per touched RSPN instead of N whole-tree republishes.
Rejected ops (unknown table/column) are counted, not fatal -- the stream
keeps flowing around them.
"""

from __future__ import annotations

import threading
import time


class BatchApplier:
    """Background thread applying queued updates in coalesced batches."""

    def __init__(self, session, queue, max_batch=256, max_wait_s=0.05,
                 on_error=None):
        self.session = session
        self.queue = queue
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._on_error = on_error
        self._thread = threading.Thread(
            target=self._run, name=f"repro-ingest-{session.name}", daemon=True
        )
        self._lock = threading.Lock()
        self.flushes = 0
        self.applied = 0
        self.rejected = 0
        self.max_flush = 0
        self.flush_seconds = 0.0
        self.last_generation = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        self._thread.start()
        return self

    def stop(self, timeout=30.0):
        """Close the queue, drain what is pending and join the thread."""
        self.queue.close()
        self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def running(self):
        return self._thread.is_alive()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            batch = self.queue.get_batch(
                max_batch=self.max_batch, max_wait_s=self.max_wait_s
            )
            if batch is None:  # closed and drained
                return
            start = time.perf_counter()
            try:
                results = self.session.apply_batch(
                    [op.triple() for op in batch]
                )
            except Exception as error:  # noqa: BLE001 - keep the stream alive
                with self._lock:
                    self.flushes += 1
                    self.rejected += len(batch)
                if self._on_error is not None:
                    self._on_error(error, batch)
                continue
            seconds = time.perf_counter() - start
            applied = rejected = 0
            generation = None
            for result in results:
                if isinstance(result, Exception):
                    rejected += 1
                else:
                    applied += 1
                    generation = result
            with self._lock:
                self.flushes += 1
                self.applied += applied
                self.rejected += rejected
                self.max_flush = max(self.max_flush, len(batch))
                self.flush_seconds += seconds
                if generation is not None:
                    self.last_generation = generation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            flushes = self.flushes
            return {
                "flushes": flushes,
                "applied": self.applied,
                "rejected": self.rejected,
                "mean_flush": (
                    (self.applied + self.rejected) / flushes if flushes else 0.0
                ),
                "max_flush": self.max_flush,
                "flush_seconds": self.flush_seconds,
                "last_generation": self.last_generation,
                "queue": self.queue.stats(),
            }
