"""Background drift monitoring and shadow ensemble refresh.

Algorithm 1 never changes tree *structure*, so correlations that appear
after heavy inserts go unrepresented (Section 5.2).  The paper's remedy
-- re-checking product splits cyclically and regenerating affected
RSPNs "in the background, as for traditional indexes" -- runs here:

1. on a cadence, :func:`repro.core.maintenance.check_structure_drift`
   re-validates every resident model's column splits;
2. drifted RSPNs are *shadow-learned* off any lock
   (:func:`repro.core.maintenance.rebuild_drifted` only reads the live
   ensemble), so queries and ingest continue unimpeded;
3. the finished replacements are swapped in atomically under the owning
   session's write lock (:func:`repro.core.maintenance.commit_refresh`
   -> :meth:`SPNEnsemble.replace`), which keeps the ensemble generation
   strictly monotonic -- result caches, plan caches and shard workers
   all invalidate through the ordinary generation machinery.
"""

from __future__ import annotations

import logging
import threading
import time

logger = logging.getLogger(__name__)


class DriftMonitor:
    """Daemon thread re-validating resident models on a cadence.

    ``registry`` is a :class:`~repro.serving.registry.ModelRegistry`
    (only paged-in sessions are checked; paged-out models cannot
    drift).  ``config`` is the
    :class:`~repro.core.ensemble.EnsembleConfig` used to re-learn
    flagged RSPNs; ``None`` uses the defaults.  ``threshold`` overrides
    each RSPN's learning RDC threshold for the check.
    """

    def __init__(self, registry, config=None, interval_s=30.0, sample=2_000,
                 threshold=None, seed=0):
        if config is None:
            from repro.core.ensemble import EnsembleConfig

            config = EnsembleConfig()
        self.registry = registry
        self.config = config
        self.interval_s = float(interval_s)
        self.sample = int(sample)
        self.threshold = threshold
        self.seed = int(seed)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-drift-monitor", daemon=True
        )
        self._lock = threading.Lock()
        self.rounds = 0
        self.checks = 0
        self.drift_flags = 0
        self.rebuilds = 0
        self.errors = 0
        self.check_seconds = 0.0
        self.last_round_at = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        self._thread.start()
        return self

    def stop(self, timeout=30.0):
        self._stop.set()
        self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def running(self):
        return self._thread.is_alive()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _run(self):
        while not self._stop.wait(self.interval_s):
            self.run_once()

    def run_once(self):
        """One full monitoring round over every resident session.

        Exposed for tests and for operators who want an on-demand check
        without waiting for the cadence.  Returns the number of RSPNs
        rebuilt this round.
        """
        from repro.core.maintenance import commit_refresh, rebuild_drifted

        with self._lock:
            round_seed = self.seed + self.rounds
            self.rounds += 1
            self.last_round_at = time.time()
        rebuilt_total = 0
        for session in self.registry.resident_sessions():
            if self._stop.is_set():
                break
            start = time.perf_counter()
            try:
                deepdb = session.deepdb
                reports, replacements = rebuild_drifted(
                    deepdb.ensemble, deepdb.database, self.config,
                    sample=self.sample, seed=round_seed,
                )
                flagged = sum(1 for r in reports if r.has_drift)
                if replacements:
                    # The expensive learning ran above, off-lock; only
                    # the O(replacements) pointer swaps block writers
                    # and readers, and only for this model.
                    with session.write_lock():
                        rebuilt = commit_refresh(deepdb.ensemble, replacements)
                    rebuilt_total += rebuilt
                else:
                    rebuilt = 0
            except Exception:  # noqa: BLE001 - a failed check must not kill the cadence
                logger.exception(
                    "drift check failed for model %r", session.name
                )
                with self._lock:
                    self.errors += 1
                continue
            with self._lock:
                self.checks += 1
                self.drift_flags += flagged
                self.rebuilds += rebuilt
                self.check_seconds += time.perf_counter() - start
        return rebuilt_total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "rounds": self.rounds,
                "checks": self.checks,
                "drift_flags": self.drift_flags,
                "rebuilds": self.rebuilds,
                "errors": self.errors,
                "check_seconds": self.check_seconds,
                "last_round_at": self.last_round_at,
                "running": self._thread.is_alive(),
            }
