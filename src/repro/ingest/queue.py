"""Bounded update queue with coalescing batch consumption.

Producers (HTTP handlers, the CLI driver, tests) call :meth:`UpdateQueue.put`;
when the queue is full the put *blocks* -- backpressure, never unbounded
memory.  The single consumer (:class:`~repro.ingest.applier.BatchApplier`)
calls :meth:`UpdateQueue.get_batch`, which waits for the first op and
then keeps collecting up to ``max_batch`` ops for at most ``max_wait_s``
-- temporal proximity becomes batch shape, exactly like the serving
coalescer does for queries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field


class QueueClosed(RuntimeError):
    """Raised by :meth:`UpdateQueue.put` after :meth:`UpdateQueue.close`."""


@dataclass(frozen=True)
class UpdateOp:
    """One queued update: ``op`` is ``"insert"`` or ``"delete"``."""

    op: str
    table: str
    row: dict = field(hash=False)

    def triple(self):
        """The ``(op, table, row)`` shape ``ModelSession.apply_batch`` eats."""
        return (self.op, self.table, self.row)


class UpdateQueue:
    """A bounded FIFO of :class:`UpdateOp` with blocking backpressure."""

    def __init__(self, maxsize=10_000):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._items: deque = deque()
        self._condition = threading.Condition()
        self._closed = False
        self.enqueued = 0
        self.dequeued = 0
        self.put_waits = 0  # puts that had to block on a full queue
        self.high_water = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, op, timeout=None) -> bool:
        """Enqueue ``op``, blocking while the queue is full.

        Returns ``True`` once enqueued, ``False`` on timeout.  Raises
        :class:`QueueClosed` when the queue has been closed -- producers
        must stop, the applier is draining towards shutdown.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            waited = False
            while len(self._items) >= self.maxsize and not self._closed:
                if not waited:
                    self.put_waits += 1
                    waited = True
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(remaining)
            if self._closed:
                raise QueueClosed("update queue is closed")
            self._items.append(op)
            self.enqueued += 1
            self.high_water = max(self.high_water, len(self._items))
            self._condition.notify_all()
            return True

    def close(self):
        """Refuse further puts; pending ops remain consumable."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get_batch(self, max_batch=256, max_wait_s=0.05):
        """Collect up to ``max_batch`` ops into one list.

        Blocks until at least one op is available (or the queue is
        closed *and* empty, which returns ``None`` -- the consumer's
        shutdown signal).  After the first op, keeps collecting for at
        most ``max_wait_s`` so a trickle of producers still forms real
        batches without adding latency to a full queue.
        """
        with self._condition:
            while not self._items and not self._closed:
                self._condition.wait()
            if not self._items:
                return None  # closed and drained
            deadline = time.monotonic() + max_wait_s
            while len(self._items) < max_batch and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            batch = []
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
            self.dequeued += len(batch)
            self._condition.notify_all()  # wake blocked producers
            return batch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self):
        with self._condition:
            return len(self._items)

    @property
    def closed(self):
        with self._condition:
            return self._closed

    def stats(self) -> dict:
        with self._condition:
            return {
                "depth": len(self._items),
                "maxsize": self.maxsize,
                "high_water": self.high_water,
                "enqueued": self.enqueued,
                "dequeued": self.dequeued,
                "put_waits": self.put_waits,
                "closed": self._closed,
            }
