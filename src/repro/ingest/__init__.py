"""Continuous ingest: bounded queueing, batch application, drift repair.

The streaming counterpart of Section 5.2's update story.  Three small
components compose into a pipeline that absorbs a stream of
inserts/deletes without ever blocking readers:

- :class:`~repro.ingest.queue.UpdateQueue` -- a bounded producer/consumer
  queue with blocking-put backpressure and coalescing ``get_batch``;
- :class:`~repro.ingest.applier.BatchApplier` -- the worker thread that
  drains the queue into :meth:`ModelSession.apply_batch
  <repro.serving.session.ModelSession.apply_batch>`: one copy-on-write
  staged batch, one generation bump per touched RSPN, and a leaf-delta
  patch (not a whole-tree republish) to shard workers;
- :class:`~repro.ingest.monitor.DriftMonitor` -- the background thread
  running :func:`repro.core.maintenance.check_structure_drift` on a
  cadence and shadow-rebuilding drifted RSPNs, committing each swap
  under the owning session's write lock.
"""

from repro.ingest.applier import BatchApplier
from repro.ingest.monitor import DriftMonitor
from repro.ingest.queue import QueueClosed, UpdateOp, UpdateQueue

__all__ = [
    "BatchApplier",
    "DriftMonitor",
    "QueueClosed",
    "UpdateOp",
    "UpdateQueue",
]
