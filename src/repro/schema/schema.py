"""Schema graph: tables, attributes and foreign-key relationships.

Terminology follows the paper.  A foreign key relationship ``S <- T``
means the *parent* table ``S`` exposes a primary key that the *child*
table ``T`` references; the tuple factor ``F_{S<-T}`` stored on ``S``
counts how many ``T`` rows reference each ``S`` row (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

CATEGORICAL = "categorical"
NUMERIC = "numeric"
KEY = "key"


@dataclass(frozen=True)
class Attribute:
    """A single column of a table.

    ``kind`` is one of ``categorical`` (dictionary-encoded), ``numeric``
    (continuous or integer measure) or ``key`` (primary/foreign key;
    excluded from learned models just like in the paper).
    """

    name: str
    kind: str = CATEGORICAL

    def __post_init__(self):
        if self.kind not in (CATEGORICAL, NUMERIC, KEY):
            raise ValueError(f"unknown attribute kind: {self.kind!r}")

    @property
    def is_key(self):
        return self.kind == KEY

    @property
    def is_numeric(self):
        return self.kind == NUMERIC


@dataclass(frozen=True)
class ForeignKey:
    """Foreign-key edge ``parent <- child`` (``child.fk_column`` references
    ``parent.pk_column``)."""

    parent: str
    child: str
    fk_column: str
    pk_column: str

    @property
    def name(self):
        return f"{self.parent}<-{self.child}"

    @property
    def factor_name(self):
        """Name of the tuple-factor column ``F_{parent<-child}`` stored on
        the parent table."""
        return f"F__{self.parent}__{self.child}"


@dataclass
class TableSchema:
    """Schema of one table: attributes, primary key, row identity."""

    name: str
    attributes: list = field(default_factory=list)
    primary_key: str | None = None

    def attribute(self, name):
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"table {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name):
        return any(attr.name == name for attr in self.attributes)

    @property
    def attribute_names(self):
        return [attr.name for attr in self.attributes]

    @property
    def non_key_attributes(self):
        return [attr for attr in self.attributes if not attr.is_key]


class SchemaGraph:
    """A collection of tables plus foreign-key edges.

    The graph of tables connected by FK edges must be a forest for the
    query class of the paper (equi-joins along FK paths); the helper
    methods below assume and validate this.
    """

    def __init__(self):
        self.tables: dict[str, TableSchema] = {}
        self.foreign_keys: list[ForeignKey] = []

    def add_table(self, table: TableSchema):
        if table.name in self.tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        return table

    def add_foreign_key(self, parent, child, fk_column, pk_column=None):
        if parent not in self.tables or child not in self.tables:
            raise KeyError("both tables must be registered before the FK")
        if pk_column is None:
            pk_column = self.tables[parent].primary_key
            if pk_column is None:
                raise ValueError(f"table {parent!r} has no primary key")
        fk = ForeignKey(parent=parent, child=child, fk_column=fk_column, pk_column=pk_column)
        self.foreign_keys.append(fk)
        return fk

    def table(self, name):
        return self.tables[name]

    def foreign_key(self, parent, child):
        for fk in self.foreign_keys:
            if fk.parent == parent and fk.child == child:
                return fk
        raise KeyError(f"no foreign key {parent!r} <- {child!r}")

    def edges_between(self, table_names):
        """All FK edges whose endpoints both lie in ``table_names``."""
        names = set(table_names)
        return [fk for fk in self.foreign_keys if fk.parent in names and fk.child in names]

    def children_of(self, table_name):
        return [fk for fk in self.foreign_keys if fk.parent == table_name]

    def parents_of(self, table_name):
        return [fk for fk in self.foreign_keys if fk.child == table_name]

    def as_networkx(self):
        graph = nx.Graph()
        graph.add_nodes_from(self.tables)
        for fk in self.foreign_keys:
            graph.add_edge(fk.parent, fk.child, fk=fk)
        return graph

    def is_connected(self, table_names):
        names = list(table_names)
        if len(names) <= 1:
            return True
        sub = self.as_networkx().subgraph(names)
        return nx.is_connected(sub)

    def join_tree(self, table_names, root=None):
        """Join tree over ``table_names``: ``(root, [(fk, parent_side_table)])``.

        Returns the chosen root table plus the FK edges of the induced
        subtree in BFS order from the root.  Raises if the tables are not
        connected or the induced subgraph is not a tree (the query class
        of the paper never needs cyclic join graphs).
        """
        names = list(dict.fromkeys(table_names))
        if not names:
            raise ValueError("join tree of empty table set")
        sub = self.as_networkx().subgraph(names)
        if not nx.is_connected(sub):
            raise ValueError(f"tables {names} are not connected by FK edges")
        if sub.number_of_edges() != len(names) - 1:
            raise ValueError(f"join graph over {names} is not a tree")
        if root is None:
            root = names[0]
        edges = []
        for near, far in nx.bfs_edges(sub, root):
            edges.append(sub.edges[near, far]["fk"])
        return root, edges

    def join_order(self, table_names, root=None):
        """BFS table order of the join tree, starting at ``root``."""
        root, edges = self.join_tree(table_names, root=root)
        order = [root]
        for fk in edges:
            nxt = fk.child if fk.parent in order else fk.parent
            order.append(nxt)
        return order
