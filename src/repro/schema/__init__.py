"""Relational schema metadata: tables, attributes, foreign keys.

The schema graph is shared by the exact execution engine
(:mod:`repro.engine`), the RSPN ensemble learner and the probabilistic
query compiler.  Join trees over foreign-key edges are the backbone of
both the tuple-factor bookkeeping of Section 4.1 of the paper and of the
exact ground-truth executor.
"""

from repro.schema.schema import Attribute, ForeignKey, SchemaGraph, TableSchema

__all__ = ["Attribute", "ForeignKey", "SchemaGraph", "TableSchema"]
