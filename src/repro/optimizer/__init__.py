"""Cost-based join-order optimization driven by cardinality estimates.

The paper motivates cardinality estimation as input "to find the correct
join order during query optimization" (Section 2).  This subpackage
closes that loop: a textbook System-R style dynamic-programming
enumerator picks join orders under a C_out cost model, and the quality
of the chosen plan is scored under *true* cardinalities -- the standard
methodology for judging whether an estimator's errors actually hurt
plans (Leis et al., "How good are query optimizers, really?").

Modules
-------
- :mod:`repro.optimizer.plans` -- join-tree plan representation,
- :mod:`repro.optimizer.cardinality` -- the sub-query oracle over any
  estimator of the batched protocol (:mod:`repro.estimator`), with a
  one-``cardinality_batch``-call prefetch of every connected subset
  (serial memoisation kept as the reference mode),
- :mod:`repro.optimizer.cost` -- the C_out cost model,
- :mod:`repro.optimizer.enumeration` -- bushy and left-deep DP,
- :mod:`repro.optimizer.quality` -- plan suboptimality scoring,
- :mod:`repro.optimizer.execution` -- hash-join plan execution and the
  optimise-then-execute entry point sharing the same oracle, with
  mid-execution re-optimisation when realised intermediates blow past
  their estimates,
- :mod:`repro.optimizer.plancache` -- the shape-keyed plan cache
  riding the model/corrector generations.
"""

from repro.optimizer.cardinality import SubqueryCardinalities
from repro.optimizer.cost import PerJoinCost, cout_cost
from repro.optimizer.enumeration import (
    OptimizationError,
    optimal_plan,
    replan_over_units,
)
from repro.optimizer.execution import (
    ExecutionError,
    MaterializedRelation,
    OptimizedExecution,
    execute_plan,
    optimize_and_execute,
)
from repro.optimizer.plancache import PlanCache, cache_epoch
from repro.optimizer.plans import BaseRelation, Join, plan_joins
from repro.optimizer.quality import plan_suboptimality

__all__ = [
    "BaseRelation",
    "ExecutionError",
    "Join",
    "MaterializedRelation",
    "OptimizationError",
    "OptimizedExecution",
    "PerJoinCost",
    "PlanCache",
    "SubqueryCardinalities",
    "cache_epoch",
    "cout_cost",
    "execute_plan",
    "optimal_plan",
    "optimize_and_execute",
    "plan_joins",
    "plan_suboptimality",
    "replan_over_units",
]
