"""Cost-based join-order optimization driven by cardinality estimates.

The paper motivates cardinality estimation as input "to find the correct
join order during query optimization" (Section 2).  This subpackage
closes that loop: a textbook System-R style dynamic-programming
enumerator picks join orders under a C_out cost model, and the quality
of the chosen plan is scored under *true* cardinalities -- the standard
methodology for judging whether an estimator's errors actually hurt
plans (Leis et al., "How good are query optimizers, really?").

Modules
-------
- :mod:`repro.optimizer.plans` -- join-tree plan representation,
- :mod:`repro.optimizer.cardinality` -- estimator adapters (true /
  DeepDB / Postgres / sampling) with sub-query memoisation,
- :mod:`repro.optimizer.cost` -- the C_out cost model,
- :mod:`repro.optimizer.enumeration` -- bushy and left-deep DP,
- :mod:`repro.optimizer.quality` -- plan suboptimality scoring.
"""

from repro.optimizer.cardinality import SubqueryCardinalities
from repro.optimizer.cost import cout_cost
from repro.optimizer.enumeration import OptimizationError, optimal_plan
from repro.optimizer.plans import BaseRelation, Join, plan_joins
from repro.optimizer.quality import plan_suboptimality

__all__ = [
    "BaseRelation",
    "Join",
    "OptimizationError",
    "SubqueryCardinalities",
    "cout_cost",
    "optimal_plan",
    "plan_joins",
    "plan_suboptimality",
]
