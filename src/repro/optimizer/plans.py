"""Join-tree plan representation.

Plans are binary trees: leaves scan one base relation (with the query's
predicates on that table pushed down), internal nodes join two disjoint
sub-plans.  Plans carry no physical operator choice -- the C_out cost
model scores logical join orders only, which is the granularity at which
cardinality estimates matter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BaseRelation:
    """A scan of one base table."""

    table: str

    @property
    def tables(self):
        return frozenset((self.table,))

    def describe(self):
        return self.table


@dataclass(frozen=True)
class Join:
    """An (unordered) join of two disjoint sub-plans."""

    left: object
    right: object

    def __post_init__(self):
        if self.left.tables & self.right.tables:
            raise ValueError("join inputs must be disjoint")

    @property
    def tables(self):
        return self.left.tables | self.right.tables

    def describe(self):
        return f"({self.left.describe()} ⨝ {self.right.describe()})"


def plan_joins(plan):
    """All :class:`Join` nodes of a plan, bottom-up.

    Any non-:class:`Join` node is a leaf -- base relations, but also
    pinned already-materialised relations during mid-execution
    re-optimisation (:mod:`repro.optimizer.execution`).
    """
    if not isinstance(plan, Join):
        return []
    joins = plan_joins(plan.left) + plan_joins(plan.right)
    joins.append(plan)
    return joins


def is_left_deep(plan):
    """True when every join's right input is a base relation."""
    if isinstance(plan, BaseRelation):
        return True
    return isinstance(plan.right, BaseRelation) and is_left_deep(plan.left)


def plan_depth(plan):
    """Height of the join tree (base relations have depth 0)."""
    if isinstance(plan, BaseRelation):
        return 0
    return 1 + max(plan_depth(plan.left), plan_depth(plan.right))
