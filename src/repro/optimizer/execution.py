"""Physical execution of join plans (hash joins over the column store).

The enumerator scores plans with *estimated* intermediate sizes; this
module actually runs a plan bottom-up with in-memory hash joins and
reports the real ones.  That closes the validation loop: the C_out cost
of a plan under the true-cardinality oracle must equal the total number
of intermediate rows a real executor materialises, which the tests
assert exactly.

On top of the static path sits the **adaptive loop**
(:func:`optimize_and_execute`): every join's realised size is compared
against the oracle's estimate for that subset, and when it blows past
``replan_threshold`` the already-materialised relations are pinned as
indivisible units, the oracle is patched with the realised truth (with
the observed error propagated to superset estimates), and the remaining
join order is re-enumerated -- so one misestimate stops cascading
through the rest of the plan.

Plans execute inner-join semantics (the query class join ordering is
defined for); NULL join keys never match, per SQL.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine.filters import conjunction_mask
from repro.optimizer.plans import BaseRelation, Join, plan_joins


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed against the database."""


@dataclass
class _Relation:
    """An intermediate result: aligned row-index vectors per table."""

    rows: dict  # table name -> np.ndarray of row indices

    @property
    def tables(self):
        return frozenset(self.rows)

    def __len__(self):
        first = next(iter(self.rows.values()), np.empty(0, dtype=int))
        return int(first.shape[0])


@dataclass(frozen=True)
class MaterializedRelation:
    """A plan leaf pinning an already-materialised intermediate result.

    Mid-execution re-optimisation treats everything it has already
    joined as an indivisible unit: the remainder DP enumerates over
    these leaves plus the not-yet-joined base relations.  The leaf only
    carries the covered table set -- the executor resolves it to the
    live :class:`_Relation` by that key.
    """

    table_set: frozenset

    @property
    def tables(self):
        return self.table_set

    def describe(self):
        return "[" + " ⨝ ".join(sorted(self.table_set)) + "]"


@dataclass
class PlanExecution:
    """Outcome of running one plan: final size plus per-join sizes."""

    result_rows: int
    intermediates: list = field(default_factory=list)  # [(tables, n_rows)]

    @property
    def total_intermediate_rows(self):
        """Sum of all join output sizes -- the realised C_out."""
        return float(sum(n for _tables, n in self.intermediates))


def _scan(database, query, table_name):
    table = database.table(table_name)
    mask = conjunction_mask(table, query.predicates_on(table_name))
    return _Relation({table_name: np.flatnonzero(mask)})


def _join_edge(schema, left_tables, right_tables):
    """The unique FK edge joining the two sides.

    A single-edge hash join applies exactly one equality predicate, so
    multiple FK edges between the sides would silently drop the others
    and over-count.  Schema forests make that unreachable today; this
    guard keeps it that way by raising instead of picking the first.
    """
    matches = []
    for fk in schema.foreign_keys:
        if fk.parent in left_tables and fk.child in right_tables:
            matches.append((fk, True))
        elif fk.child in left_tables and fk.parent in right_tables:
            matches.append((fk, False))
    if not matches:
        raise ExecutionError(
            f"no FK edge joins {sorted(left_tables)} with {sorted(right_tables)}"
        )
    if len(matches) > 1:
        names = ", ".join(fk.name for fk, _ in matches)
        raise ExecutionError(
            f"ambiguous join between {sorted(left_tables)} and "
            f"{sorted(right_tables)}: {len(matches)} FK edges ({names}) "
            "connect the two sides; a single-edge hash join would drop "
            "the other equality predicates"
        )
    return matches[0]


def _match_positions(parent_keys, child_keys):
    """Matching (parent, child) position pairs under float equality.

    Vectorised factorised matching: NaN keys are excluded on both sides
    (NULL never joins), the valid parent keys are stably sorted, and
    each child key's run of equal parent keys is located with two
    ``searchsorted`` probes and expanded with the repeat/offset trick.
    The emission order is **identical** to the dict-bucket reference
    loop (:func:`_hash_join_reference`): child position ascending, and
    within one child, parent positions ascending (stable sort keeps
    equal keys in insertion order, exactly like bucket append order).
    """
    parent_valid = np.flatnonzero(~np.isnan(parent_keys))
    child_valid = np.flatnonzero(~np.isnan(child_keys))
    sortable = parent_keys[parent_valid]
    order = np.argsort(sortable, kind="stable")
    sorted_keys = sortable[order]
    probes = child_keys[child_valid]
    left = np.searchsorted(sorted_keys, probes, side="left")
    right = np.searchsorted(sorted_keys, probes, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    run_starts = np.cumsum(counts) - counts
    offsets = np.arange(total) - np.repeat(run_starts, counts)
    parent_positions = parent_valid[order[np.repeat(left, counts) + offsets]]
    child_positions = child_valid[np.repeat(np.arange(probes.shape[0]), counts)]
    return parent_positions, child_positions


def _join_sides(database, left, right, fk, parent_on_left):
    parent_side, child_side = (left, right) if parent_on_left else (right, left)
    parent_keys = database.table(fk.parent).columns[fk.pk_column][
        parent_side.rows[fk.parent]
    ]
    child_keys = database.table(fk.child).columns[fk.fk_column][
        child_side.rows[fk.child]
    ]
    return parent_side, child_side, parent_keys, child_keys


def _gather(parent_side, child_side, parent_positions, child_positions):
    rows = {}
    for table, indices in parent_side.rows.items():
        rows[table] = indices[parent_positions]
    for table, indices in child_side.rows.items():
        rows[table] = indices[child_positions]
    return _Relation(rows)


def _hash_join(database, left, right, fk, parent_on_left):
    """Inner hash join of two relations along one FK edge (vectorised)."""
    parent_side, child_side, parent_keys, child_keys = _join_sides(
        database, left, right, fk, parent_on_left
    )
    parent_positions, child_positions = _match_positions(
        parent_keys, child_keys
    )
    return _gather(parent_side, child_side, parent_positions, child_positions)


def _hash_join_reference(database, left, right, fk, parent_on_left):
    """The row-at-a-time dict-bucket join the vectorised path must match.

    Kept as the behavioural reference: ``tests/test_plan_execution.py``
    asserts the vectorised join's row-index arrays are bit-identical
    (``==``) to this loop, including NaN keys, duplicate keys and
    emission order.
    """
    parent_side, child_side, parent_keys, child_keys = _join_sides(
        database, left, right, fk, parent_on_left
    )
    buckets = {}
    for position, key in enumerate(parent_keys):
        if np.isnan(key):
            continue
        buckets.setdefault(float(key), []).append(position)
    parent_positions = []
    child_positions = []
    for position, key in enumerate(child_keys):
        if np.isnan(key):
            continue
        for match in buckets.get(float(key), ()):
            parent_positions.append(match)
            child_positions.append(position)
    return _gather(
        parent_side, child_side,
        np.asarray(parent_positions, dtype=int),
        np.asarray(child_positions, dtype=int),
    )


@dataclass
class OptimizedExecution:
    """Outcome of :func:`optimize_and_execute`: the chosen plan, its
    estimated C_out, the (prefetched) oracle behind the choice, and the
    realised execution with true intermediate sizes.

    ``replans`` counts mid-execution re-optimisations and ``join_gaps``
    records one entry per executed join -- ``{"tables", "estimate"
    (the estimator's raw, unclamped value at planning time),
    "realized", "gap" (realised / clamped estimate)}`` -- the
    per-intermediate misestimates the feedback loop trains on."""

    plan: object
    estimated_cost: float
    oracle: object
    execution: "PlanExecution"
    latency_ns: int = 0
    replans: int = 0
    join_gaps: list = field(default_factory=list)

    @property
    def estimation_gap(self):
        """Realised C_out / estimated C_out (1.0 = perfectly estimated).

        A zero (or negative) estimate against realised rows is an
        *infinitely* wrong estimate, not a perfect one -- only the true
        0/0 case (nothing estimated, nothing materialised) reports 1.0.
        """
        realized = self.execution.total_intermediate_rows
        if self.estimated_cost <= 0:
            return math.inf if realized > 0 else 1.0
        return realized / self.estimated_cost


def _execute_adaptive(plan, database, query, oracle, replan_threshold,
                      linear):
    """Run ``plan`` bottom-up, re-optimising when estimates blow up.

    Returns ``(PlanExecution, replans, join_gaps)``.  With the
    threshold disabled (``None`` / ``inf``) this executes exactly the
    joins of ``plan`` in :func:`plan_joins` order -- the same order the
    recursive :func:`execute_plan` materialises them, so intermediates
    and the result are bit-identical to the static path.
    """
    from repro.optimizer.enumeration import replan_over_units

    replan_enabled = (
        replan_threshold is not None and math.isfinite(replan_threshold)
    )
    full = frozenset(query.tables)
    schema = database.schema
    intermediates = []
    join_gaps = []
    replans = 0
    scans: dict[str, _Relation] = {}
    live: dict[frozenset, _Relation] = {}

    def take(node):
        if isinstance(node, BaseRelation):
            if node.table not in scans:
                scans[node.table] = _scan(database, query, node.table)
            return scans[node.table]
        return live.pop(frozenset(node.tables))

    while True:
        joins = plan_joins(plan)
        if not joins:
            result = take(plan)
            break
        restart = False
        for node in joins:
            left = take(node.left)
            right = take(node.right)
            fk, parent_on_left = _join_edge(schema, left.tables, right.tables)
            joined = _hash_join(database, left, right, fk, parent_on_left)
            key = frozenset(node.tables)
            live[key] = joined
            realized = len(joined)
            intermediates.append((sorted(key), realized))
            estimate = oracle(key)
            join_gaps.append({
                "tables": sorted(key),
                "estimate": oracle.raw_estimate(key)
                if hasattr(oracle, "raw_estimate") else estimate,
                "realized": float(realized),
                "gap": float(realized) / estimate,
            })
            if (replan_enabled and key != full
                    and realized > replan_threshold * estimate
                    and hasattr(oracle, "patch")):
                # Everything materialised so far is exact truth now:
                # patch it in (propagating the observed error to
                # superset estimates) and re-enumerate the remainder
                # with the live relations pinned as indivisible units.
                for live_key, relation in live.items():
                    oracle.patch(live_key, len(relation))
                units = [MaterializedRelation(live_key) for live_key in live]
                covered = frozenset().union(*live)
                units += [
                    BaseRelation(t) for t in sorted(full - covered)
                ]
                plan, _ = replan_over_units(
                    units, schema, oracle, linear=linear
                )
                replans += 1
                restart = True
                break
        if not restart:
            result = live.pop(full)
            break

    execution = PlanExecution(
        result_rows=len(result), intermediates=intermediates
    )
    return execution, replans, join_gaps


def optimize_and_execute(query, database, estimator, linear=False, batch=True,
                         feedback=None, replan_threshold=16.0,
                         plan_cache=None):
    """Optimise ``query`` under ``estimator`` and run the chosen plan.

    The estimator is wrapped in the same batched
    :class:`~repro.optimizer.cardinality.SubqueryCardinalities` oracle
    the plan-quality harness uses: one ``cardinality_batch`` call
    answers every sub-plan estimate of the enumeration (``batch=False``
    restores the serial memoised path), then the plan is executed with
    real hash joins.  Returns an :class:`OptimizedExecution`.

    ``replan_threshold`` arms mid-execution re-optimisation: when a
    join materialises more than ``threshold x`` its estimate, the
    remaining join order is re-enumerated with realised truth patched
    into the oracle (``None`` or ``inf`` disables, restoring the static
    pipeline bit-for-bit).  ``plan_cache`` (a
    :class:`~repro.optimizer.plancache.PlanCache`) skips enumeration
    for repeated query shapes; after a replan the cached entry is
    recomputed from the patched oracle so a repeated query does not
    repeat the mistake.

    ``feedback`` (a :class:`~repro.feedback.CorrectedEstimator`) closes
    the estimation loop: the query's own *raw* prefetched estimate and
    the realised result rows are one labeled observation, and every
    realised intermediate becomes a labeled observation on its
    materialised sub-query -- the joins the optimizer actually got
    wrong are exactly what the residual corrector trains on.
    """
    from repro.optimizer.cardinality import SubqueryCardinalities
    from repro.optimizer.enumeration import optimal_plan

    epoch = None
    entry = None
    if plan_cache is not None:
        from repro.optimizer.plancache import cache_epoch

        epoch = cache_epoch(estimator, feedback)
        entry = plan_cache.lookup(query, epoch, linear=linear)
    if entry is not None:
        plan, cost, oracle = entry
    else:
        oracle = SubqueryCardinalities(estimator, query, batch=batch)
        plan, cost = optimal_plan(
            query, database.schema, oracle, linear=linear
        )
        if plan_cache is not None:
            plan_cache.store(query, (plan, cost, oracle), epoch,
                             linear=linear)
    raw_estimate = None
    if feedback is not None:
        # Captured before execution: a replan patches realised truth
        # into the oracle, and the observation must log what the
        # estimator originally said.
        raw_estimate = oracle.raw_estimate(frozenset(query.tables))
    start = time.perf_counter_ns()
    execution, replans, join_gaps = _execute_adaptive(
        plan, database, query, oracle, replan_threshold, linear
    )
    latency_ns = time.perf_counter_ns() - start
    if replans and plan_cache is not None:
        refreshed_plan, refreshed_cost = optimal_plan(
            query, database.schema, oracle, linear=linear
        )
        plan_cache.store(
            query, (refreshed_plan, refreshed_cost, oracle), epoch,
            linear=linear,
        )
    result = OptimizedExecution(
        plan=plan, estimated_cost=cost, oracle=oracle, execution=execution,
        latency_ns=latency_ns, replans=replans, join_gaps=join_gaps,
    )
    if feedback is not None:
        generation = getattr(estimator, "generation", None)
        if generation is None:  # compiler-backed estimators: ask the ensemble
            generation = getattr(
                getattr(estimator, "ensemble", None), "generation", 0
            )
        full = frozenset(query.tables)
        feedback.observe_execution(
            query.without_group_by(),
            estimate=raw_estimate,
            realized=execution.result_rows,
            latency_ns=latency_ns,
            generation=generation,
        )
        for gap in join_gaps:
            tables = frozenset(gap["tables"])
            if tables == full:
                continue  # the full-set observation above covers it
            feedback.observe_execution(
                oracle.subquery(tables),
                estimate=gap["estimate"],
                realized=gap["realized"],
                latency_ns=0,
                generation=generation,
            )
    return result


def execute_plan(plan, database, query):
    """Run ``plan`` for ``query`` and return a :class:`PlanExecution`.

    Filters are pushed down to the scans; every join is an inner hash
    join along the FK edge connecting its two inputs.
    """
    intermediates = []

    def run(node):
        if isinstance(node, BaseRelation):
            return _scan(database, query, node.table)
        if isinstance(node, Join):
            left = run(node.left)
            right = run(node.right)
            fk, parent_on_left = _join_edge(
                database.schema, left.tables, right.tables
            )
            joined = _hash_join(database, left, right, fk, parent_on_left)
            intermediates.append((sorted(joined.tables), len(joined)))
            return joined
        raise ExecutionError(f"unknown plan node {type(node)!r}")

    result = run(plan)
    return PlanExecution(result_rows=len(result), intermediates=intermediates)
