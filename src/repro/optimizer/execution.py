"""Physical execution of join plans (hash joins over the column store).

The enumerator scores plans with *estimated* intermediate sizes; this
module actually runs a plan bottom-up with in-memory hash joins and
reports the real ones.  That closes the validation loop: the C_out cost
of a plan under the true-cardinality oracle must equal the total number
of intermediate rows a real executor materialises, which the tests
assert exactly.

Plans execute inner-join semantics (the query class join ordering is
defined for); NULL join keys never match, per SQL.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine.filters import conjunction_mask
from repro.optimizer.plans import BaseRelation, Join


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed against the database."""


@dataclass
class _Relation:
    """An intermediate result: aligned row-index vectors per table."""

    rows: dict  # table name -> np.ndarray of row indices

    @property
    def tables(self):
        return frozenset(self.rows)

    def __len__(self):
        first = next(iter(self.rows.values()), np.empty(0, dtype=int))
        return int(first.shape[0])


@dataclass
class PlanExecution:
    """Outcome of running one plan: final size plus per-join sizes."""

    result_rows: int
    intermediates: list = field(default_factory=list)  # [(tables, n_rows)]

    @property
    def total_intermediate_rows(self):
        """Sum of all join output sizes -- the realised C_out."""
        return float(sum(n for _tables, n in self.intermediates))


def _scan(database, query, table_name):
    table = database.table(table_name)
    mask = conjunction_mask(table, query.predicates_on(table_name))
    return _Relation({table_name: np.flatnonzero(mask)})


def _join_edge(schema, left_tables, right_tables):
    for fk in schema.foreign_keys:
        if fk.parent in left_tables and fk.child in right_tables:
            return fk, True
        if fk.child in left_tables and fk.parent in right_tables:
            return fk, False
    raise ExecutionError(
        f"no FK edge joins {sorted(left_tables)} with {sorted(right_tables)}"
    )


def _hash_join(database, left, right, fk, parent_on_left):
    """Inner hash join of two relations along one FK edge."""
    parent_side, child_side = (left, right) if parent_on_left else (right, left)
    parent_keys = database.table(fk.parent).columns[fk.pk_column][
        parent_side.rows[fk.parent]
    ]
    child_keys = database.table(fk.child).columns[fk.fk_column][
        child_side.rows[fk.child]
    ]
    buckets = {}
    for position, key in enumerate(parent_keys):
        if np.isnan(key):
            continue
        buckets.setdefault(float(key), []).append(position)
    parent_positions = []
    child_positions = []
    for position, key in enumerate(child_keys):
        if np.isnan(key):
            continue
        for match in buckets.get(float(key), ()):
            parent_positions.append(match)
            child_positions.append(position)
    parent_positions = np.asarray(parent_positions, dtype=int)
    child_positions = np.asarray(child_positions, dtype=int)
    rows = {}
    for table, indices in parent_side.rows.items():
        rows[table] = indices[parent_positions]
    for table, indices in child_side.rows.items():
        rows[table] = indices[child_positions]
    return _Relation(rows)


@dataclass
class OptimizedExecution:
    """Outcome of :func:`optimize_and_execute`: the chosen plan, its
    estimated C_out, the (prefetched) oracle behind the choice, and the
    realised execution with true intermediate sizes."""

    plan: object
    estimated_cost: float
    oracle: object
    execution: "PlanExecution"
    latency_ns: int = 0

    @property
    def estimation_gap(self):
        """Realised C_out / estimated C_out (1.0 = perfectly estimated).

        A zero (or negative) estimate against realised rows is an
        *infinitely* wrong estimate, not a perfect one -- only the true
        0/0 case (nothing estimated, nothing materialised) reports 1.0.
        """
        realized = self.execution.total_intermediate_rows
        if self.estimated_cost <= 0:
            return math.inf if realized > 0 else 1.0
        return realized / self.estimated_cost


def optimize_and_execute(query, database, estimator, linear=False, batch=True,
                         feedback=None):
    """Optimise ``query`` under ``estimator`` and run the chosen plan.

    The estimator is wrapped in the same batched
    :class:`~repro.optimizer.cardinality.SubqueryCardinalities` oracle
    the plan-quality harness uses: one ``cardinality_batch`` call
    answers every sub-plan estimate of the enumeration (``batch=False``
    restores the serial memoised path), then the plan is executed with
    real hash joins.  Returns an :class:`OptimizedExecution`.

    ``feedback`` (a :class:`~repro.feedback.CorrectedEstimator`) closes
    the estimation loop: the query's own prefetched estimate, the
    realised result rows and the execution latency are recorded as one
    labeled observation the residual corrector can train on.
    """
    from repro.optimizer.cardinality import SubqueryCardinalities
    from repro.optimizer.enumeration import optimal_plan

    oracle = SubqueryCardinalities(estimator, query, batch=batch)
    plan, cost = optimal_plan(query, database.schema, oracle, linear=linear)
    start = time.perf_counter_ns()
    execution = execute_plan(plan, database, query)
    latency_ns = time.perf_counter_ns() - start
    result = OptimizedExecution(
        plan=plan, estimated_cost=cost, oracle=oracle, execution=execution,
        latency_ns=latency_ns,
    )
    if feedback is not None:
        generation = getattr(estimator, "generation", None)
        if generation is None:  # compiler-backed estimators: ask the ensemble
            generation = getattr(
                getattr(estimator, "ensemble", None), "generation", 0
            )
        feedback.observe_execution(
            query.without_group_by(),
            estimate=oracle(frozenset(query.tables)),
            realized=execution.result_rows,
            latency_ns=latency_ns,
            generation=generation,
        )
    return result


def execute_plan(plan, database, query):
    """Run ``plan`` for ``query`` and return a :class:`PlanExecution`.

    Filters are pushed down to the scans; every join is an inner hash
    join along the FK edge connecting its two inputs.
    """
    intermediates = []

    def run(node):
        if isinstance(node, BaseRelation):
            return _scan(database, query, node.table)
        if isinstance(node, Join):
            left = run(node.left)
            right = run(node.right)
            fk, parent_on_left = _join_edge(
                database.schema, left.tables, right.tables
            )
            joined = _hash_join(database, left, right, fk, parent_on_left)
            intermediates.append((sorted(joined.tables), len(joined)))
            return joined
        raise ExecutionError(f"unknown plan node {type(node)!r}")

    result = run(plan)
    return PlanExecution(result_rows=len(result), intermediates=intermediates)
