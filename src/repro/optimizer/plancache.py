"""A plan cache keyed on normalized query shape + model generations.

Planning a join order costs one estimator prefetch (a compiled sweep
per RSPN) plus the DP enumeration; serving workloads repeat the same
query shapes constantly.  :class:`PlanCache` memoises the chosen plan,
its estimated cost and the fully-prefetched cardinality oracle behind
it, keyed on

- the **normalized query shape**: the MSCN featurization of
  :class:`~repro.feedback.featurize.QueryFeaturizer` (tables, join
  edges, per-column normalized predicate ranges -- order-invariant, so
  ``a.x > 1 AND b.y < 2`` and its permutation share a plan), falling
  back to the whitespace-normalized SQL text for queries the
  featurizer cannot cover, and
- the **epoch**: the (ensemble generation, corrector generation) pair
  -- any data update or committed corrector training changes the
  estimates behind every cached plan, so the whole cache invalidates.

Entries are LRU-evicted; hit/miss/invalidation/eviction counters
mirror the serving result cache so operators can watch both through
``/stats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


def cache_epoch(estimator, feedback=None):
    """The invalidation epoch for plans computed under ``estimator``.

    ``(model generation, corrector generation)``: the model generation
    comes from the estimator itself (feedback wrappers expose their
    base model's) or its ensemble; the corrector generation is the
    feedback trainer's committed-training count, which is exactly when
    ``apply``-mode estimates -- and therefore plans -- change.
    """
    generation = getattr(estimator, "generation", None)
    if generation is None:
        generation = getattr(
            getattr(estimator, "ensemble", None), "generation", 0
        )
    trainings = 0
    if feedback is None:
        feedback = estimator  # the estimator may itself be the wrapper
    trainer = getattr(feedback, "trainer", None)
    if trainer is not None:
        trainings = getattr(trainer, "trainings", 0)
    return (generation, trainings)


class PlanCache:
    """LRU cache of ``(plan, estimated_cost, oracle)`` planning entries.

    ``featurizer`` (a :class:`~repro.feedback.featurize.QueryFeaturizer`)
    provides the shape key; without one -- or for queries it cannot
    featurize -- the whitespace-normalized query text keys the entry,
    which still catches verbatim repeats.  The caller passes the
    current epoch (see :func:`cache_epoch`) to every ``lookup`` /
    ``store``; an epoch change clears the cache and counts one
    invalidation, exactly like the serving result cache's
    generation-riding invalidation.
    """

    def __init__(self, featurizer=None, maxsize=128):
        self.featurizer = featurizer
        self.maxsize = int(maxsize)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._epoch = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def shape_key(self, query, linear=False):
        """The normalized shape key for ``query``.

        Featurized when possible: the layout fingerprint plus a digest
        of the (order-invariant) feature vector, so permuted predicates
        and alternate spellings of the same normalized shape share one
        entry.  ``linear`` is part of the key -- left-deep and bushy
        enumerations cache separately.
        """
        shape = None
        if self.featurizer is not None:
            from repro.feedback.featurize import FeaturizationError

            try:
                shape = "mscn:" + self.featurizer.signature(query)
            except FeaturizationError:
                shape = None
        if shape is None:
            shape = "sql:" + " ".join(query.describe().split())
        return (shape, bool(linear))

    # ------------------------------------------------------------------
    # Cache protocol
    # ------------------------------------------------------------------
    def lookup(self, query, epoch, linear=False):
        """The cached entry for ``query`` at ``epoch``, or ``None``."""
        key = self.shape_key(query, linear)
        with self._lock:
            self._sync_locked(epoch)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, query, entry, epoch, linear=False):
        """Cache ``entry`` for ``query``'s shape at ``epoch``."""
        key = self.shape_key(query, linear)
        with self._lock:
            self._sync_locked(epoch)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self):
        """Drop every entry (counted), e.g. on an explicit flush."""
        with self._lock:
            if self._entries:
                self._entries.clear()
            self.invalidations += 1

    def _sync_locked(self, epoch):
        if epoch == self._epoch:
            return
        if self._epoch is not None and self._entries:
            self._entries.clear()
            self.invalidations += 1
        self._epoch = epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self):
        with self._lock:
            return len(self._entries)

    def snapshot(self):
        """Counter snapshot for ``/stats`` (mirrors the result cache)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "epoch": list(self._epoch) if self._epoch is not None
                else None,
            }
