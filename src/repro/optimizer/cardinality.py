"""Cardinality oracles for the join enumerator.

The enumerator asks one question: "how many rows does the inner join of
this connected table subset produce, with the query's predicates
applied?".  :class:`SubqueryCardinalities` turns any estimator of the
batched protocol (see :mod:`repro.estimator`) -- the DeepDB compiler,
the Postgres-style baseline, random sampling, or the exact executor --
into an oracle over sub-queries of one query.

Two evaluation modes:

- **Batched prefetch** (default): before DP runs, every connected table
  subset of the query is enumerated, its pushed-down COUNT sub-query
  materialised, and the whole set answered with **one**
  ``cardinality_batch`` call.  For the compiled DeepDB path that means
  one flat-array bottom-up sweep per RSPN for *all* sub-plans of the
  query -- the shape learned-estimator work (Deep Sketches, Neo) shows
  matters most, because the optimizer loop requests thousands of
  sub-plan estimates per query.  Estimators without a native batch
  kernel answer the prefetch through the protocol's serial-loop
  fallback, so the oracle's observable behaviour never changes.
- **Serial memoisation** (``batch=False``): the PR-1 behaviour -- one
  scalar ``cardinality`` call per distinct subset, on demand.  Kept as
  the reference the property tests and the optimizer benchmarks compare
  the batched path against.
"""

from __future__ import annotations

from repro.engine.query import Query
from repro.estimator import cardinality_batch as _cardinality_batch


class SubqueryCardinalities:
    """Per-subset cardinalities of one query's sub-joins.

    ``batch=True`` enables the one-call prefetch (triggered by
    :func:`~repro.optimizer.enumeration.optimal_plan` through
    :meth:`prefetch`); ``batch=False`` preserves the serial memoised
    oracle.  ``batch_calls`` counts batched estimator invocations and
    ``estimator_calls`` counts sub-queries actually sent to the
    estimator, so benchmarks can report both modes' work.
    """

    def __init__(self, estimator, query: Query, batch: bool = True):
        if query.has_disjunctions:
            raise ValueError("join ordering requires a conjunctive query")
        self.estimator = estimator
        self.query = query
        self.batch = batch
        self.batch_calls = 0
        self.estimator_calls = 0
        self._cache: dict[frozenset, float] = {}
        self._raw: dict[frozenset, float] = {}

    def subquery(self, tables):
        """The COUNT sub-query over ``tables`` with pushed-down filters."""
        tables = tuple(sorted(tables))
        predicates = tuple(
            p for p in self.query.predicates if p.table in tables
        )
        return Query(tables=tables, predicates=predicates)

    def prefetch(self, schema):
        """Answer every connected-subset sub-query in one batched call.

        Enumerates the connected subsets of the query's tables under
        ``schema``'s FK edges (sizes >= 2 -- exactly the subsets the DP
        and the C_out cost model ask for; for a single-table query, the
        one singleton subset, so even that estimate is batched and
        counted), materialises their pushed-down sub-queries, and fills
        the cache from a single ``cardinality_batch`` call.  No-op when
        batching is disabled or everything is cached.
        """
        if not self.batch:
            return
        from repro.optimizer.enumeration import connected_subsets

        tables = sorted(set(self.query.tables))
        if len(tables) < 2:
            wanted = [frozenset(tables)] if tables else []
        else:
            by_size = connected_subsets(schema, tables)
            wanted = [
                subset
                for size in range(2, len(tables) + 1)
                for subset in by_size.get(size, ())
            ]
        subsets = [subset for subset in wanted if subset not in self._cache]
        if not subsets:
            return
        values = _cardinality_batch(
            self.estimator, [self.subquery(subset) for subset in subsets]
        )
        self.batch_calls += 1
        self.estimator_calls += len(subsets)
        for subset, value in zip(subsets, values):
            self._raw[subset] = float(value)
            self._cache[subset] = max(float(value), 1.0)

    def __call__(self, tables) -> float:
        """Estimated rows of the inner join over ``tables`` (>= 1)."""
        key = frozenset(tables)
        cached = self._cache.get(key)
        if cached is None:
            raw = float(self.estimator.cardinality(self.subquery(key)))
            cached = max(raw, 1.0)
            self.estimator_calls += 1
            self._raw[key] = raw
            self._cache[key] = cached
        return cached

    def raw_estimate(self, tables) -> float:
        """The estimator's *unclamped* estimate for ``tables``.

        The >= 1 clamp exists for the optimizer (C_out charges and cost
        ratios must not hit zero); feedback observations must log what
        the estimator actually said, so a true-zero estimate trains the
        corrector's low end on 0.0, not on the clamp.
        """
        key = frozenset(tables)
        if key not in self._raw:
            self(key)
        return self._raw[key]

    def patch(self, tables, realized) -> None:
        """Overwrite one subset's estimate with its realised truth.

        Called by mid-execution re-optimisation after a join
        materialises: the subset itself becomes exact, and the observed
        multiplicative error (realised / previous clamped estimate) is
        propagated to every cached estimate of a strict superset --
        those estimates were produced by the same model on a join that
        *contains* the misestimated one, so scaling them by the observed
        factor is the principled correction that lets the remainder DP
        actually change its mind (patching the already-sunk subset alone
        would provably re-derive the old plan under C_out).
        """
        key = frozenset(tables)
        realized = float(realized)
        previous = self._cache.get(key)
        self._raw[key] = realized
        self._cache[key] = max(realized, 1.0)
        if previous is None or previous <= 0:
            return
        factor = self._cache[key] / previous
        for other in list(self._cache):
            if key < other:
                self._cache[other] = max(self._cache[other] * factor, 1.0)
                if other in self._raw:
                    self._raw[other] *= factor

    @property
    def calls(self):
        """Number of distinct sub-queries estimated so far."""
        return len(self._cache)

    @property
    def estimates(self):
        """Immutable view of the per-subset estimates (for comparisons)."""
        return dict(self._cache)
