"""Cardinality oracles for the join enumerator.

The enumerator asks one question: "how many rows does the inner join of
this connected table subset produce, with the query's predicates
applied?".  :class:`SubqueryCardinalities` turns any estimator exposing
``cardinality(query)`` -- the DeepDB compiler, the Postgres-style
baseline, random sampling, or the exact executor -- into a memoised
oracle over sub-queries of one query.
"""

from __future__ import annotations

from repro.engine.query import Query


class SubqueryCardinalities:
    """Memoised per-subset cardinalities of one query's sub-joins."""

    def __init__(self, estimator, query: Query):
        if query.has_disjunctions:
            raise ValueError("join ordering requires a conjunctive query")
        self.estimator = estimator
        self.query = query
        self._cache: dict[frozenset, float] = {}

    def subquery(self, tables):
        """The COUNT sub-query over ``tables`` with pushed-down filters."""
        tables = tuple(sorted(tables))
        predicates = tuple(
            p for p in self.query.predicates if p.table in tables
        )
        return Query(tables=tables, predicates=predicates)

    def __call__(self, tables) -> float:
        """Estimated rows of the inner join over ``tables`` (>= 1)."""
        key = frozenset(tables)
        cached = self._cache.get(key)
        if cached is None:
            cached = max(float(self.estimator.cardinality(self.subquery(key))), 1.0)
            self._cache[key] = cached
        return cached

    @property
    def calls(self):
        """Number of distinct sub-queries estimated so far."""
        return len(self._cache)
