"""Plan-quality scoring: do estimation errors actually hurt plans?

The methodology follows Leis et al. ("How good are query optimizers,
really?"): optimise the query twice -- once with the estimator under
test, once with true cardinalities -- then score *both* plans under true
cardinalities.  The ratio

    suboptimality = C_out_true(plan chosen with estimates)
                    / C_out_true(optimal plan)

is 1.0 when the estimator's errors do not change the chosen plan (or
only change it to an equally good one) and grows as misestimates push
the optimizer into plans with bloated intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optimizer.cardinality import SubqueryCardinalities
from repro.optimizer.cost import cout_cost
from repro.optimizer.enumeration import optimal_plan


@dataclass
class PlanComparison:
    """Outcome of optimising one query with one estimator."""

    chosen_plan: object
    optimal_plan: object
    chosen_true_cost: float
    optimal_true_cost: float

    @property
    def suboptimality(self):
        if self.optimal_true_cost <= 0:
            return 1.0
        return self.chosen_true_cost / self.optimal_true_cost

    @property
    def picked_optimal(self):
        return self.suboptimality <= 1.0 + 1e-9


def plan_suboptimality(query, schema, estimator, executor, linear=False,
                       batch=True):
    """Compare the plan chosen under ``estimator`` to the true optimum.

    ``estimator`` and ``executor`` both expose ``cardinality(query)``
    (see :mod:`repro.estimator`); the executor is treated as ground
    truth.  Both oracles run the batched prefetch by default -- all
    sub-plan estimates of one optimisation are answered from a single
    ``cardinality_batch`` call; ``batch=False`` restores the serial
    memoised path.  Returns a :class:`PlanComparison`.
    """
    estimated = SubqueryCardinalities(estimator, query, batch=batch)
    true = SubqueryCardinalities(executor, query, batch=batch)
    chosen, _ = optimal_plan(query, schema, estimated, linear=linear)
    best, optimal_cost = optimal_plan(query, schema, true, linear=linear)
    chosen_cost = cout_cost(chosen, true)
    return PlanComparison(
        chosen_plan=chosen,
        optimal_plan=best,
        chosen_true_cost=chosen_cost,
        optimal_true_cost=optimal_cost,
    )
