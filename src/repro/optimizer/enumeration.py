"""Dynamic-programming join enumeration (System-R style).

For every connected subset of the query's tables (by increasing size)
the enumerator keeps the cheapest plan; a subset's plans are built from
every partition into two connected, FK-edge-adjacent parts.  With
``linear=True`` the right-hand input is restricted to single tables
(classic left-deep System-R); the default explores bushy plans.

Query graphs in this system are trees (FK joins along the schema
forest), so the number of connected subsets stays small and exact DP is
cheap up to the 6-way joins the paper's workloads use.

The DP core is shared between :func:`optimal_plan` (atoms are table
names) and :func:`replan_over_units` (atoms are already-materialised
execution units pinned as leaves during mid-execution re-optimisation).
"""

from __future__ import annotations

import itertools

from repro.optimizer.cost import PerJoinCost, cout_cost
from repro.optimizer.plans import BaseRelation, Join


class OptimizationError(RuntimeError):
    """Raised when no valid plan exists for a query."""


def _adjacency(schema, tables):
    adjacency = {table: set() for table in tables}
    for fk in schema.edges_between(tables):
        adjacency[fk.parent].add(fk.child)
        adjacency[fk.child].add(fk.parent)
    return adjacency


def _is_connected(subset, adjacency):
    subset = set(subset)
    if not subset:
        return False
    seen = {next(iter(subset))}
    frontier = list(seen)
    while frontier:
        table = frontier.pop()
        for neighbor in adjacency[table] & subset:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen == subset


def _connected_by_size(atoms, adjacency):
    """All connected subsets of ``atoms`` under ``adjacency``, by size."""
    atoms = sorted(atoms)
    by_size = {1: [frozenset((a,)) for a in atoms]}
    for size in range(2, len(atoms) + 1):
        by_size[size] = [
            frozenset(combo)
            for combo in itertools.combinations(atoms, size)
            if _is_connected(combo, adjacency)
        ]
    return by_size


def connected_subsets(schema, tables):
    """All connected subsets of ``tables``, grouped by size."""
    tables = sorted(tables)
    return _connected_by_size(tables, _adjacency(schema, tables))


def _partitions(subset, adjacency, linear):
    """Partitions of ``subset`` into two connected, adjacent halves.

    Yields unordered pairs once (the smaller side is canonicalised by
    sorted-tuple order).  ``linear`` restricts one side to size one.
    """
    subset = sorted(subset)
    anchor = subset[0]
    n = len(subset)
    for size in range(1, n):
        for combo in itertools.combinations(subset, size):
            left = frozenset(combo)
            right = frozenset(subset) - left
            if anchor not in left:
                continue  # canonical orientation; avoids double counting
            if linear and len(left) > 1 and len(right) > 1:
                continue
            if not _is_connected(left, adjacency):
                continue
            if not _is_connected(right, adjacency):
                continue
            if not _edge_between(left, right, adjacency):
                continue
            yield left, right


def _edge_between(left, right, adjacency):
    return any(adjacency[table] & right for table in left)


def _charge_for(cost, cardinality):
    """The per-subset join charge the DP accumulates under ``cost``.

    The DP is only exact for costs that decompose into per-join charges
    depending on the join's output subset alone: the default C_out
    (charge = estimated subset rows) and any
    :class:`~repro.optimizer.cost.PerJoinCost`.  An opaque
    ``cost(plan, cardinality)`` callable cannot be decomposed, and
    silently optimising C_out while *reporting* the custom cost would be
    dishonest -- reject it.
    """
    if cost is cout_cost:
        return cardinality
    if isinstance(cost, PerJoinCost) or hasattr(cost, "join_charge"):
        return lambda subset: cost.join_charge(subset, cardinality)
    raise OptimizationError(
        "optimal_plan can only optimise per-join decomposable costs "
        "(the default cout_cost or a PerJoinCost); got "
        f"{cost!r} -- the DP cannot select plans under an opaque "
        "cost(plan, cardinality) callable"
    )


def _dp_plan(atoms, adjacency, leaf_of, charge_of, linear):
    """Shared System-R DP over ``atoms`` (any sortable hashables).

    ``leaf_of(atom)`` builds the leaf plan node, ``charge_of(subset)``
    the join charge of materialising a connected subset.  Returns the
    best plan and its accumulated DP cost for the full atom set, or
    raises :class:`OptimizationError` when no plan covers it.
    """
    atoms = sorted(atoms)
    best: dict[frozenset, tuple] = {
        frozenset((a,)): (leaf_of(a), 0.0) for a in atoms
    }
    by_size = _connected_by_size(atoms, adjacency)
    for size in range(2, len(atoms) + 1):
        for subset in by_size[size]:
            subset_charge = charge_of(subset)
            champion = None
            for left, right in _partitions(subset, adjacency, linear):
                left_entry = best.get(left)
                right_entry = best.get(right)
                if left_entry is None or right_entry is None:
                    continue
                candidate_cost = left_entry[1] + right_entry[1] + subset_charge
                if champion is None or candidate_cost < champion[1]:
                    # Keep left-deep shape readable: big side on the left.
                    if len(left) >= len(right):
                        plan = Join(left_entry[0], right_entry[0])
                    else:
                        plan = Join(right_entry[0], left_entry[0])
                    champion = (plan, candidate_cost)
            if champion is not None:
                best[subset] = champion
    full = frozenset(atoms)
    if full not in best:
        raise OptimizationError(f"no plan covers {atoms}")
    return best[full]


def optimal_plan(query, schema, cardinality, linear=False, cost=cout_cost):
    """Cheapest join plan for ``query`` under a cardinality oracle.

    Returns ``(plan, estimated_cost)``.  ``cardinality`` maps table
    subsets to estimated join sizes (see
    :class:`~repro.optimizer.cardinality.SubqueryCardinalities`);
    ``cost`` defaults to C_out.  A custom cost must be a
    :class:`~repro.optimizer.cost.PerJoinCost` so the DP selects and
    reports under the *same* objective; opaque callables raise
    :class:`OptimizationError`.  Also raises when the query's tables
    are not connected by FK edges.

    Oracles exposing ``prefetch(schema)`` (the batched
    :class:`~repro.optimizer.cardinality.SubqueryCardinalities`) are
    prefetched before the DP runs, so every sub-plan estimate of the
    enumeration -- including the single-table case -- is answered from
    one ``cardinality_batch`` call; plain callables are consumed one
    subset at a time as before.
    """
    tables = sorted(set(query.tables))
    charge = _charge_for(cost, cardinality)
    adjacency = _adjacency(schema, tables)
    if not _is_connected(tables, adjacency):
        raise OptimizationError(f"tables {tables} are not connected by FK edges")
    prefetch = getattr(cardinality, "prefetch", None)
    if prefetch is not None:
        prefetch(schema)
    if len(tables) == 1:
        return BaseRelation(tables[0]), 0.0
    plan, _dp_cost = _dp_plan(
        tables, adjacency, BaseRelation, charge, linear
    )
    return plan, cost(plan, cardinality)


def replan_over_units(units, schema, cardinality, linear=False):
    """Re-optimise the remainder of a partially executed plan.

    ``units`` are the leaves still in play: already-materialised
    relations pinned as indivisible units plus the base relations not
    yet joined.  Each must expose ``.tables`` (the base tables it
    covers); the units must partition the query's table set.  Two units
    are adjacent when any FK edge crosses between their table sets, and
    a subset of units is charged ``cardinality(union of their tables)``
    -- every such union is a connected subset of the original query, so
    a prefetched oracle answers without new estimator calls.

    Returns ``(plan, dp_cost)`` where the plan's leaves are the unit
    objects themselves.
    """
    units = list(units)
    if not units:
        raise OptimizationError("no units to replan over")
    if len(units) == 1:
        return units[0], 0.0
    owner = {}
    for index, unit in enumerate(units):
        for table in unit.tables:
            if table in owner:
                raise OptimizationError(
                    f"units overlap on table {table!r}"
                )
            owner[table] = index
    indices = list(range(len(units)))
    adjacency = {index: set() for index in indices}
    for fk in schema.edges_between(sorted(owner)):
        left, right = owner[fk.parent], owner[fk.child]
        if left != right:
            adjacency[left].add(right)
            adjacency[right].add(left)
    if not _is_connected(indices, adjacency):
        raise OptimizationError(
            "remaining execution units are not connected by FK edges"
        )

    def charge(subset):
        tables = frozenset().union(*(units[i].tables for i in subset))
        return cardinality(tables)

    return _dp_plan(indices, adjacency, units.__getitem__, charge, linear)
