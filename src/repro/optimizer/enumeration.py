"""Dynamic-programming join enumeration (System-R style).

For every connected subset of the query's tables (by increasing size)
the enumerator keeps the cheapest plan; a subset's plans are built from
every partition into two connected, FK-edge-adjacent parts.  With
``linear=True`` the right-hand input is restricted to single tables
(classic left-deep System-R); the default explores bushy plans.

Query graphs in this system are trees (FK joins along the schema
forest), so the number of connected subsets stays small and exact DP is
cheap up to the 6-way joins the paper's workloads use.
"""

from __future__ import annotations

import itertools

from repro.optimizer.cost import cout_cost
from repro.optimizer.plans import BaseRelation, Join


class OptimizationError(RuntimeError):
    """Raised when no valid plan exists for a query."""


def _adjacency(schema, tables):
    adjacency = {table: set() for table in tables}
    for fk in schema.edges_between(tables):
        adjacency[fk.parent].add(fk.child)
        adjacency[fk.child].add(fk.parent)
    return adjacency


def _is_connected(subset, adjacency):
    subset = set(subset)
    if not subset:
        return False
    seen = {next(iter(subset))}
    frontier = list(seen)
    while frontier:
        table = frontier.pop()
        for neighbor in adjacency[table] & subset:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen == subset


def connected_subsets(schema, tables):
    """All connected subsets of ``tables``, grouped by size."""
    tables = sorted(tables)
    adjacency = _adjacency(schema, tables)
    by_size = {1: [frozenset((t,)) for t in tables]}
    for size in range(2, len(tables) + 1):
        by_size[size] = [
            frozenset(combo)
            for combo in itertools.combinations(tables, size)
            if _is_connected(combo, adjacency)
        ]
    return by_size


def _partitions(subset, adjacency, linear):
    """Partitions of ``subset`` into two connected, adjacent halves.

    Yields unordered pairs once (the smaller side is canonicalised by
    sorted-tuple order).  ``linear`` restricts one side to size one.
    """
    subset = sorted(subset)
    anchor = subset[0]
    n = len(subset)
    for size in range(1, n):
        for combo in itertools.combinations(subset, size):
            left = frozenset(combo)
            right = frozenset(subset) - left
            if anchor not in left:
                continue  # canonical orientation; avoids double counting
            if linear and len(left) > 1 and len(right) > 1:
                continue
            if not _is_connected(left, adjacency):
                continue
            if not _is_connected(right, adjacency):
                continue
            if not _edge_between(left, right, adjacency):
                continue
            yield left, right


def _edge_between(left, right, adjacency):
    return any(adjacency[table] & right for table in left)


def optimal_plan(query, schema, cardinality, linear=False, cost=cout_cost):
    """Cheapest join plan for ``query`` under a cardinality oracle.

    Returns ``(plan, estimated_cost)``.  ``cardinality`` maps table
    subsets to estimated join sizes (see
    :class:`~repro.optimizer.cardinality.SubqueryCardinalities`);
    ``cost`` defaults to C_out.  Raises :class:`OptimizationError` when
    the query's tables are not connected by FK edges.

    Oracles exposing ``prefetch(schema)`` (the batched
    :class:`~repro.optimizer.cardinality.SubqueryCardinalities`) are
    prefetched before the DP runs, so every sub-plan estimate of the
    enumeration is answered from one ``cardinality_batch`` call; plain
    callables are consumed one subset at a time as before.
    """
    tables = sorted(set(query.tables))
    if len(tables) == 1:
        return BaseRelation(tables[0]), 0.0
    adjacency = _adjacency(schema, tables)
    if not _is_connected(tables, adjacency):
        raise OptimizationError(f"tables {tables} are not connected by FK edges")
    prefetch = getattr(cardinality, "prefetch", None)
    if prefetch is not None:
        prefetch(schema)

    best: dict[frozenset, tuple] = {
        frozenset((t,)): (BaseRelation(t), 0.0) for t in tables
    }
    by_size = connected_subsets(schema, tables)
    for size in range(2, len(tables) + 1):
        for subset in by_size[size]:
            subset_rows = cardinality(subset)
            champion = None
            for left, right in _partitions(subset, adjacency, linear):
                left_entry = best.get(left)
                right_entry = best.get(right)
                if left_entry is None or right_entry is None:
                    continue
                candidate_cost = left_entry[1] + right_entry[1] + subset_rows
                if champion is None or candidate_cost < champion[1]:
                    # Keep left-deep shape readable: big side on the left.
                    if len(left) >= len(right):
                        plan = Join(left_entry[0], right_entry[0])
                    else:
                        plan = Join(right_entry[0], left_entry[0])
                    champion = (plan, candidate_cost)
            if champion is not None:
                best[subset] = champion
    full = frozenset(tables)
    if full not in best:
        raise OptimizationError(f"no plan covers all tables {tables}")
    plan, _dp_cost = best[full]
    return plan, cost(plan, cardinality)
