"""The C_out cost model.

``C_out`` charges every join its output cardinality and sums over the
plan: ``cost(P) = sum_{join j in P} |result(j)|``.  It is the standard
yardstick for isolating the effect of *cardinality estimation* on plan
choice (Leis et al.): it has no physical-operator or constant-factor
noise, is monotone in the intermediate sizes, and the optimal plan under
true cardinalities minimises total intermediate data.

Base-table scans are free; the final join is charged like any other, so
single-table and two-table queries have trivial plan spaces, as
expected.
"""

from __future__ import annotations

from repro.optimizer.plans import plan_joins


def cout_cost(plan, cardinality):
    """C_out of ``plan`` under the ``cardinality`` oracle.

    ``cardinality`` maps a table subset (any iterable of names) to the
    estimated row count of the inner join over that subset.
    """
    return float(sum(cardinality(join.tables) for join in plan_joins(plan)))


def intermediate_sizes(plan, cardinality):
    """The per-join output sizes of a plan, bottom-up (for reports)."""
    return [
        (sorted(join.tables), cardinality(join.tables))
        for join in plan_joins(plan)
    ]
