"""The C_out cost model.

``C_out`` charges every join its output cardinality and sums over the
plan: ``cost(P) = sum_{join j in P} |result(j)|``.  It is the standard
yardstick for isolating the effect of *cardinality estimation* on plan
choice (Leis et al.): it has no physical-operator or constant-factor
noise, is monotone in the intermediate sizes, and the optimal plan under
true cardinalities minimises total intermediate data.

Base-table scans are free; the final join is charged like any other, so
single-table and two-table queries have trivial plan spaces, as
expected.
"""

from __future__ import annotations

from repro.optimizer.plans import plan_joins


def cout_cost(plan, cardinality):
    """C_out of ``plan`` under the ``cardinality`` oracle.

    ``cardinality`` maps a table subset (any iterable of names) to the
    estimated row count of the inner join over that subset.
    """
    return float(sum(cardinality(join.tables) for join in plan_joins(plan)))


class PerJoinCost:
    """A cost model that charges every join through ``join_charge``.

    ``join_charge(tables, cardinality)`` maps one join's output table
    set (a frozenset) and the cardinality oracle to that join's charge;
    the plan cost is the sum over all joins.  This is the class of cost
    functions the DP enumerator can optimise *exactly* (the charge of a
    subset does not depend on how the subset was built), so
    :func:`~repro.optimizer.enumeration.optimal_plan` accepts custom
    costs only in this form -- an opaque ``cost(plan, cardinality)``
    callable cannot be decomposed into per-subset charges and is
    rejected there.
    """

    def __init__(self, join_charge):
        self.join_charge = join_charge

    def __call__(self, plan, cardinality):
        return float(sum(
            self.join_charge(join.tables, cardinality)
            for join in plan_joins(plan)
        ))


def intermediate_sizes(plan, cardinality):
    """The per-join output sizes of a plan, bottom-up (for reports)."""
    return [
        (sorted(join.tables), cardinality(join.tables))
        for join in plan_joins(plan)
    ]
