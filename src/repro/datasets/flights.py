"""Synthetic Flights dataset (single table, Kaggle flight-delays style).

One table with the columns the paper's AQP and ML experiments use::

    flights(f_id, year_date, unique_carrier, origin, dest,
            distance, dep_delay, taxi_out, taxi_in, air_time,
            arr_delay, month, day_of_week)

Planted structure (mirroring the real dataset's dependencies):

- ``distance`` is determined by the (origin, dest) pair,
- ``air_time`` is essentially distance / speed plus congestion noise,
- ``arr_delay = dep_delay + taxi_out + taxi_in`` drift plus noise,
- carriers differ systematically in delays and taxi times,
- about 1.5% of flights are cancelled: their delay/time columns are
  NULL (exercising NULL-aware aggregation),
- carrier and airport popularity are Zipf-skewed, producing the
  selectivity ladder (5% down to 0.01%) of the AQP queries.
"""

from __future__ import annotations

import numpy as np

from repro.engine.table import Database, Table
from repro.schema.schema import Attribute, SchemaGraph, TableSchema

ROWS_AT_SCALE_1 = 300_000
N_CARRIERS = 14
N_AIRPORTS = 50

NUMERIC_TARGETS = (
    "arr_delay",
    "dep_delay",
    "taxi_out",
    "taxi_in",
    "air_time",
    "distance",
)


def build_schema():
    schema = SchemaGraph()
    schema.add_table(
        TableSchema(
            "flights",
            [
                Attribute("f_id", "key"),
                Attribute("year_date", "numeric"),
                Attribute("unique_carrier", "categorical"),
                Attribute("origin", "categorical"),
                Attribute("dest", "categorical"),
                Attribute("distance", "numeric"),
                Attribute("dep_delay", "numeric"),
                Attribute("taxi_out", "numeric"),
                Attribute("taxi_in", "numeric"),
                Attribute("air_time", "numeric"),
                Attribute("arr_delay", "numeric"),
                Attribute("month", "numeric"),
                Attribute("day_of_week", "categorical"),
            ],
            primary_key="f_id",
        )
    )
    return schema


def _zipf_weights(n, a):
    weights = np.arange(1, n + 1, dtype=float) ** -a
    return weights / weights.sum()


def generate(scale=1.0, seed=0):
    """Generate the synthetic Flights database (scale=1 -> 300k rows)."""
    rng = np.random.default_rng(seed)
    schema = build_schema()
    database = Database(schema)

    n = max(int(ROWS_AT_SCALE_1 * scale), 2_000)
    year = rng.choice(np.arange(2005, 2020, dtype=float), size=n)
    carrier = rng.choice(N_CARRIERS, size=n, p=_zipf_weights(N_CARRIERS, 1.1))
    origin = rng.choice(N_AIRPORTS, size=n, p=_zipf_weights(N_AIRPORTS, 1.0))
    shift = rng.integers(1, N_AIRPORTS, size=n)
    dest = (origin + shift) % N_AIRPORTS

    # Distance determined by the airport pair (symmetric, stable per pair).
    pair_rng = np.random.default_rng(seed + 1)
    pair_distance = pair_rng.uniform(150, 2_800, size=(N_AIRPORTS, N_AIRPORTS))
    pair_distance = (pair_distance + pair_distance.T) / 2.0
    distance = pair_distance[origin, dest].round()

    month = rng.integers(1, 13, size=n).astype(float)
    day_of_week = rng.integers(0, 7, size=n)

    carrier_rng = np.random.default_rng(seed + 2)
    carrier_delay = carrier_rng.uniform(4.0, 30.0, size=N_CARRIERS)
    carrier_taxi = carrier_rng.uniform(12.0, 24.0, size=N_CARRIERS)
    winter = np.isin(month, (12.0, 1.0, 2.0))

    dep_delay = (
        rng.exponential(carrier_delay[carrier])
        - 2.0
        + 7.0 * winter
        + rng.normal(0.0, 3.0, n)
    ).round()
    taxi_out = np.maximum(
        (carrier_taxi[carrier] + 0.002 * distance + rng.normal(0, 4, n)).round(), 1.0
    )
    taxi_in = np.maximum((6.0 + rng.normal(0, 2.5, n)).round(), 1.0)
    air_time = np.maximum((distance / 7.8 + 18 + rng.normal(0, 8, n)).round(), 20.0)
    # Arrival delay drifts above departure delay with congestion (positive
    # mean difference, as in the real data), keeping F5.2's difference of
    # SUM aggregates well away from zero.
    arr_delay = (dep_delay + 0.8 * (taxi_out - 12.0) + rng.normal(0, 5, n)).round()

    # Cancelled flights: delay and time columns are NULL.
    cancelled = rng.random(n) < 0.015
    for column in (dep_delay, taxi_out, taxi_in, air_time, arr_delay):
        column[cancelled] = np.nan

    database.add_table(
        Table.from_columns(
            schema.table("flights"),
            {
                "f_id": np.arange(n, dtype=float),
                "year_date": year,
                "unique_carrier": [f"CARRIER_{c:02d}" for c in carrier],
                "origin": [f"AP{o:02d}" for o in origin],
                "dest": [f"AP{d:02d}" for d in dest],
                "distance": distance,
                "dep_delay": dep_delay,
                "taxi_out": taxi_out,
                "taxi_in": taxi_in,
                "air_time": air_time,
                "arr_delay": arr_delay,
                "month": month,
                "day_of_week": [f"DAY_{d}" for d in day_of_week],
            },
        )
    )
    return database


def feature_matrix(database, target, n_rows=None, seed=0):
    """(features dicts, target values) for the ML experiment (Exp. 3).

    Returns encoded feature dictionaries (qualified column names, as the
    RSPN regressor expects) plus the raw target vector, for all non-key
    columns except the target.
    """
    table = database.table("flights")
    feature_names = [
        a.name
        for a in table.schema.non_key_attributes
        if a.name != target
    ]
    rows = np.arange(table.n_rows)
    target_values = table.columns[target]
    keep = ~np.isnan(target_values)
    rows = rows[keep]
    if n_rows is not None and rows.shape[0] > n_rows:
        rng = np.random.default_rng(seed)
        rows = rng.choice(rows, size=n_rows, replace=False)
    dicts = []
    for r in rows:
        dicts.append(
            {f"flights.{name}": float(table.columns[name][r]) for name in feature_names}
        )
    return dicts, target_values[rows], [f"flights.{n}" for n in feature_names]
