"""Synthetic datasets mirroring the paper's evaluation workloads.

The paper evaluates on IMDb/JOB-light, the Star Schema Benchmark and the
Kaggle Flights dataset.  None are redistributable or downloadable
offline, so this package generates synthetic databases with the same
schemas and -- crucially -- the same *structural* properties that drive
the paper's results:

- cross-table attribute correlations (what breaks the independence
  assumptions of Postgres-style estimators),
- skewed fan-outs including zero-partner rows (what makes tuple factors
  and full-outer-join NULL handling matter),
- a selectivity ladder down to one-in-a-million predicates (what starves
  sample-based AQP baselines),
- numeric columns with realistic dependencies (what the ML tasks need).

Each module exposes ``generate(scale, seed)`` returning a
:class:`repro.engine.table.Database` and the workload builders used by
the benchmarks.
"""

from repro.datasets import flights, imdb, ssb, workloads

__all__ = ["flights", "imdb", "ssb", "workloads"]
