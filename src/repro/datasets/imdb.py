"""Synthetic IMDb: the JOB-light schema with controlled correlations.

JOB-light (Kipf et al.) joins the ``title`` fact table with up to five
dimension tables, all referencing ``title.id``::

    title(id, kind_id, production_year, season_nr)
    movie_companies(movie_id, company_id, company_type_id)
    cast_info(movie_id, role_id, nr_order)
    movie_info(movie_id, info_type_id)
    movie_info_idx(movie_id, info_type_id)
    movie_keyword(movie_id, keyword_id)

The generator plants the effects the paper's experiments rely on:

- ``production_year`` is skewed towards recent years and correlates with
  *everything*: newer titles have more cast entries, more info rows,
  different company types and different role distributions.  Estimators
  assuming attribute independence (Postgres) systematically err here.
- fan-outs are Poisson with year/kind-dependent rates and include zero
  (movies without companies/keywords), exercising the full-outer-join
  NULL machinery and tuple factors.
- ``season_nr`` is NULL for non-series titles (SQL NULL handling).
- ``kind_id`` functionally influences ``company_type_id`` and
  ``info_type_id`` distributions (cross-table correlation).
"""

from __future__ import annotations

import numpy as np

from repro.engine.join import compute_tuple_factors
from repro.engine.table import Database, Table
from repro.schema.schema import Attribute, SchemaGraph, TableSchema

TITLE_ROWS_AT_SCALE_1 = 100_000

DIMENSIONS = (
    "movie_companies",
    "cast_info",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
)


def build_schema():
    schema = SchemaGraph()
    schema.add_table(
        TableSchema(
            "title",
            [
                Attribute("id", "key"),
                Attribute("kind_id", "categorical"),
                Attribute("production_year", "numeric"),
                Attribute("season_nr", "numeric"),
            ],
            primary_key="id",
        )
    )
    schema.add_table(
        TableSchema(
            "movie_companies",
            [
                Attribute("id", "key"),
                Attribute("movie_id", "key"),
                Attribute("company_id", "categorical"),
                Attribute("company_type_id", "categorical"),
            ],
            primary_key="id",
        )
    )
    schema.add_table(
        TableSchema(
            "cast_info",
            [
                Attribute("id", "key"),
                Attribute("movie_id", "key"),
                Attribute("role_id", "categorical"),
                Attribute("nr_order", "numeric"),
            ],
            primary_key="id",
        )
    )
    schema.add_table(
        TableSchema(
            "movie_info",
            [
                Attribute("id", "key"),
                Attribute("movie_id", "key"),
                Attribute("info_type_id", "categorical"),
            ],
            primary_key="id",
        )
    )
    schema.add_table(
        TableSchema(
            "movie_info_idx",
            [
                Attribute("id", "key"),
                Attribute("movie_id", "key"),
                Attribute("info_type_id", "categorical"),
            ],
            primary_key="id",
        )
    )
    schema.add_table(
        TableSchema(
            "movie_keyword",
            [
                Attribute("id", "key"),
                Attribute("movie_id", "key"),
                Attribute("keyword_id", "categorical"),
            ],
            primary_key="id",
        )
    )
    for dimension in DIMENSIONS:
        schema.add_foreign_key("title", dimension, "movie_id")
    return schema


def _zipf_choice(rng, n_values, size, a=1.5):
    """Zipf-distributed categorical codes in ``[0, n_values)``."""
    ranks = np.arange(1, n_values + 1, dtype=float)
    weights = ranks**-a
    weights /= weights.sum()
    return rng.choice(n_values, size=size, p=weights)


def generate(scale=1.0, seed=0, with_tuple_factors=True):
    """Generate the synthetic IMDb database.

    ``scale=1.0`` yields 100k titles and roughly 900k total rows; the
    benchmarks use smaller scales to keep CI-friendly runtimes.
    """
    rng = np.random.default_rng(seed)
    schema = build_schema()
    database = Database(schema)

    n_titles = max(int(TITLE_ROWS_AT_SCALE_1 * scale), 1_000)
    title_ids = np.arange(n_titles, dtype=float)

    # kind: 0 movie, 1 tv series, 2 episode, 3 video, 4 tv movie, 5 short, 6 game
    kind = rng.choice(7, size=n_titles, p=[0.42, 0.08, 0.22, 0.08, 0.06, 0.12, 0.02])
    # production year: recency-skewed, episodes newer than movies
    base_year = rng.beta(3.0, 1.2, size=n_titles)
    year = (1930 + base_year * 89).round()
    year = np.where(kind == 2, np.minimum(year + rng.integers(0, 15, n_titles), 2019), year)
    recency = (year - 1930) / 89.0
    # season_nr: only series/episodes have one (NULL elsewhere)
    season = np.where(
        np.isin(kind, (1, 2)), rng.integers(1, 25, n_titles).astype(float), np.nan
    )
    title = Table.from_columns(
        schema.table("title"),
        {
            "id": title_ids,
            "kind_id": kind.astype(float),
            "production_year": year,
            "season_nr": season,
        },
    )
    database.add_table(title)

    # --- movie_companies ------------------------------------------------
    lam = 0.4 + 2.2 * recency + 0.8 * (kind == 0)
    count = rng.poisson(lam)
    owner = np.repeat(np.arange(n_titles), count)
    n = owner.shape[0]
    company_id = _zipf_choice(rng, 2_000, n, a=1.4)
    # company type: 0 production, 1 distribution; sharply correlated with
    # title age and kind (old non-movie titles are distribution-dominated).
    p_distribution = np.where(
        recency[owner] < 0.45, 0.85, np.where(kind[owner] == 0, 0.12, 0.5)
    )
    company_type = (rng.random(n) < p_distribution).astype(float)
    database.add_table(
        Table.from_columns(
            schema.table("movie_companies"),
            {
                "id": np.arange(n, dtype=float),
                "movie_id": owner.astype(float),
                "company_id": company_id.astype(float),
                "company_type_id": company_type,
            },
        )
    )

    # --- cast_info --------------------------------------------------------
    lam = 0.8 + 3.5 * recency + 1.0 * (kind == 2)
    count = rng.poisson(lam)
    owner = np.repeat(np.arange(n_titles), count)
    n = owner.shape[0]
    # 11 roles; the dominant roles shift sharply with the title's era
    # (old: actor/actress credits; mid: directors/composers; new:
    # writer/producer credits) -- a strong cross-table correlation.
    era = np.digitize(recency[owner], [0.45, 0.75])  # 0 old, 1 mid, 2 new
    era_distributions = np.array(
        [
            [0.55, 0.35, 0.03, 0.02, 0.01, 0.01, 0.01, 0.005, 0.005, 0.005, 0.005],
            [0.04, 0.04, 0.42, 0.35, 0.06, 0.03, 0.02, 0.01, 0.01, 0.01, 0.01],
            [0.02, 0.02, 0.04, 0.04, 0.32, 0.26, 0.12, 0.08, 0.05, 0.03, 0.02],
        ]
    )
    u = rng.random(n)
    cdf = np.cumsum(era_distributions, axis=1)[era]
    role = (u[:, None] > cdf).sum(axis=1).astype(float)
    nr_order = np.where(
        rng.random(n) < 0.25, np.nan, rng.integers(1, 50, n).astype(float)
    )
    database.add_table(
        Table.from_columns(
            schema.table("cast_info"),
            {
                "id": np.arange(n, dtype=float),
                "movie_id": owner.astype(float),
                "role_id": role,
                "nr_order": nr_order,
            },
        )
    )

    # --- movie_info -------------------------------------------------------
    lam = 0.7 + 2.8 * recency
    count = rng.poisson(lam)
    owner = np.repeat(np.arange(n_titles), count)
    n = owner.shape[0]
    # 110 info types in per-kind blocks of 15 (plus a shared tail), so the
    # info type distribution is strongly determined by the title's kind.
    block = _zipf_choice(rng, 15, n, a=1.3)
    shared_tail = rng.random(n) < 0.15
    info = np.where(
        shared_tail, 105 + _zipf_choice(rng, 5, n, a=1.3), kind[owner] * 15 + block
    )
    database.add_table(
        Table.from_columns(
            schema.table("movie_info"),
            {
                "id": np.arange(n, dtype=float),
                "movie_id": owner.astype(float),
                "info_type_id": info.astype(float),
            },
        )
    )

    # --- movie_info_idx ----------------------------------------------------
    lam = 0.3 + 1.2 * recency
    count = rng.poisson(lam)
    owner = np.repeat(np.arange(n_titles), count)
    n = owner.shape[0]
    # 5 index info types (ratings / votes ...); sharply era-dependent
    recent = recency[owner] > 0.6
    info = np.where(
        recent & (rng.random(n) < 0.9),
        rng.choice(5, size=n, p=[0.55, 0.35, 0.05, 0.03, 0.02]),
        rng.choice(5, size=n, p=[0.04, 0.06, 0.30, 0.30, 0.30]),
    )
    database.add_table(
        Table.from_columns(
            schema.table("movie_info_idx"),
            {
                "id": np.arange(n, dtype=float),
                "movie_id": owner.astype(float),
                "info_type_id": info.astype(float),
            },
        )
    )

    # --- movie_keyword -------------------------------------------------------
    lam = 0.5 + 2.0 * recency + 0.8 * (kind == 0)
    count = rng.poisson(lam)
    owner = np.repeat(np.arange(n_titles), count)
    n = owner.shape[0]
    # keyword vocabulary in per-kind blocks of 700 with a shared popular head
    shared_head = rng.random(n) < 0.25
    keyword = np.where(
        shared_head,
        _zipf_choice(rng, 100, n, a=1.2),
        100 + kind[owner] * 700 + _zipf_choice(rng, 700, n, a=1.25),
    )
    database.add_table(
        Table.from_columns(
            schema.table("movie_keyword"),
            {
                "id": np.arange(n, dtype=float),
                "movie_id": owner.astype(float),
                "keyword_id": keyword.astype(float),
            },
        )
    )

    if with_tuple_factors:
        compute_tuple_factors(database)
    return database


def split_database(database, fraction, mode="random", seed=0):
    """Split IMDb into (initial, holdout) databases for the update experiments.

    ``mode='random'`` removes a random ``fraction`` of *titles* (with all
    their dimension rows); ``mode='temporal'`` removes the most recent
    titles.  Returns ``(initial_db, holdout_row_sets)`` where the holdout
    is a dict table name -> boolean "held out" mask over the original rows.
    """
    title = database.table("title")
    n = title.n_rows
    if mode == "random":
        rng = np.random.default_rng(seed)
        held_out_titles = rng.random(n) < fraction
    elif mode == "temporal":
        years = title.columns["production_year"]
        cutoff = np.quantile(years, 1.0 - fraction) if fraction > 0 else np.inf
        held_out_titles = years >= cutoff
    else:
        raise ValueError(f"unknown split mode {mode!r}")

    held_out = {"title": held_out_titles}
    held_title_ids = set(title.columns["id"][held_out_titles].tolist())
    for dimension in DIMENSIONS:
        table = database.table(dimension)
        movie_ids = table.columns["movie_id"]
        held_out[dimension] = np.isin(movie_ids, list(held_title_ids))

    schema = build_schema()
    initial = Database(schema)
    for name in database.table_names():
        initial.add_table(database.table(name).select(~held_out[name]))
    compute_tuple_factors(initial)
    return initial, held_out
