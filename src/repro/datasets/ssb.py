"""Synthetic Star Schema Benchmark (O'Neil et al.).

Schema (classic SSB)::

    lineorder(lo_id, lo_custkey, lo_partkey, lo_suppkey, lo_orderdate,
              lo_quantity, lo_extendedprice, lo_discount, lo_revenue,
              lo_supplycost)
    customer(c_custkey, c_region, c_nation, c_city)
    supplier(s_suppkey, s_region, s_nation, s_city)
    part(p_partkey, p_mfgr, p_category, p_brand1)
    date(d_datekey, d_year, d_yearmonthnum, d_weeknuminyear, d_monthnuminyear)

The paper runs SSB at SF 500 (three billion fact rows); offline we keep
the schema, hierarchies and the *selectivity ladder* of the 13 standard
queries (3.4% down to 7e-7 in the original) at a laptop-scale fact
table.  Sample-starved AQP baselines fail on the selective queries for
the same reason they do in the paper.

Note: the SSB aggregate ``SUM(lo_extendedprice * lo_discount)`` is an
arithmetic expression, which the paper's query class excludes; like the
paper's evaluation we use the precomputed ``lo_revenue`` measure instead
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

import numpy as np

from repro.engine.join import compute_tuple_factors
from repro.engine.table import Database, Table
from repro.schema.schema import Attribute, SchemaGraph, TableSchema

LINEORDER_ROWS_AT_SCALE_1 = 300_000

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS_PER_REGION = 5
CITIES_PER_NATION = 4
N_MFGR = 5
CATEGORIES_PER_MFGR = 5
BRANDS_PER_CATEGORY = 10


def build_schema():
    schema = SchemaGraph()
    schema.add_table(
        TableSchema(
            "customer",
            [
                Attribute("c_custkey", "key"),
                Attribute("c_region", "categorical"),
                Attribute("c_nation", "categorical"),
                Attribute("c_city", "categorical"),
            ],
            primary_key="c_custkey",
        )
    )
    schema.add_table(
        TableSchema(
            "supplier",
            [
                Attribute("s_suppkey", "key"),
                Attribute("s_region", "categorical"),
                Attribute("s_nation", "categorical"),
                Attribute("s_city", "categorical"),
            ],
            primary_key="s_suppkey",
        )
    )
    schema.add_table(
        TableSchema(
            "part",
            [
                Attribute("p_partkey", "key"),
                Attribute("p_mfgr", "categorical"),
                Attribute("p_category", "categorical"),
                Attribute("p_brand1", "categorical"),
            ],
            primary_key="p_partkey",
        )
    )
    schema.add_table(
        TableSchema(
            "date",
            [
                Attribute("d_datekey", "key"),
                Attribute("d_year", "numeric"),
                Attribute("d_yearmonthnum", "numeric"),
                Attribute("d_weeknuminyear", "numeric"),
                Attribute("d_monthnuminyear", "numeric"),
            ],
            primary_key="d_datekey",
        )
    )
    schema.add_table(
        TableSchema(
            "lineorder",
            [
                Attribute("lo_id", "key"),
                Attribute("lo_custkey", "key"),
                Attribute("lo_partkey", "key"),
                Attribute("lo_suppkey", "key"),
                Attribute("lo_orderdate", "key"),
                Attribute("lo_quantity", "numeric"),
                Attribute("lo_extendedprice", "numeric"),
                Attribute("lo_discount", "numeric"),
                Attribute("lo_revenue", "numeric"),
                Attribute("lo_supplycost", "numeric"),
            ],
            primary_key="lo_id",
        )
    )
    schema.add_foreign_key("customer", "lineorder", "lo_custkey")
    schema.add_foreign_key("supplier", "lineorder", "lo_suppkey")
    schema.add_foreign_key("part", "lineorder", "lo_partkey")
    schema.add_foreign_key("date", "lineorder", "lo_orderdate")
    return schema


def _geography(rng, n):
    """(region, nation, city) labels with the SSB hierarchy."""
    region_idx = rng.choice(len(REGIONS), size=n)
    nation_idx = rng.integers(0, NATIONS_PER_REGION, size=n)
    city_idx = rng.integers(0, CITIES_PER_NATION, size=n)
    regions = [REGIONS[r] for r in region_idx]
    nations = [f"{REGIONS[r][:3]}_NATION{nn}" for r, nn in zip(region_idx, nation_idx)]
    cities = [
        f"{REGIONS[r][:3]}_N{nn}_CITY{c}"
        for r, nn, c in zip(region_idx, nation_idx, city_idx)
    ]
    return regions, nations, cities, region_idx


def generate(scale=1.0, seed=0, with_tuple_factors=True):
    """Generate the synthetic SSB database (scale=1 -> 300k fact rows)."""
    rng = np.random.default_rng(seed)
    schema = build_schema()
    database = Database(schema)

    n_fact = max(int(LINEORDER_ROWS_AT_SCALE_1 * scale), 5_000)
    n_customer = max(n_fact // 60, 200)
    n_supplier = max(n_fact // 150, 100)
    n_part = max(n_fact // 40, 200)

    c_region, c_nation, c_city, c_region_idx = _geography(rng, n_customer)
    database.add_table(
        Table.from_columns(
            schema.table("customer"),
            {
                "c_custkey": np.arange(n_customer, dtype=float),
                "c_region": c_region,
                "c_nation": c_nation,
                "c_city": c_city,
            },
        )
    )
    s_region, s_nation, s_city, s_region_idx = _geography(rng, n_supplier)
    database.add_table(
        Table.from_columns(
            schema.table("supplier"),
            {
                "s_suppkey": np.arange(n_supplier, dtype=float),
                "s_region": s_region,
                "s_nation": s_nation,
                "s_city": s_city,
            },
        )
    )

    mfgr_idx = rng.integers(0, N_MFGR, size=n_part)
    category_idx = rng.integers(0, CATEGORIES_PER_MFGR, size=n_part)
    brand_idx = rng.integers(0, BRANDS_PER_CATEGORY, size=n_part)
    database.add_table(
        Table.from_columns(
            schema.table("part"),
            {
                "p_partkey": np.arange(n_part, dtype=float),
                "p_mfgr": [f"MFGR#{m + 1}" for m in mfgr_idx],
                "p_category": [
                    f"MFGR#{m + 1}{c + 1}" for m, c in zip(mfgr_idx, category_idx)
                ],
                "p_brand1": [
                    f"MFGR#{m + 1}{c + 1}{b + 1:02d}"
                    for m, c, b in zip(mfgr_idx, category_idx, brand_idx)
                ],
            },
        )
    )

    # Date dimension: 7 years of weeks/months (1992-1998 as in SSB).
    years, months, weeks = [], [], []
    datekeys = []
    key = 0
    for y in range(1992, 1999):
        for m in range(1, 13):
            for d in range(1, 29):
                datekeys.append(key)
                years.append(y)
                months.append(m)
                weeks.append(((m - 1) * 28 + d) // 7 + 1)
                key += 1
    n_dates = len(datekeys)
    database.add_table(
        Table.from_columns(
            schema.table("date"),
            {
                "d_datekey": np.asarray(datekeys, dtype=float),
                "d_year": np.asarray(years, dtype=float),
                "d_yearmonthnum": np.asarray(
                    [y * 100 + m for y, m in zip(years, months)], dtype=float
                ),
                "d_weeknuminyear": np.asarray(weeks, dtype=float),
                "d_monthnuminyear": np.asarray(months, dtype=float),
            },
        )
    )

    # Fact table.  Mild correlations: European customers trade more with
    # European suppliers; discounts higher for large quantities; revenue
    # derived from price and discount.
    custkey = rng.integers(0, n_customer, size=n_fact)
    suppkey = rng.integers(0, n_supplier, size=n_fact)
    same_region = rng.random(n_fact) < 0.25
    matching = np.flatnonzero(same_region)
    if matching.size:
        supp_by_region = {
            r: np.flatnonzero(s_region_idx == r) for r in range(len(REGIONS))
        }
        for row in matching:
            pool = supp_by_region[c_region_idx[custkey[row]]]
            if pool.size:
                suppkey[row] = pool[rng.integers(0, pool.size)]
    partkey = rng.integers(0, n_part, size=n_fact)
    orderdate = rng.integers(0, n_dates, size=n_fact)
    quantity = rng.integers(1, 51, size=n_fact).astype(float)
    extendedprice = (rng.gamma(4.0, 900.0, size=n_fact) + 100).round()
    discount = np.clip(
        rng.poisson(np.where(quantity > 30, 5.0, 2.5)), 0, 10
    ).astype(float)
    revenue = (extendedprice * (1.0 - discount / 100.0)).round()
    supplycost = (extendedprice * rng.uniform(0.4, 0.7, size=n_fact)).round()
    database.add_table(
        Table.from_columns(
            schema.table("lineorder"),
            {
                "lo_id": np.arange(n_fact, dtype=float),
                "lo_custkey": custkey.astype(float),
                "lo_partkey": partkey.astype(float),
                "lo_suppkey": suppkey.astype(float),
                "lo_orderdate": orderdate.astype(float),
                "lo_quantity": quantity,
                "lo_extendedprice": extendedprice,
                "lo_discount": discount,
                "lo_revenue": revenue,
                "lo_supplycost": supplycost,
            },
        )
    )

    if with_tuple_factors:
        compute_tuple_factors(database)
    return database
