"""Workloads: JOB-light style queries, the synthetic generalisation set,
the 13 SSB standard queries and the 12 Flights AQP queries.

The original JOB-light file ships with the real IMDb snapshot; its 70
queries join ``title`` with 1-4 dimension tables under 1-4 predicates.
The builder below emits 70 queries with the same shape distribution
against the synthetic IMDb, seeded deterministically and filtered to
non-empty results (as all JOB-light queries are).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.executor import Executor
from repro.engine.query import Aggregate, Predicate, Query


@dataclass(frozen=True)
class NamedQuery:
    """A benchmark query; ``difference`` queries (SSB profit, Flights
    F5.2) are the difference of the aggregates of ``query`` and
    ``query2`` -- the paper's arithmetic-expression special case."""

    name: str
    query: Query
    query2: Query | None = None

    @property
    def is_difference(self):
        return self.query2 is not None


# ----------------------------------------------------------------------
# IMDb / JOB-light
# ----------------------------------------------------------------------
_IMDB_DIMENSIONS = (
    "movie_companies",
    "cast_info",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
)

_IMDB_PREDICATE_POOLS = {
    "title": ["production_year", "kind_id"],
    "movie_companies": ["company_type_id", "company_id"],
    "cast_info": ["role_id"],
    "movie_info": ["info_type_id"],
    "movie_info_idx": ["info_type_id"],
    "movie_keyword": ["keyword_id"],
}


def _imdb_predicate(rng, database, table, column):
    values = database.table(table).distinct_values(column, decoded=True)
    if column == "production_year":
        op = rng.choice(["<", ">", "<=", ">=", "BETWEEN", "="])
        year = int(rng.choice(values))
        if op == "BETWEEN":
            low = int(rng.choice(values))
            return Predicate(table, column, "BETWEEN", tuple(sorted((low, year))))
        return Predicate(table, column, str(op), year)
    if len(values) > 20 and rng.random() < 0.3:
        chosen = [values[i] for i in rng.choice(len(values), size=3, replace=False)]
        return Predicate(table, column, "IN", tuple(chosen))
    value = values[int(rng.integers(0, min(len(values), 30)))]
    return Predicate(table, column, "=", value)


def _imdb_query(rng, database, n_tables, n_predicates):
    dims = list(
        rng.choice(_IMDB_DIMENSIONS, size=n_tables - 1, replace=False)
    )
    tables = ["title"] + dims
    slots = []
    for table in tables:
        for column in _IMDB_PREDICATE_POOLS[table]:
            slots.append((table, column))
    rng.shuffle(slots)
    predicates = []
    for table, column in slots[:n_predicates]:
        predicates.append(_imdb_predicate(rng, database, table, column))
    return Query(tuple(tables), predicates=tuple(predicates))


def imdb_workload(
    database,
    n_queries,
    table_range=(2, 5),
    predicate_range=(1, 4),
    seed=0,
    min_cardinality=1.0,
):
    """Random IMDb workload with guaranteed non-empty results."""
    rng = np.random.default_rng(seed)
    executor = Executor(database)
    queries = []
    attempt = 0
    while len(queries) < n_queries and attempt < n_queries * 30:
        attempt += 1
        n_tables = int(rng.integers(table_range[0], table_range[1] + 1))
        n_predicates = int(rng.integers(predicate_range[0], predicate_range[1] + 1))
        query = _imdb_query(rng, database, n_tables, n_predicates)
        if executor.cardinality(query) >= min_cardinality:
            queries.append(
                NamedQuery(f"q{len(queries) + 1:03d}", query)
            )
    return queries


def job_light(database, seed=7):
    """70 JOB-light style queries (joins of 2-5 tables, 1-4 predicates)."""
    return imdb_workload(
        database, 70, table_range=(2, 5), predicate_range=(1, 4), seed=seed
    )


def generalisation_workload(database, n_queries=200, seed=11):
    """The paper's synthetic query set: 4-6 tables, 1-5 predicates
    (Figures 1 and 7)."""
    return imdb_workload(
        database, n_queries, table_range=(4, 6), predicate_range=(1, 5), seed=seed
    )


def parameter_workload(database, n_queries=200, seed=13):
    """Queries with 3-6 tables, 1-5 predicates (Figure 8)."""
    return imdb_workload(
        database, n_queries, table_range=(3, 6), predicate_range=(1, 5), seed=seed
    )


# ----------------------------------------------------------------------
# SSB standard queries (S1.1 - S4.3)
# ----------------------------------------------------------------------
def ssb_queries(database):
    """The 13 SSB queries, adapted to the supported query class.

    ``SUM(lo_extendedprice * lo_discount)`` becomes ``SUM(lo_revenue)``
    and the Q4 "profit" queries become difference queries
    ``SUM(lo_revenue) - SUM(lo_supplycost)`` (see DESIGN.md).  String
    BETWEEN on brands becomes an IN list over the same brand interval.
    """
    lo = "lineorder"
    revenue = Aggregate.sum(lo, "lo_revenue")
    supplycost = Aggregate.sum(lo, "lo_supplycost")

    def q(tables, preds, group_by=(), aggregate=revenue):
        return Query(
            tuple(tables),
            aggregate=aggregate,
            predicates=tuple(preds),
            group_by=tuple(group_by),
        )

    brands_22 = [f"MFGR#22{b:02d}" for b in range(3, 7)]
    queries = [
        NamedQuery(
            "S1.1",
            q(
                (lo, "date"),
                [
                    Predicate("date", "d_year", "=", 1993),
                    Predicate(lo, "lo_discount", "BETWEEN", (1, 3)),
                    Predicate(lo, "lo_quantity", "<", 25),
                ],
            ),
        ),
        NamedQuery(
            "S1.2",
            q(
                (lo, "date"),
                [
                    Predicate("date", "d_yearmonthnum", "=", 199401),
                    Predicate(lo, "lo_discount", "BETWEEN", (4, 6)),
                    Predicate(lo, "lo_quantity", "BETWEEN", (26, 35)),
                ],
            ),
        ),
        NamedQuery(
            "S1.3",
            q(
                (lo, "date"),
                [
                    Predicate("date", "d_weeknuminyear", "=", 6),
                    Predicate("date", "d_year", "=", 1994),
                    Predicate(lo, "lo_discount", "BETWEEN", (5, 7)),
                    Predicate(lo, "lo_quantity", "BETWEEN", (26, 35)),
                ],
            ),
        ),
        NamedQuery(
            "S2.1",
            q(
                (lo, "date", "part", "supplier"),
                [
                    Predicate("part", "p_category", "=", "MFGR#12"),
                    Predicate("supplier", "s_region", "=", "AMERICA"),
                ],
                group_by=[("date", "d_year"), ("part", "p_brand1")],
            ),
        ),
        NamedQuery(
            "S2.2",
            q(
                (lo, "date", "part", "supplier"),
                [
                    Predicate("part", "p_brand1", "IN", tuple(brands_22)),
                    Predicate("supplier", "s_region", "=", "ASIA"),
                ],
                group_by=[("date", "d_year"), ("part", "p_brand1")],
            ),
        ),
        NamedQuery(
            "S2.3",
            q(
                (lo, "date", "part", "supplier"),
                [
                    Predicate("part", "p_brand1", "=", "MFGR#2205"),
                    Predicate("supplier", "s_region", "=", "EUROPE"),
                ],
                group_by=[("date", "d_year"), ("part", "p_brand1")],
            ),
        ),
        NamedQuery(
            "S3.1",
            q(
                (lo, "customer", "supplier", "date"),
                [
                    Predicate("customer", "c_region", "=", "ASIA"),
                    Predicate("supplier", "s_region", "=", "ASIA"),
                    Predicate("date", "d_year", "BETWEEN", (1992, 1997)),
                ],
                group_by=[("customer", "c_nation"), ("date", "d_year")],
            ),
        ),
        NamedQuery(
            "S3.2",
            q(
                (lo, "customer", "supplier", "date"),
                [
                    Predicate("customer", "c_nation", "=", "AME_NATION1"),
                    Predicate("supplier", "s_nation", "=", "AME_NATION1"),
                    Predicate("date", "d_year", "BETWEEN", (1992, 1997)),
                ],
                group_by=[("customer", "c_city"), ("date", "d_year")],
            ),
        ),
        NamedQuery(
            "S3.3",
            q(
                (lo, "customer", "supplier", "date"),
                [
                    Predicate(
                        "customer", "c_city", "IN", ("EUR_N1_CITY1", "EUR_N1_CITY5")
                    ),
                    Predicate(
                        "supplier", "s_city", "IN", ("EUR_N1_CITY1", "EUR_N1_CITY5")
                    ),
                    Predicate("date", "d_year", "BETWEEN", (1992, 1997)),
                ],
                group_by=[("customer", "c_city"), ("date", "d_year")],
            ),
        ),
        NamedQuery(
            "S3.4",
            q(
                (lo, "customer", "supplier", "date"),
                [
                    Predicate(
                        "customer", "c_city", "IN", ("EUR_N1_CITY1", "EUR_N1_CITY5")
                    ),
                    Predicate(
                        "supplier", "s_city", "IN", ("EUR_N1_CITY1", "EUR_N1_CITY5")
                    ),
                    Predicate("date", "d_yearmonthnum", "=", 199712),
                ],
                group_by=[("customer", "c_city"), ("date", "d_year")],
            ),
        ),
        NamedQuery(
            "S4.1",
            q(
                (lo, "customer", "supplier", "part", "date"),
                [
                    Predicate("customer", "c_region", "=", "AMERICA"),
                    Predicate("supplier", "s_region", "=", "AMERICA"),
                    Predicate("part", "p_mfgr", "IN", ("MFGR#1", "MFGR#2")),
                ],
                group_by=[("date", "d_year"), ("customer", "c_nation")],
            ),
            query2=q(
                (lo, "customer", "supplier", "part", "date"),
                [
                    Predicate("customer", "c_region", "=", "AMERICA"),
                    Predicate("supplier", "s_region", "=", "AMERICA"),
                    Predicate("part", "p_mfgr", "IN", ("MFGR#1", "MFGR#2")),
                ],
                group_by=[("date", "d_year"), ("customer", "c_nation")],
                aggregate=supplycost,
            ),
        ),
        NamedQuery(
            "S4.2",
            q(
                (lo, "customer", "supplier", "part", "date"),
                [
                    Predicate("customer", "c_region", "=", "AMERICA"),
                    Predicate("supplier", "s_region", "=", "AMERICA"),
                    Predicate("date", "d_year", "IN", (1997, 1998)),
                    Predicate("part", "p_mfgr", "IN", ("MFGR#1", "MFGR#2")),
                ],
                group_by=[("date", "d_year"), ("supplier", "s_nation")],
            ),
            query2=q(
                (lo, "customer", "supplier", "part", "date"),
                [
                    Predicate("customer", "c_region", "=", "AMERICA"),
                    Predicate("supplier", "s_region", "=", "AMERICA"),
                    Predicate("date", "d_year", "IN", (1997, 1998)),
                    Predicate("part", "p_mfgr", "IN", ("MFGR#1", "MFGR#2")),
                ],
                group_by=[("date", "d_year"), ("supplier", "s_nation")],
                aggregate=supplycost,
            ),
        ),
        NamedQuery(
            "S4.3",
            q(
                (lo, "customer", "supplier", "part", "date"),
                [
                    Predicate("supplier", "s_nation", "=", "AME_NATION2"),
                    Predicate("part", "p_category", "=", "MFGR#14"),
                    Predicate("date", "d_year", "IN", (1997, 1998)),
                ],
                group_by=[("date", "d_year"), ("supplier", "s_city")],
            ),
        ),
    ]
    return queries


# ----------------------------------------------------------------------
# Flights AQP queries (F1.1 - F5.2)
# ----------------------------------------------------------------------
def flights_queries(database):
    """12 Flights queries, selectivities from ~100% down to ~0.01%."""
    f = "flights"

    def q(aggregate, preds=(), group_by=()):
        return Query(
            (f,),
            aggregate=aggregate,
            predicates=tuple(preds),
            group_by=tuple(group_by),
        )

    count = Aggregate.count()
    return [
        NamedQuery("F1.1", q(count, group_by=[(f, "unique_carrier")])),
        NamedQuery(
            "F1.2",
            q(Aggregate.avg(f, "dep_delay"), group_by=[(f, "unique_carrier")]),
        ),
        NamedQuery(
            "F2.1",
            q(
                Aggregate.avg(f, "arr_delay"),
                [Predicate(f, "year_date", ">=", 2015)],
                group_by=[(f, "unique_carrier")],
            ),
        ),
        NamedQuery(
            "F2.2",
            q(
                count,
                [Predicate(f, "dest", "=", "AP05")],
                group_by=[(f, "unique_carrier")],
            ),
        ),
        NamedQuery(
            "F2.3",
            q(
                Aggregate.sum(f, "distance"),
                [Predicate(f, "year_date", "=", 2018)],
                group_by=[(f, "month")],
            ),
        ),
        NamedQuery(
            "F3.1",
            q(
                Aggregate.avg(f, "taxi_out"),
                [
                    Predicate(f, "origin", "=", "AP03"),
                    Predicate(f, "month", "IN", (6, 7, 8)),
                ],
            ),
        ),
        NamedQuery(
            "F3.2",
            q(
                Aggregate.avg(f, "arr_delay"),
                [
                    Predicate(f, "unique_carrier", "=", "CARRIER_05"),
                    Predicate(f, "dest", "=", "AP11"),
                ],
            ),
        ),
        NamedQuery(
            "F3.3",
            q(
                count,
                [
                    Predicate(f, "origin", "=", "AP21"),
                    Predicate(f, "dest", "=", "AP33"),
                ],
            ),
        ),
        NamedQuery(
            "F4.1",
            q(
                Aggregate.sum(f, "air_time"),
                [
                    Predicate(f, "unique_carrier", "=", "CARRIER_09"),
                    Predicate(f, "year_date", ">=", 2017),
                ],
                group_by=[(f, "year_date")],
            ),
        ),
        NamedQuery(
            "F4.2",
            q(
                Aggregate.avg(f, "dep_delay"),
                [
                    Predicate(f, "month", "=", 1),
                    Predicate(f, "day_of_week", "=", "DAY_1"),
                    Predicate(f, "origin", "=", "AP02"),
                ],
            ),
        ),
        NamedQuery(
            "F5.1",
            q(
                Aggregate.sum(f, "arr_delay"),
                [Predicate(f, "year_date", "=", 2019)],
                group_by=[(f, "unique_carrier")],
            ),
        ),
        NamedQuery(
            "F5.2",
            q(
                Aggregate.sum(f, "arr_delay"),
                [Predicate(f, "unique_carrier", "=", "CARRIER_03")],
            ),
            query2=q(
                Aggregate.sum(f, "dep_delay"),
                [Predicate(f, "unique_carrier", "=", "CARRIER_03")],
            ),
        ),
    ]
