"""Tests for probabilistic query compilation (Section 4, Theorems 1-2).

The key instrument is :class:`EmpiricalRSPN`: an RSPN whose expectation
operator is evaluated *exactly* on the materialised full outer join
instead of a learned SPN.  With a perfect density model, Theorem 1
(Cases 1 and 2) must reproduce exact query results, and Theorem 2 (Case
3) must be exact whenever its conditional-independence premise holds by
construction.  This separates the compilation math from SPN
approximation error.
"""

import numpy as np
import pytest

from repro.core.compilation import CompilationError, ProbabilisticQueryCompiler
from repro.core.ensemble import EnsembleConfig, SPNEnsemble, learn_ensemble
from repro.core.leaves import product_transform
from repro.engine.executor import Executor
from repro.engine.join import (
    full_outer_join_size,
    join_frame,
    join_learning_columns,
    materialize_full_outer_join,
)
from repro.engine.query import Aggregate, Predicate, Query
from tests.conftest import build_customer_orders


class EmpiricalRSPN:
    """Oracle 'RSPN': exact expectations over the materialised join."""

    def __init__(self, database, tables):
        self.tables = frozenset(tables)
        self.full_size = full_outer_join_size(database, list(tables))
        self.internal_edges = database.schema.edges_between(list(tables))
        self.column_names = join_learning_columns(database, list(tables))
        if len(tables) == 1:
            table = database.table(list(tables)[0])
            self._data = np.column_stack(
                [table.columns[c.split(".", 1)[1]] for c in self.column_names]
            )
        else:
            join = materialize_full_outer_join(database, list(tables))
            self._data = join_frame(join, self.column_names)
        self.sample_size = float(self._data.shape[0])
        self._index = {name: i for i, name in enumerate(self.column_names)}

    @property
    def is_join_model(self):
        return len(self.tables) > 1

    def has_column(self, name):
        return name in self._index

    def expectation(self, conditions=None, transforms=None):
        values = np.ones(self._data.shape[0])
        for name, rng in (conditions or {}).items():
            column = self._data[:, self._index[name]]
            mask = np.array([rng.contains(v) for v in column])
            values = values * mask
        for name, transform_list in (transforms or {}).items():
            column = self._data[:, self._index[name]]
            transform = product_transform(transform_list)
            contribution = np.where(
                np.isnan(column), transform.null_value, transform.fn(np.where(np.isnan(column), 1.0, column))
            )
            values = values * contribution
        return float(values.mean())


def oracle_ensemble(database, table_sets):
    ensemble = SPNEnsemble(database)
    for tables in table_sets:
        ensemble.add(EmpiricalRSPN(database, tables))
    return ensemble


@pytest.fixture(scope="module")
def db():
    return build_customer_orders(n_customers=300, with_orderlines=True, seed=21)


@pytest.fixture(scope="module")
def executor(db):
    return Executor(db)


def q_count(tables, *predicates):
    return Query(tuple(tables), predicates=tuple(predicates))


class TestCase1And2Exact:
    """With a perfect model, Theorem 1 is exact for any predicate set."""

    def test_single_table_exact(self, db, executor):
        compiler = ProbabilisticQueryCompiler(oracle_ensemble(db, [["customer"]]))
        query = q_count(["customer"], Predicate("customer", "region", "=", "EU"))
        assert compiler.estimate_count(query).value == pytest.approx(
            executor.cardinality(query)
        )

    def test_join_query_on_matching_rspn(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders"]])
        )
        query = q_count(
            ["customer", "orders"],
            Predicate("customer", "region", "=", "EU"),
            Predicate("orders", "channel", "=", "ONLINE"),
        )
        assert compiler.estimate_count(query).value == pytest.approx(
            executor.cardinality(query)
        )

    def test_single_table_query_on_larger_rspn(self, db, executor):
        """Case 2: tuple-factor normalisation undoes join duplication."""
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders"]])
        )
        query = q_count(["customer"], Predicate("customer", "region", "=", "EU"))
        assert compiler.estimate_count(query).value == pytest.approx(
            executor.cardinality(query)
        )

    def test_two_table_query_on_three_table_rspn(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders", "orderline"]])
        )
        query = q_count(
            ["customer", "orders"],
            Predicate("orders", "channel", "=", "STORE"),
        )
        assert compiler.estimate_count(query).value == pytest.approx(
            executor.cardinality(query)
        )

    def test_middle_table_query_on_three_table_rspn(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders", "orderline"]])
        )
        query = q_count(["orders"], Predicate("orders", "channel", "=", "ONLINE"))
        assert compiler.estimate_count(query).value == pytest.approx(
            executor.cardinality(query)
        )

    def test_leaf_table_query_on_three_table_rspn(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders", "orderline"]])
        )
        query = q_count(["orderline"], Predicate("orderline", "qty", ">", 5))
        assert compiler.estimate_count(query).value == pytest.approx(
            executor.cardinality(query)
        )

    def test_empty_predicate_range_returns_zero(self, db):
        compiler = ProbabilisticQueryCompiler(oracle_ensemble(db, [["customer"]]))
        query = q_count(
            ["customer"],
            Predicate("customer", "age", ">", 100),
            Predicate("customer", "age", "<", 50),
        )
        assert compiler.estimate_count(query).value == 0.0


class TestPaperExampleQ2:
    """Query Q2 of the paper: count of European online orders."""

    def build_paper_db(self):
        from tests.test_join import paper_example_db
        from repro.engine.join import compute_tuple_factors

        database = paper_example_db()
        compute_tuple_factors(database)
        return database

    def test_case1_full_outer_join_formula(self):
        """|C join O| * P(online, europe, N_C, N_O) = 5 * 1/5 = 1."""
        database = self.build_paper_db()
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(database, [["customer", "orders"]])
        )
        query = q_count(
            ["customer", "orders"],
            Predicate("customer", "c_region", "=", "EUROPE"),
            Predicate("orders", "o_channel", "=", "ONLINE"),
        )
        assert compiler.estimate_count(query).value == pytest.approx(1.0)

    def test_case2_customer_count(self):
        """European customers via the join RSPN = 2 (Section 4.1)."""
        database = self.build_paper_db()
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(database, [["customer", "orders"]])
        )
        query = q_count(["customer"], Predicate("customer", "c_region", "=", "EUROPE"))
        assert compiler.estimate_count(query).value == pytest.approx(2.0)

    def test_case3_combination(self):
        """Separate customer and order RSPNs combine to 1 (Section 4.1)."""
        database = self.build_paper_db()
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(database, [["customer"], ["orders"]])
        )
        query = q_count(
            ["customer", "orders"],
            Predicate("customer", "c_region", "=", "EUROPE"),
            Predicate("orders", "o_channel", "=", "ONLINE"),
        )
        assert compiler.estimate_count(query).value == pytest.approx(1.0)


class TestCase3:
    def test_exact_under_independence(self):
        """Uniform fan-out and independent predicates: Theorem 2 is exact."""
        rng = np.random.default_rng(0)
        from repro.engine.table import Database, Table
        from repro.schema.schema import Attribute, SchemaGraph, TableSchema
        from repro.engine.join import compute_tuple_factors

        schema = SchemaGraph()
        schema.add_table(
            TableSchema(
                "a",
                [Attribute("id", "key"), Attribute("color", "categorical")],
                primary_key="id",
            )
        )
        schema.add_table(
            TableSchema(
                "b",
                [
                    Attribute("id", "key"),
                    Attribute("a_id", "key"),
                    Attribute("shape", "categorical"),
                ],
                primary_key="id",
            )
        )
        schema.add_foreign_key("a", "b", "a_id")
        n = 200
        database = Database(schema)
        database.add_table(
            Table.from_columns(
                schema.table("a"),
                {
                    "id": np.arange(n, dtype=float),
                    "color": ["red" if i % 2 else "blue" for i in range(n)],
                },
            )
        )
        owner = np.repeat(np.arange(n), 2)  # constant fan-out of 2
        database.add_table(
            Table.from_columns(
                schema.table("b"),
                {
                    "id": np.arange(2 * n, dtype=float),
                    "a_id": owner.astype(float),
                    # each parent has exactly one square and one circle, so
                    # shape is independent of color by construction
                    "shape": ["square" if i % 2 == 0 else "circle" for i in range(2 * n)],
                },
            )
        )
        compute_tuple_factors(database)
        compiler = ProbabilisticQueryCompiler(oracle_ensemble(database, [["a"], ["b"]]))
        query = q_count(
            ["a", "b"],
            Predicate("a", "color", "=", "red"),
            Predicate("b", "shape", "=", "circle"),
        )
        assert compiler.estimate_count(query).value == pytest.approx(
            Executor(database).cardinality(query)
        )

    def test_three_table_chain_from_singles(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer"], ["orders"], ["orderline"]])
        )
        query = q_count(
            ["customer", "orders", "orderline"],
            Predicate("orderline", "qty", ">", 5),
        )
        true = executor.cardinality(query)
        estimate = compiler.estimate_count(query).value
        assert estimate == pytest.approx(true, rel=0.15)

    def test_parent_direction_expansion(self, db, executor):
        """Anchor on orders, expand to the parent customer table."""
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer"], ["orders", "orderline"]])
        )
        query = q_count(
            ["customer", "orders"],
            Predicate("customer", "region", "=", "EU"),
            Predicate("orders", "channel", "=", "ONLINE"),
        )
        true = executor.cardinality(query)
        estimate = compiler.estimate_count(query).value
        # predicates are correlated across tables, so Case 3 approximates
        assert estimate == pytest.approx(true, rel=0.35)

    def test_uncoverable_query_raises(self, db):
        compiler = ProbabilisticQueryCompiler(oracle_ensemble(db, [["customer"]]))
        with pytest.raises(CompilationError):
            compiler.estimate_count(q_count(["customer", "orders"]))


class TestAvgSumGroupBy:
    def test_avg_exact_on_matching_rspn(self, db, executor):
        compiler = ProbabilisticQueryCompiler(oracle_ensemble(db, [["customer"]]))
        query = Query(
            ("customer",),
            aggregate=Aggregate.avg("customer", "age"),
            predicates=(Predicate("customer", "region", "=", "EU"),),
        )
        assert compiler.estimate_avg(query).value == pytest.approx(
            executor.execute(query)
        )

    def test_avg_with_factor_normalisation(self, db, executor):
        """AVG over a single table served from the join RSPN (paper 4.2)."""
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders"]])
        )
        query = Query(
            ("customer",),
            aggregate=Aggregate.avg("customer", "age"),
            predicates=(Predicate("customer", "region", "=", "EU"),),
        )
        assert compiler.estimate_avg(query).value == pytest.approx(
            executor.execute(query)
        )

    def test_avg_over_join_weights_by_fanout(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders"]])
        )
        query = Query(
            ("customer", "orders"),
            aggregate=Aggregate.avg("customer", "age"),
        )
        assert compiler.estimate_avg(query).value == pytest.approx(
            executor.execute(query)
        )

    def test_sum_equals_count_times_avg(self, db, executor):
        compiler = ProbabilisticQueryCompiler(oracle_ensemble(db, [["customer"]]))
        query = Query(
            ("customer",),
            aggregate=Aggregate.sum("customer", "age"),
            predicates=(Predicate("customer", "region", "=", "ASIA"),),
        )
        assert compiler.estimate_sum(query).value == pytest.approx(
            executor.execute(query)
        )

    def test_group_by_counts(self, db, executor):
        compiler = ProbabilisticQueryCompiler(oracle_ensemble(db, [["customer"]]))
        query = Query(("customer",), group_by=(("customer", "region"),))
        estimated = compiler.answer(query)
        true = executor.execute(query)
        assert set(estimated) == set(true)
        for key, value in true.items():
            assert estimated[key] == pytest.approx(value)

    def test_group_by_avg_across_join(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders"]])
        )
        query = Query(
            ("customer", "orders"),
            aggregate=Aggregate.avg("customer", "age"),
            group_by=(("orders", "channel"),),
        )
        estimated = compiler.answer(query)
        true = executor.execute(query)
        for key, value in true.items():
            assert estimated[key] == pytest.approx(value, rel=1e-6)


class TestOuterJoinCompilation:
    def test_full_outer_count(self, db, executor):
        compiler = ProbabilisticQueryCompiler(
            oracle_ensemble(db, [["customer", "orders"]])
        )
        query = Query(("customer", "orders"), join_kind="full_outer")
        assert compiler.estimate_count(query).value == pytest.approx(
            executor.execute(query)
        )


class TestLearnedEndToEnd:
    """The full pipeline with actually learned RSPNs (statistical bounds)."""

    def test_learned_ensemble_median_qerror(self, db, executor):
        ensemble = learn_ensemble(db, EnsembleConfig(sample_size=20_000))
        compiler = ProbabilisticQueryCompiler(ensemble)
        queries = [
            q_count(["customer"], Predicate("customer", "region", "=", "EU")),
            q_count(["customer"], Predicate("customer", "age", "<", 40)),
            q_count(
                ["customer", "orders"],
                Predicate("customer", "region", "=", "ASIA"),
                Predicate("orders", "channel", "=", "STORE"),
            ),
            q_count(["orders"], Predicate("orders", "channel", "=", "ONLINE")),
        ]
        from repro.evaluation.metrics import q_error

        errors = [
            q_error(executor.cardinality(q), compiler.cardinality(q)) for q in queries
        ]
        assert float(np.median(errors)) < 1.6
