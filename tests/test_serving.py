"""Serving subsystem: coalesced == serial, sessions, registry, HTTP.

The ordering inside this module matters: the model-mutating tests
(inserts, generation bumps) run in the classes at the bottom so the
equivalence tests above them observe an untouched model.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.ensemble import EnsembleConfig
from repro.deepdb import DeepDB
from repro.serving import (
    AsyncDeepDB,
    ModelRegistry,
    ReadWriteLock,
    Request,
    ServerOverloadedError,
    normalize_sql,
    start_server,
)
from tests.conftest import build_customer_orders

CARDINALITY_SQLS = [
    "SELECT COUNT(*) FROM customer WHERE customer.age > 40",
    "SELECT COUNT(*) FROM customer WHERE customer.region = 'EU'",
    "SELECT COUNT(*) FROM orders WHERE orders.channel = 'ONLINE'",
    "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_id = o.c_id "
    "AND c.region = 'ASIA'",
    "SELECT COUNT(*) FROM customer WHERE customer.age BETWEEN 25 AND 35",
]
APPROXIMATE_SQLS = [
    "SELECT AVG(customer.age) FROM customer WHERE customer.region = 'EU'",
    "SELECT AVG(customer.age) FROM customer GROUP BY customer.region",
    "SELECT SUM(customer.age) FROM customer WHERE customer.age < 50",
]
PLAN_SQL = (
    "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_id = o.c_id"
)


@pytest.fixture(scope="module")
def served_deepdb():
    database = build_customer_orders(n_customers=600, seed=0)
    return DeepDB.learn(database, EnsembleConfig(sample_size=5_000))


def gather_on(async_db, coroutines):
    async def scenario():
        return await asyncio.gather(*coroutines(async_db), return_exceptions=True)

    return asyncio.run(scenario())


class TestCoalescedEquivalence:
    def test_mixed_kinds_coalesce_into_one_flush_and_match_serial(
        self, served_deepdb
    ):
        """The ISSUE's property test: N concurrent requests of mixed
        kinds in ONE flush return answers identical to serial calls."""
        deepdb = served_deepdb
        serial_cards = [deepdb.cardinality(sql) for sql in CARDINALITY_SQLS]
        serial_answers = [deepdb.approximate(sql) for sql in APPROXIMATE_SQLS]
        serial_plan, serial_cost, _ = deepdb.plan(PLAN_SQL)

        total = len(CARDINALITY_SQLS) + len(APPROXIMATE_SQLS) + 1
        async_db = AsyncDeepDB(
            deepdb, max_batch_size=total, max_wait_ms=50, cache_size=0
        )
        results = gather_on(async_db, lambda adb: (
            [adb.cardinality(sql) for sql in CARDINALITY_SQLS]
            + [adb.approximate(sql) for sql in APPROXIMATE_SQLS]
            + [adb.plan(PLAN_SQL)]
        ))
        assert not any(isinstance(r, Exception) for r in results)
        cards = results[: len(CARDINALITY_SQLS)]
        answers = results[len(CARDINALITY_SQLS):-1]
        plan = results[-1]

        # The compiled kernels are batch-size invariant, so coalesced
        # answers are bit-identical to the serial scalar path.
        assert cards == serial_cards
        assert answers == serial_answers
        assert plan["plan"] == serial_plan.describe()
        assert plan["estimated_cost"] == serial_cost
        assert plan["batch_calls"] == 1

        stats = async_db.stats()["coalescers"]["default"]
        assert stats["flushes"] == 1  # every kind shared the flush
        assert stats["requests"] == total
        assert stats["max_occupancy"] == total

    def test_many_concurrent_clients_match_serial(self, served_deepdb):
        """Closed-loop clients over randomized predicates: every answer
        equals the serial path, while flushes stay well below requests."""
        deepdb = served_deepdb
        queries = {
            (client, round_):
                "SELECT COUNT(*) FROM customer WHERE "
                f"customer.age > {20 + 3 * client} AND "
                f"customer.age <= {60 + round_}"
            for client in range(12)
            for round_ in range(3)
        }
        serial = {key: deepdb.cardinality(sql) for key, sql in queries.items()}

        async_db = AsyncDeepDB(
            deepdb, max_batch_size=12, max_wait_ms=5, cache_size=0
        )
        answers = {}

        async def client(adb, c):
            for r in range(3):
                answers[c, r] = await adb.cardinality(queries[c, r])

        async def scenario():
            await asyncio.gather(*(client(async_db, c) for c in range(12)))

        asyncio.run(scenario())
        assert answers == serial
        stats = async_db.stats()["coalescers"]["default"]
        assert stats["requests"] == len(queries)
        assert stats["flushes"] <= len(queries) // 3  # real coalescing
        assert stats["mean_occupancy"] > 1.0

    def test_parse_error_fails_only_its_own_future(self, served_deepdb):
        async_db = AsyncDeepDB(
            served_deepdb, max_batch_size=3, max_wait_ms=50, cache_size=0
        )
        results = gather_on(async_db, lambda adb: [
            adb.cardinality(CARDINALITY_SQLS[0]),
            adb.cardinality("SELECT COUNT(*) FROM nowhere WHERE broken >"),
            adb.cardinality(CARDINALITY_SQLS[1]),
        ])
        assert results[0] == served_deepdb.cardinality(CARDINALITY_SQLS[0])
        assert isinstance(results[1], Exception)
        assert results[2] == served_deepdb.cardinality(CARDINALITY_SQLS[1])
        stats = async_db.stats()["coalescers"]["default"]
        assert stats["flushes"] == 1
        assert stats["failed_requests"] == 1

    def test_duplicate_requests_share_one_computation(self, served_deepdb):
        async_db = AsyncDeepDB(served_deepdb, max_batch_size=4, max_wait_ms=50)
        sql = CARDINALITY_SQLS[0]
        spaced = "  " + sql.replace(" WHERE ", "\n WHERE  ") + " ; "
        results = gather_on(async_db, lambda adb: [
            adb.cardinality(sql), adb.cardinality(spaced),
            adb.cardinality(sql), adb.cardinality(CARDINALITY_SQLS[2]),
        ])
        assert results[0] == results[1] == results[2]
        assert results[0] == served_deepdb.cardinality(sql)
        session = async_db.registry.session()
        # Normalization folded the three variants onto one cache entry.
        assert session.snapshot()["cache"]["entries"] == 2


class TestSessionAndRegistry:
    def test_normalize_sql(self):
        assert normalize_sql("  SELECT *\n  FROM t ;  ") == "SELECT * FROM t"
        assert normalize_sql("a  b") == normalize_sql("a\tb")
        # Whitespace inside string literals is VALUE, not formatting:
        # distinct literals must keep distinct cache keys.
        spaced = "SELECT COUNT(*)  FROM t WHERE t.r = 'EU  X'"
        assert normalize_sql(spaced).endswith("'EU  X'")
        assert normalize_sql(spaced) != normalize_sql(
            "SELECT COUNT(*) FROM t WHERE t.r = 'EU X'"
        )

    def test_cache_hit_returns_equal_private_copy(self, served_deepdb):
        registry = ModelRegistry()
        session = registry.register("orders_db", served_deepdb)
        first = session.run_one(Request("approximate", APPROXIMATE_SQLS[1]))
        before = session.snapshot()["cache"]
        second = session.run_one(Request("approximate", APPROXIMATE_SQLS[1]))
        assert second == first  # cached: bit-identical values
        assert second is not first  # ...but a private copy per client
        assert session.snapshot()["cache"]["hits"] == before["hits"] + 1
        # Mutating a handed-out answer must not corrupt the cache.
        second.clear()
        third = session.run_one(Request("approximate", APPROXIMATE_SQLS[1]))
        assert third == first

    def test_registry_routes_by_name(self, served_deepdb):
        second = DeepDB.learn(
            build_customer_orders(n_customers=200, seed=7),
            EnsembleConfig(sample_size=2_000, single_tables_only=True),
        )
        registry = ModelRegistry()
        registry.register("a", served_deepdb)
        registry.register("b", second)
        assert registry.names() == ["a", "b"]
        assert registry.session("a").name == "a"
        with pytest.raises(LookupError, match="name one of"):
            registry.session(None)  # ambiguous with two models
        with pytest.raises(LookupError, match="registered"):
            registry.session("missing")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", second)  # name collision
        with pytest.raises(ValueError, match="snapshot isolation"):
            # One session per model: a second session over the same
            # ensemble would bypass the first one's read-write lock.
            registry.register("alias", served_deepdb)
        registry.unregister("b")
        assert registry.session(None).name == "a"  # unambiguous again

    def test_admission_control_rejects_beyond_cap(self, served_deepdb):
        async_db = AsyncDeepDB(
            served_deepdb, max_batch_size=64, max_wait_ms=100, max_inflight=2
        )

        async def scenario():
            tasks = [
                asyncio.ensure_future(
                    async_db.cardinality(CARDINALITY_SQLS[i])
                )
                for i in range(2)
            ]
            await asyncio.sleep(0)  # both admitted, waiting on the flush
            with pytest.raises(ServerOverloadedError):
                await async_db.cardinality(CARDINALITY_SQLS[2])
            await async_db.drain()
            return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert len(results) == 2
        admission = async_db.stats()["admission"]
        assert admission["admitted"] == 2
        assert admission["rejected"] == 1

    def test_read_write_lock_excludes_writers(self):
        lock = ReadWriteLock()
        log = []
        with lock.read():

            def write():
                with lock.write():
                    log.append("w")

            writer = threading.Thread(target=write)
            writer.start()
            writer.join(timeout=0.1)
            assert log == []  # writer blocked while the read is held
        writer.join(timeout=2)
        assert log == ["w"]  # and admitted once the reader left


class TestServingUnderUpdates:
    """Mutating tests: keep them after the equivalence tests."""

    def test_requests_during_insert_see_before_or_after(self, served_deepdb):
        deepdb = served_deepdb
        sql = "SELECT COUNT(*) FROM customer WHERE customer.age > 30"
        before = deepdb.cardinality(sql)
        async_db = AsyncDeepDB(
            deepdb, max_batch_size=4, max_wait_ms=1, cache_size=0
        )
        row = {"c_id": 600_000, "region": "EU", "age": 52}

        async def scenario():
            async def reader(i):
                await asyncio.sleep(0.002 * i)
                return await async_db.cardinality(sql)

            readers = [asyncio.ensure_future(reader(i)) for i in range(10)]
            await asyncio.sleep(0.008)
            await async_db.insert("customer", row)
            post_insert = await async_db.cardinality(sql)
            return await asyncio.gather(*readers), post_insert

        results, post_insert = asyncio.run(scenario())
        after = deepdb.cardinality(sql)
        assert after != before  # the insert is visible serially
        # Snapshot isolation: every concurrent read saw exactly the
        # model before or after the update, never a half-applied state.
        assert set(results) <= {before, after}
        assert post_insert == after  # a read after the insert sees it

    def test_insert_invalidates_cached_results_via_generation(
        self, served_deepdb
    ):
        deepdb = served_deepdb
        registry = ModelRegistry()
        session = registry.register("orders_db", deepdb)
        sql = "SELECT COUNT(*) FROM customer WHERE customer.age > 45"
        cached = session.run_one(Request("cardinality", sql))
        generation = deepdb.generation
        session.insert("customer", {"c_id": 600_001, "region": "EU", "age": 61})
        assert deepdb.generation > generation
        fresh = session.run_one(Request("cardinality", sql))
        assert fresh != cached  # recomputed on the updated model
        assert fresh == deepdb.cardinality(sql)
        assert session.snapshot()["cache"]["invalidations"] >= 1

    def test_generation_counter_is_the_compiled_cache_check(
        self, served_deepdb
    ):
        from repro.core import compiled

        rspn = served_deepdb.ensemble.rspns[0]
        first = compiled.compiled_for(rspn.root)
        assert compiled.compiled_for(rspn.root) is first  # cached
        generation = rspn.generation
        rspn.invalidate_compiled()
        assert rspn.generation == generation + 1
        assert served_deepdb.generation > 0
        second = compiled.compiled_for(rspn.root)
        assert second is not first  # stale entry replaced lazily
        assert second.generation == rspn.generation


class TestHttpFrontEnd:
    """HTTP server round-trip (mutates the model via /update: last)."""

    def _post(self, url, path, body):
        request = urllib.request.Request(
            url + path,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read().decode("utf-8"))

    def _get(self, url, path):
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return json.loads(response.read().decode("utf-8"))

    def test_http_round_trip(self, served_deepdb):
        registry = ModelRegistry()
        registry.register("orders_db", served_deepdb)
        with start_server(registry) as server:
            url = server.url

            assert self._get(url, "/models") == {"models": ["orders_db"]}

            payload = self._post(url, "/query", {"sql": CARDINALITY_SQLS[0]})
            assert payload["value"] == served_deepdb.cardinality(
                CARDINALITY_SQLS[0]
            )

            grouped = self._post(url, "/query", {
                "sql": APPROXIMATE_SQLS[1], "kind": "approximate",
                "database": "orders_db",
            })
            serial = served_deepdb.approximate(APPROXIMATE_SQLS[1])
            assert {
                tuple(g["key"]): g["value"] for g in grouped["groups"]
            } == serial

            with pytest.raises(urllib.error.HTTPError) as bad_sql:
                self._post(url, "/query", {"sql": "SELECT broken FROM"})
            assert bad_sql.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as bad_model:
                self._post(url, "/query", {
                    "sql": CARDINALITY_SQLS[0], "database": "missing",
                })
            assert bad_model.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as bad_path:
                self._get(url, "/nope")
            assert bad_path.value.code == 404

            updated = self._post(url, "/update", {
                "op": "insert", "table": "customer",
                "row": {"c_id": 600_002, "region": "ASIA", "age": 28},
            })
            assert updated["ok"] is True
            assert updated["generation"] == served_deepdb.generation

            stats = self._get(url, "/stats")
            assert stats["endpoints"]["/query"]["requests"] == 4
            assert stats["endpoints"]["/query"]["errors"] == 2
            assert stats["endpoints"]["/update"]["requests"] == 1
            assert stats["serving"]["coalescers"]["orders_db"]["requests"] >= 2
            assert stats["serving"]["models"]["orders_db"]["cache"]["misses"] >= 2
