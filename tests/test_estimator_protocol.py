"""Tests for the batched estimator protocol (:mod:`repro.estimator`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bayesnet import ChowLiuEstimator
from repro.baselines.ibjs import IndexBasedJoinSampling
from repro.baselines.lightweight_trees import LightweightSelectivityModel
from repro.baselines.mcsn import MCSN
from repro.baselines.postgres_estimator import PostgresEstimator
from repro.baselines.sampling import RandomSamplingEstimator
from repro.core.compilation import ProbabilisticQueryCompiler
from repro.engine.executor import Executor
from repro.engine.query import Predicate, count_query
from repro.estimator import CardinalityEstimator, cardinality_batch, supports_batch


def _workload(tables=("customer", "orders")):
    return [
        count_query(["customer"], predicates=(Predicate("customer", "age", ">=", 40),)),
        count_query(
            list(tables),
            predicates=(Predicate("customer", "region", "=", "EU"),),
        ),
        count_query(list(tables)),
    ]


class TestConformance:
    def test_every_cardinality_estimator_conforms(self):
        """Every baseline with a ``cardinality`` method rides the mixin."""
        for cls in (
            ChowLiuEstimator,
            Executor,
            IndexBasedJoinSampling,
            LightweightSelectivityModel,
            MCSN,
            PostgresEstimator,
            ProbabilisticQueryCompiler,
            RandomSamplingEstimator,
        ):
            assert issubclass(cls, CardinalityEstimator), cls.__name__

    def test_compiler_overrides_the_batch_kernel(self):
        assert (
            ProbabilisticQueryCompiler.cardinality_batch
            is not CardinalityEstimator.cardinality_batch
        )

    def test_executor_inherits_the_loop_fallback(self):
        assert (
            Executor.cardinality_batch is CardinalityEstimator.cardinality_batch
        )


class TestLoopFallback:
    def test_mixin_batch_equals_scalar_loop(self, customer_orders_db):
        estimator = PostgresEstimator(customer_orders_db)
        queries = _workload()
        batched = estimator.cardinality_batch(queries)
        assert batched == [estimator.cardinality(q) for q in queries]

    def test_executor_batch_is_exact(self, customer_orders_db):
        executor = Executor(customer_orders_db)
        queries = _workload()
        batched = executor.cardinality_batch(queries)
        assert batched == [executor.cardinality(q) for q in queries]

    def test_module_helper_uses_native_batch(self, customer_orders_db):
        class _Spy(PostgresEstimator):
            batch_calls = 0

            def cardinality_batch(self, queries):
                self.batch_calls += 1
                return super().cardinality_batch(queries)

        spy = _Spy(customer_orders_db)
        values = cardinality_batch(spy, _workload())
        assert spy.batch_calls == 1
        assert len(values) == 3

    def test_module_helper_falls_back_without_batch(self, customer_orders_db):
        class _DuckTyped:
            """Third-party estimator: scalar only, no mixin."""

            def __init__(self, database):
                self._inner = PostgresEstimator(database)

            def cardinality(self, query):
                return self._inner.cardinality(query)

        duck = _DuckTyped(customer_orders_db)
        assert not supports_batch(duck)
        values = cardinality_batch(duck, _workload())
        reference = [duck.cardinality(q) for q in _workload()]
        assert values == pytest.approx(reference)

    def test_sampling_batch_matches_scalar_determinism(self, customer_orders_db):
        """The sampling estimator is stateful (per-query RNG); the batch
        loop must consume queries in order so that a batch of n queries
        draws the same samples as n scalar calls."""
        queries = _workload()
        batched = RandomSamplingEstimator(
            customer_orders_db, sample_rows=500, seed=5
        ).cardinality_batch(queries)
        scalar_estimator = RandomSamplingEstimator(
            customer_orders_db, sample_rows=500, seed=5
        )
        assert batched == [scalar_estimator.cardinality(q) for q in queries]

    def test_batch_results_are_floats_and_aligned(self, customer_orders_db):
        estimator = PostgresEstimator(customer_orders_db)
        queries = _workload()
        values = cardinality_batch(estimator, queries)
        assert all(isinstance(v, float) for v in values)
        assert np.all(np.asarray(values) >= 1.0)
        assert len(values) == len(queries)
