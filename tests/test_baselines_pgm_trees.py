"""Tests for the Chow-Liu BN and lightweight-GBM baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bayesnet import ChowLiuEstimator, _mutual_information
from repro.baselines.lightweight_trees import (
    GradientBoostedTrees,
    LightweightSelectivityModel,
)
from repro.baselines.postgres_estimator import PostgresEstimator
from repro.engine.executor import Executor
from repro.engine.query import Predicate, Query, count_query
from repro.evaluation.metrics import q_error


@pytest.fixture(scope="module")
def chow_liu(customer_orders_db):
    return ChowLiuEstimator(customer_orders_db, seed=0)


@pytest.fixture(scope="module")
def executor(customer_orders_db):
    return Executor(customer_orders_db)


class TestMutualInformation:
    def test_independent_columns_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 20_000)
        b = rng.integers(0, 4, 20_000)
        assert _mutual_information(a, b, 4, 4) < 0.01

    def test_identical_columns_high(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 5_000)
        assert _mutual_information(a, a, 4, 4) > 1.0

    def test_nonnegative(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 3, 2_000)
        b = (a + rng.integers(0, 2, 2_000)) % 3
        assert _mutual_information(a, b, 3, 3) >= 0.0


class TestChowLiuEstimator:
    def test_single_predicate_selectivity(self, chow_liu, customer_orders_db):
        table = customer_orders_db.table("customer")
        eu = table.encode_value("region", "EU")
        true_fraction = float((table.columns["region"] == eu).mean())
        estimated = chow_liu.selectivity(
            "customer", [Predicate("customer", "region", "=", "EU")]
        )
        assert estimated == pytest.approx(true_fraction, abs=0.05)

    def test_captures_intra_table_correlation(
        self, chow_liu, executor, customer_orders_db
    ):
        """region determines age in the fixture; the BN must beat the
        independence assumption on the conjunction."""
        query = count_query(
            ["customer"],
            predicates=(
                Predicate("customer", "region", "=", "EU"),
                Predicate("customer", "age", ">", 50),
            ),
        )
        truth = executor.cardinality(query)
        postgres = PostgresEstimator(customer_orders_db)
        bn_error = q_error(truth, chow_liu.cardinality(query))
        pg_error = q_error(truth, postgres.cardinality(query))
        assert bn_error < pg_error
        assert bn_error < 1.5

    def test_join_cardinality_reasonable(self, chow_liu, executor):
        query = count_query(["customer", "orders"])
        truth = executor.cardinality(query)
        assert q_error(truth, chow_liu.cardinality(query)) < 2.0

    def test_cardinality_at_least_one(self, chow_liu):
        query = count_query(
            ["customer"],
            predicates=(Predicate("customer", "age", ">", 10_000),),
        )
        assert chow_liu.cardinality(query) >= 1.0

    def test_null_predicate(self, chow_liu):
        selectivity = chow_liu.selectivity(
            "customer", [Predicate("customer", "age", "IS NOT NULL")]
        )
        assert selectivity == pytest.approx(1.0, abs=0.05)

    def test_unknown_constant_selects_almost_nothing(self, chow_liu):
        selectivity = chow_liu.selectivity(
            "customer", [Predicate("customer", "region", "=", "MARS")]
        )
        assert selectivity < 0.05


class TestGradientBoostedTrees:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(3)
        features = rng.uniform(0, 1, size=(2_000, 2))
        targets = np.sin(4 * features[:, 0]) + (features[:, 1] > 0.5)
        model = GradientBoostedTrees(n_trees=80, learning_rate=0.2)
        model.fit(features, targets)
        predictions = model.predict(features)
        rmse = float(np.sqrt(np.mean((predictions - targets) ** 2)))
        assert rmse < 0.15
        assert model.n_fitted_trees > 10

    def test_boosting_improves_over_single_tree(self):
        rng = np.random.default_rng(4)
        features = rng.uniform(0, 1, size=(1_500, 3))
        targets = features[:, 0] * features[:, 1] - features[:, 2] ** 2
        single = GradientBoostedTrees(n_trees=1, learning_rate=1.0)
        boosted = GradientBoostedTrees(n_trees=60, learning_rate=0.2)
        single.fit(features, targets)
        boosted.fit(features, targets)
        err_single = np.mean((single.predict(features) - targets) ** 2)
        err_boosted = np.mean((boosted.predict(features) - targets) ** 2)
        assert err_boosted < err_single

    def test_constant_target(self):
        features = np.random.default_rng(5).uniform(size=(200, 2))
        model = GradientBoostedTrees(n_trees=10)
        model.fit(features, np.full(200, 3.5))
        assert model.predict(features[:5]) == pytest.approx(3.5)


def _range_workload(database, n_queries, seed):
    """Random conjunctive range queries over the customer table."""
    rng = np.random.default_rng(seed)
    table = database.table("customer")
    ages = table.columns["age"]
    finite = ages[~np.isnan(ages)]
    queries = []
    for _ in range(n_queries):
        low = float(rng.uniform(finite.min(), finite.max()))
        width = float(rng.uniform(2, 40))
        predicates = [
            Predicate("customer", "age", ">=", low),
            Predicate("customer", "age", "<=", low + width),
        ]
        if rng.random() < 0.5:
            predicates.append(
                Predicate(
                    "customer", "region", "=", rng.choice(["EU", "ASIA"])
                )
            )
        queries.append(count_query(["customer"], predicates=predicates))
    return queries


class TestLightweightSelectivityModel:
    @pytest.fixture(scope="class")
    def fitted(self, customer_orders_db, executor):
        training = _range_workload(customer_orders_db, 400, seed=6)
        labels = [executor.cardinality(q) for q in training]
        model = LightweightSelectivityModel(
            customer_orders_db, "customer", n_trees=80
        )
        model.fit(training, labels)
        return model

    def test_accurate_on_training_distribution(
        self, fitted, customer_orders_db, executor
    ):
        test_queries = _range_workload(customer_orders_db, 60, seed=7)
        errors = [
            q_error(executor.cardinality(q), fitted.cardinality(q))
            for q in test_queries
        ]
        assert float(np.median(errors)) < 1.6

    def test_featurisation_shape(self, fitted, customer_orders_db):
        query = count_query(
            ["customer"], predicates=(Predicate("customer", "age", "<", 30),)
        )
        features = fitted.featurise(query)
        # two features (low, high) per non-key column
        table = customer_orders_db.table("customer")
        n_columns = len(
            [a for a in table.schema.non_key_attributes
             if not a.name.startswith("F__")]
        )
        assert features.shape == (2 * n_columns,)
        assert np.all(features >= 0.0) and np.all(features <= 1.0)

    def test_rejects_other_tables(self, fitted):
        with pytest.raises(ValueError):
            fitted.featurise(count_query(["orders"]))

    def test_workload_shift_degrades(self, fitted, customer_orders_db, executor):
        """Point queries (an unseen predicate shape: the training ranges
        are 2-40 years wide) are estimated worse than in-distribution
        ranges -- the workload-driven weakness the paper targets."""
        point = count_query(
            ["customer"],
            predicates=(Predicate("customer", "age", "=", 30.0),),
        )
        truth = executor.cardinality(point)
        error = q_error(truth, fitted.cardinality(point))
        in_distribution = _range_workload(customer_orders_db, 40, seed=8)
        in_errors = [
            q_error(executor.cardinality(q), fitted.cardinality(q))
            for q in in_distribution
        ]
        assert error > 2 * float(np.median(in_errors))
