"""Tests for the SQL-subset parser."""

import pytest

from repro.engine.parser import parse_query, tokenize


@pytest.fixture(scope="module")
def schema(customer_orders_db):
    return customer_orders_db.schema


class TestTokenizer:
    def test_numbers_strings_identifiers(self):
        tokens = tokenize("SELECT COUNT(*) FROM t WHERE a = 'x' AND b < 3.5")
        kinds = [k for k, _v in tokens]
        assert "str" in kinds and "num" in kinds

    def test_negative_numbers(self):
        tokens = tokenize("a > -5")
        assert ("num", -5) in tokens

    def test_unknown_character_raises(self):
        with pytest.raises(SyntaxError):
            tokenize("SELECT @")

    def test_trailing_semicolon_ignored(self):
        tokens = tokenize("SELECT COUNT(*) FROM t;")
        assert tokens[-1] != ";"


class TestParser:
    def test_count_star_single_table(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer WHERE customer.region = 'EU'", schema
        )
        assert query.tables == ("customer",)
        assert query.aggregate.function == "COUNT"
        assert query.predicates[0].value == "EU"

    def test_unqualified_column_resolution(self, schema):
        query = parse_query("SELECT COUNT(*) FROM customer WHERE region = 'EU'", schema)
        assert query.predicates[0].table == "customer"

    def test_alias(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer c WHERE c.age > 30", schema
        )
        assert query.predicates[0].table == "customer"
        assert query.predicates[0].op == ">"

    def test_natural_join(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer NATURAL JOIN orders", schema
        )
        assert set(query.tables) == {"customer", "orders"}

    def test_explicit_join_with_on(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer c JOIN orders o ON o.c_id = c.c_id",
            schema,
        )
        assert set(query.tables) == {"customer", "orders"}

    def test_where_clause_join_condition_dropped(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer c, orders o "
            "WHERE c.c_id = o.c_id AND o.channel = 'ONLINE'",
            schema,
        )
        assert len(query.predicates) == 1
        assert query.predicates[0].column == "channel"

    def test_invalid_join_condition_rejected(self, schema):
        with pytest.raises(SyntaxError):
            parse_query(
                "SELECT COUNT(*) FROM customer c JOIN orders o ON o.o_id = c.c_id",
                schema,
            )

    def test_avg_aggregate(self, schema):
        query = parse_query("SELECT AVG(c.age) FROM customer c", schema)
        assert query.aggregate.function == "AVG"
        assert query.aggregate.qualified_column == "customer.age"

    def test_sum_aggregate(self, schema):
        query = parse_query("SELECT SUM(age) FROM customer", schema)
        assert query.aggregate.function == "SUM"

    def test_group_by(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer GROUP BY customer.region", schema
        )
        assert query.group_by == (("customer", "region"),)

    def test_in_predicate(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM orders WHERE orders.channel IN ('ONLINE', 'STORE')",
            schema,
        )
        assert query.predicates[0].op == "IN"
        assert query.predicates[0].value == ("ONLINE", "STORE")

    def test_between_predicate(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer WHERE customer.age BETWEEN 20 AND 30",
            schema,
        )
        assert query.predicates[0].op == "BETWEEN"
        assert query.predicates[0].value == (20, 30)

    def test_is_null(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer WHERE customer.age IS NULL", schema
        )
        assert query.predicates[0].op == "IS NULL"

    def test_is_not_null(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer WHERE customer.age IS NOT NULL", schema
        )
        assert query.predicates[0].op == "IS NOT NULL"

    def test_not_equals_normalised(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM customer WHERE customer.age != 30", schema
        )
        assert query.predicates[0].op == "<>"

    def test_unknown_table_rejected(self, schema):
        with pytest.raises(SyntaxError):
            parse_query("SELECT COUNT(*) FROM nonexistent", schema)

    def test_unknown_column_rejected(self, schema):
        with pytest.raises(SyntaxError):
            parse_query("SELECT COUNT(*) FROM customer WHERE nope = 3", schema)

    def test_case_insensitive_keywords(self, schema):
        query = parse_query("select count(*) from customer where age > 10", schema)
        assert query.predicates[0].op == ">"
