"""Tests for terminal charts and the command-line interface."""

from __future__ import annotations

import math

import pytest

from repro.cli import main
from repro.evaluation.plots import bar_chart, series_chart


class TestBarChart:
    def test_contains_labels_series_and_values(self):
        chart = bar_chart(
            "Errors", ["Q1", "Q2"],
            {"A": [1.0, 2.0], "B": [3.0, 4.0]},
        )
        for token in ("== Errors ==", "Q1", "Q2", "A", "B", "4"):
            assert token in chart

    def test_bar_lengths_monotone(self):
        chart = bar_chart("t", ["x", "y"], {"s": [10.0, 40.0]})
        lines = [l for l in chart.splitlines() if "|" in l]
        short = lines[0].split("|")[1].count("#")
        long = lines[1].split("|")[1].count("#")
        assert 0 < short < long

    def test_log_scale_compresses(self):
        linear = bar_chart("t", ["a", "b"], {"s": [10.0, 1000.0]}, width=40)
        logarithmic = bar_chart(
            "t", ["a", "b"], {"s": [10.0, 1000.0]}, width=40, log=True
        )

        def lengths(chart):
            rows = [l for l in chart.splitlines() if "|" in l]
            return [row.split("|")[1].count("#") for row in rows]

        linear_ratio = lengths(linear)[1] / max(lengths(linear)[0], 1)
        log_ratio = lengths(logarithmic)[1] / max(lengths(logarithmic)[0], 1)
        assert log_ratio < linear_ratio
        assert "(log scale)" in logarithmic

    def test_none_renders_no_result(self):
        chart = bar_chart("t", ["a"], {"s": [None]})
        assert "(no result)" in chart
        chart = bar_chart("t", ["a"], {"s": [math.nan]})
        assert "(no result)" in chart

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a", "b"], {"s": [1.0]})


class TestSeriesChart:
    def test_axes_and_legend(self):
        chart = series_chart(
            "Sweep", [0, 1, 2, 3],
            {"q-error": [2.0, 1.9, 1.85, 1.85], "time": [1.0, 2.0, 4.0, 8.0]},
        )
        assert "== Sweep ==" in chart
        assert "legend:" in chart
        assert "q-error" in chart and "time" in chart

    def test_markers_present(self):
        chart = series_chart("t", [0, 1], {"a": [0.0, 1.0]})
        assert "#" in chart

    def test_empty_series_handled(self):
        chart = series_chart("t", [0, 1], {"a": [None, float("nan")]})
        assert "(no data)" in chart

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            series_chart("t", [0, 1, 2], {"a": [1.0]})


class _Capture:
    def __init__(self):
        self.lines = []

    def write(self, text):
        self.lines.append(text)

    @property
    def text(self):
        return "".join(self.lines)


@pytest.fixture(scope="module")
def trained_model(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.json"
    out = _Capture()
    code = main(
        [
            "train", "--dataset", "imdb", "--scale", "0.02", "--seed", "1",
            "--out", str(path), "--sample-size", "5000",
        ],
        out=out,
    )
    assert code == 0
    return path


class TestCli:
    def test_train_saves_model(self, trained_model):
        assert trained_model.exists()

    def test_estimate_with_truth(self, trained_model):
        out = _Capture()
        code = main(
            [
                "estimate", "--dataset", "imdb", "--scale", "0.02",
                "--seed", "1", "--model", str(trained_model),
                "--sql",
                "SELECT COUNT(*) FROM title WHERE title.production_year > 2005",
                "--truth",
            ],
            out=out,
        )
        assert code == 0
        assert "estimated cardinality" in out.text
        assert "q-error" in out.text

    def test_query_with_confidence(self, trained_model):
        out = _Capture()
        code = main(
            [
                "query", "--dataset", "imdb", "--scale", "0.02", "--seed", "1",
                "--model", str(trained_model),
                "--sql", "SELECT AVG(title.production_year) FROM title",
            ],
            out=out,
        )
        assert code == 0
        assert "CI [" in out.text

    def test_plan_prints_join_order(self, trained_model):
        out = _Capture()
        code = main(
            [
                "plan", "--dataset", "imdb", "--scale", "0.02", "--seed", "1",
                "--model", str(trained_model),
                "--sql",
                "SELECT COUNT(*) FROM title t, cast_info ci, movie_companies mc "
                "WHERE t.id = ci.movie_id AND t.id = mc.movie_id "
                "AND t.production_year > 2005",
            ],
            out=out,
        )
        assert code == 0
        assert "⨝" in out.text
        assert "C_out" in out.text

    def test_inspect_summarises(self, trained_model):
        out = _Capture()
        code = main(["inspect", "--model", str(trained_model)], out=out)
        assert code == 0
        assert "RSPNs" in out.text
        assert "leaf nodes" in out.text

    def test_missing_model_is_error(self):
        out = _Capture()
        code = main(
            [
                "estimate", "--dataset", "imdb", "--scale", "0.02",
                "--seed", "1", "--model", "/nonexistent.json",
                "--sql", "SELECT COUNT(*) FROM title",
            ],
            out=out,
        )
        assert code == 2

    def test_bad_sql_is_error(self, trained_model):
        out = _Capture()
        code = main(
            [
                "estimate", "--dataset", "imdb", "--scale", "0.02",
                "--seed", "1", "--model", str(trained_model),
                "--sql", "SELECT COUNT(*) FROM not_a_table",
            ],
            out=out,
        )
        assert code == 1
