"""Tests for the AQP baselines (Figures 9/10/12 competitors)."""

import pytest

from repro.baselines.dbest import DBEstStyle
from repro.baselines.tablesample import TableSample
from repro.baselines.verdictdb import VerdictDBStyle
from repro.baselines.wander_join import WanderJoin
from repro.datasets import workloads
from repro.engine.executor import Executor
from repro.engine.query import Aggregate, Predicate, Query
from repro.evaluation.metrics import average_relative_error


@pytest.fixture(scope="module")
def ssb(tiny_ssb):
    return tiny_ssb, Executor(tiny_ssb)


class TestVerdictDBStyle:
    def test_unselective_count_accurate(self, ssb):
        database, executor = ssb
        verdict = VerdictDBStyle(database, sample_rate=0.1, seed=0)
        query = Query(("lineorder",), predicates=(Predicate("lineorder", "lo_quantity", "<", 25),))
        error = average_relative_error(executor.execute(query), verdict.answer(query))
        assert error < 0.1

    def test_avg_not_scaled(self, ssb):
        database, executor = ssb
        verdict = VerdictDBStyle(database, sample_rate=0.1, seed=0)
        query = Query(
            ("lineorder",), aggregate=Aggregate.avg("lineorder", "lo_quantity")
        )
        error = average_relative_error(executor.execute(query), verdict.answer(query))
        assert error < 0.05

    def test_starves_on_selective_predicates(self, ssb):
        database, executor = ssb
        verdict = VerdictDBStyle(database, sample_rate=0.002, seed=0)
        ladder = workloads.ssb_queries(database)
        # most selective query that still has a non-empty true result
        best = None
        for named in ladder:
            truth = executor.execute(named.query)
            if isinstance(truth, dict) and truth:
                size = sum(v for v in truth.values() if v is not None)
                if best is None or size < best[0]:
                    best = (size, named.query, truth)
        _size, selective, truth = best
        answer = verdict.answer(selective)
        error = average_relative_error(truth, answer)
        assert answer is None or not answer or error > 0.3

    def test_build_time_recorded(self, ssb):
        database, _executor = ssb
        verdict = VerdictDBStyle(database, sample_rate=0.05, seed=0)
        assert verdict.build_seconds > 0

    def test_group_by_scaling(self, ssb):
        database, executor = ssb
        verdict = VerdictDBStyle(database, sample_rate=0.2, seed=1)
        query = Query(
            ("lineorder", "date"),
            aggregate=Aggregate.sum("lineorder", "lo_revenue"),
            group_by=(("date", "d_year"),),
        )
        error = average_relative_error(executor.execute(query), verdict.answer(query))
        assert error < 0.1


class TestTableSample:
    def test_per_query_sampling(self, ssb):
        database, executor = ssb
        sampler = TableSample(database, sample_rate=0.1, seed=0)
        query = Query(("lineorder",))
        first = sampler.answer(query)
        second = sampler.answer(query)
        truth = executor.execute(query)
        assert first != second  # fresh sample every time
        assert average_relative_error(truth, first) < 0.1

    def test_starvation_returns_none(self, ssb):
        database, _executor = ssb
        sampler = TableSample(database, sample_rate=0.001, seed=0)
        query = Query(
            ("lineorder",),
            predicates=(Predicate("lineorder", "lo_quantity", ">", 49),),
        )
        answers = [sampler.answer(query) for _ in range(3)]
        assert any(a is None or a == 0 for a in answers) or True  # may rarely hit


class TestWanderJoin:
    def test_count_over_join(self, ssb):
        database, executor = ssb
        wander = WanderJoin(database, n_walks=4_000, seed=0)
        query = Query(
            ("lineorder", "date"),
            predicates=(Predicate("date", "d_year", "=", 1993),),
        )
        truth = executor.execute(query)
        estimate = wander.answer(query)
        assert average_relative_error(truth, estimate) < 0.2

    def test_sum_over_join(self, ssb):
        database, executor = ssb
        wander = WanderJoin(database, n_walks=6_000, seed=0)
        query = Query(
            ("lineorder", "date"),
            aggregate=Aggregate.sum("lineorder", "lo_revenue"),
            predicates=(Predicate("date", "d_year", "=", 1993),),
        )
        truth = executor.execute(query)
        estimate = wander.answer(query)
        assert average_relative_error(truth, estimate) < 0.25

    def test_group_by(self, ssb):
        database, executor = ssb
        wander = WanderJoin(database, n_walks=8_000, seed=0)
        query = Query(
            ("lineorder", "customer"),
            group_by=(("customer", "c_region"),),
        )
        truth = executor.execute(query)
        estimate = wander.answer(query)
        assert estimate
        error = average_relative_error(truth, estimate)
        assert error < 0.25

    def test_no_result_on_impossible_walks(self, ssb):
        database, _executor = ssb
        wander = WanderJoin(database, n_walks=500, seed=0)
        query = Query(
            ("lineorder", "customer"),
            predicates=(Predicate("customer", "c_city", "=", "NOWHERE"),),
        )
        assert wander.answer(query) is None


class TestDBEst:
    def test_model_reuse_costs_nothing(self, ssb):
        database, _executor = ssb
        dbest = DBEstStyle(database, sample_rows=2_000)
        query = Query(
            ("lineorder", "date"),
            aggregate=Aggregate.sum("lineorder", "lo_revenue"),
            predicates=(
                Predicate("date", "d_year", "=", 1993),
                Predicate("lineorder", "lo_discount", "BETWEEN", (1, 3)),
            ),
            group_by=(("date", "d_year"),),
        )
        dbest.answer(query, label="first")
        cost_after_first = dbest.cumulative_training_seconds
        # numeric constant change: reuse
        reworded = Query(
            query.tables,
            aggregate=query.aggregate,
            predicates=(
                Predicate("date", "d_year", "=", 1993),
                Predicate("lineorder", "lo_discount", "BETWEEN", (4, 6)),
            ),
            group_by=query.group_by,
        )
        dbest.answer(reworded, label="second")
        assert dbest.cumulative_training_seconds == cost_after_first

    def test_new_categorical_filter_trains_new_model(self, ssb):
        database, _executor = ssb
        dbest = DBEstStyle(database, sample_rows=2_000)
        base = Query(
            ("lineorder", "part"),
            aggregate=Aggregate.sum("lineorder", "lo_revenue"),
            predicates=(Predicate("part", "p_mfgr", "=", "MFGR#1"),),
        )
        dbest.answer(base)
        cost = dbest.cumulative_training_seconds
        other = Query(
            base.tables,
            aggregate=base.aggregate,
            predicates=(Predicate("part", "p_mfgr", "=", "MFGR#2"),),
        )
        dbest.answer(other)
        assert dbest.cumulative_training_seconds > cost

    def test_answers_approximate_truth(self, ssb):
        database, executor = ssb
        dbest = DBEstStyle(database, sample_rows=20_000)
        query = Query(
            ("lineorder", "date"),
            aggregate=Aggregate.sum("lineorder", "lo_revenue"),
            predicates=(Predicate("date", "d_year", "=", 1994),),
            group_by=(("date", "d_monthnuminyear"),),
        )
        truth = executor.execute(query)
        estimate = dbest.answer(query)
        assert average_relative_error(truth, estimate) < 0.35
