"""Coalescer flush policy: size/deadline triggers and error isolation."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import MicroBatchCoalescer


class RecordingRunner:
    """Flush callable that records every batch it receives."""

    def __init__(self, fail_items=(), fail_batch=False, wrong_length=False):
        self.batches = []
        self.fail_items = set(fail_items)
        self.fail_batch = fail_batch
        self.wrong_length = wrong_length

    def __call__(self, items):
        self.batches.append(list(items))
        if self.fail_batch:
            raise RuntimeError("batch runner down")
        results = [
            ValueError(f"bad item {item}") if item in self.fail_items
            else item * 10
            for item in items
        ]
        return results[:-1] if self.wrong_length else results


async def submit_all(coalescer, items):
    return await asyncio.gather(
        *(coalescer.submit(item) for item in items), return_exceptions=True
    )


class TestFlushTriggers:
    def test_size_flush_fires_before_the_deadline(self):
        runner = RecordingRunner()
        # A deadline no test run ever reaches: only the size trigger can
        # flush, so finishing at all proves the early size flush.
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=4, max_wait_ms=600_000
        )
        results = asyncio.run(submit_all(coalescer, [1, 2, 3, 4]))
        assert results == [10, 20, 30, 40]
        assert runner.batches == [[1, 2, 3, 4]]
        assert coalescer.stats.size_flushes == 1
        assert coalescer.stats.timeout_flushes == 0

    def test_timeout_flush_delivers_a_partial_batch(self):
        runner = RecordingRunner()
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=100, max_wait_ms=10
        )
        results = asyncio.run(submit_all(coalescer, [1, 2, 3]))
        assert results == [10, 20, 30]
        assert runner.batches == [[1, 2, 3]]
        assert coalescer.stats.timeout_flushes == 1
        assert coalescer.stats.size_flushes == 0
        assert coalescer.stats.max_occupancy == 3

    def test_overflow_splits_into_size_then_timeout_flushes(self):
        runner = RecordingRunner()
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=4, max_wait_ms=10
        )
        results = asyncio.run(submit_all(coalescer, list(range(10))))
        assert results == [i * 10 for i in range(10)]
        assert [len(batch) for batch in runner.batches] == [4, 4, 2]
        assert coalescer.stats.size_flushes == 2
        assert coalescer.stats.timeout_flushes == 1
        assert coalescer.stats.mean_occupancy == pytest.approx(10 / 3)

    def test_closed_loop_rounds_form_one_batch_per_round(self):
        runner = RecordingRunner()
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=3, max_wait_ms=50
        )

        async def client(base):
            first = await coalescer.submit(base)
            second = await coalescer.submit(base + 1)
            return first, second

        async def scenario():
            return await asyncio.gather(client(0), client(10), client(20))

        results = asyncio.run(scenario())
        assert results == [(0, 10), (100, 110), (200, 210)]
        # Round 1 coalesces all three clients; so does round 2.
        assert [sorted(batch) for batch in runner.batches] == [
            [0, 10, 20], [1, 11, 21],
        ]

    def test_drain_flushes_pending_without_waiting(self):
        runner = RecordingRunner()
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=100, max_wait_ms=600_000
        )

        async def scenario():
            tasks = [
                asyncio.ensure_future(coalescer.submit(i)) for i in (1, 2)
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            assert coalescer.pending == 2
            await coalescer.drain()
            return await asyncio.gather(*tasks)

        assert asyncio.run(scenario()) == [10, 20]
        assert coalescer.stats.drain_flushes == 1
        assert coalescer.pending == 0


class TestErrorIsolation:
    def test_one_failing_item_spares_its_batchmates(self):
        runner = RecordingRunner(fail_items={2})
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=3, max_wait_ms=600_000
        )
        results = asyncio.run(submit_all(coalescer, [1, 2, 3]))
        assert results[0] == 10
        assert isinstance(results[1], ValueError)
        assert "bad item 2" in str(results[1])
        assert results[2] == 30
        assert runner.batches == [[1, 2, 3]]  # still ONE batch
        assert coalescer.stats.failed_requests == 1

    def test_runner_exception_fails_the_whole_batch(self):
        runner = RecordingRunner(fail_batch=True)
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=2, max_wait_ms=600_000
        )
        results = asyncio.run(submit_all(coalescer, [1, 2]))
        assert all(isinstance(r, RuntimeError) for r in results)
        assert coalescer.stats.failed_requests == 2

    def test_result_length_mismatch_is_surfaced(self):
        runner = RecordingRunner(wrong_length=True)
        coalescer = MicroBatchCoalescer(
            runner, max_batch_size=2, max_wait_ms=600_000
        )
        results = asyncio.run(submit_all(coalescer, [1, 2]))
        assert all(isinstance(r, RuntimeError) for r in results)
        assert "2 items" in str(results[0])


class TestConfiguration:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatchCoalescer(lambda items: items, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchCoalescer(lambda items: items, max_wait_ms=-1)

    def test_stats_snapshot_shape(self):
        runner = RecordingRunner()
        coalescer = MicroBatchCoalescer(runner, max_batch_size=2)
        asyncio.run(submit_all(coalescer, [1, 2]))
        snapshot = coalescer.stats.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["flushes"] == 1
        assert snapshot["mean_occupancy"] == 2.0
        assert snapshot["flush_seconds"] >= 0.0
